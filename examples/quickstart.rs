//! Quickstart: build a circuit, generate tests, and compare all three
//! dictionary types on size and diagnostic resolution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart [circuit] [seed]
//! ```
//!
//! where `circuit` is an ISCAS'89 benchmark name (default `s298`).

use same_different::atpg::AtpgOptions;
use same_different::dict::{
    replace_baselines, select_baselines, FullDictionary, PassFailDictionary, Procedure1Options,
    SameDifferentDictionary,
};
use same_different::Experiment;

fn main() {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s298".to_owned());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let Some(exp) = Experiment::iscas89(&circuit, seed) else {
        eprintln!(
            "unknown circuit {circuit:?}; known: {}",
            same_different::netlist::generator::ISCAS89_PROFILES
                .iter()
                .map(|p| p.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    println!(
        "circuit {}: {} PIs, {} POs, {} FFs, {} gates, {} collapsed faults",
        exp.circuit().name(),
        exp.circuit().input_count(),
        exp.circuit().output_count(),
        exp.circuit().dff_count(),
        exp.circuit().gate_count(),
        exp.faults().len(),
    );

    // A diagnostic test set, as in the first row of each circuit in Table 6.
    let atpg = AtpgOptions {
        seed,
        ..AtpgOptions::default()
    };
    let tests = exp.diagnostic_tests(&atpg);
    println!(
        "diagnostic test set: {} tests ({} untestable, {} aborted faults)",
        tests.len(),
        tests.untestable.len(),
        tests.aborted.len()
    );

    let matrix = exp.simulate(&tests.tests);

    // The three dictionaries.
    let full = FullDictionary::new(matrix.clone());
    let pass_fail = PassFailDictionary::build(&matrix);
    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            seed,
            calls1: 20,
            ..Procedure1Options::default()
        },
    );
    let after_p1 = selection.indistinguished_pairs;
    let after_p2 = replace_baselines(&matrix, &mut selection.baselines);
    let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);

    println!(
        "\n{:<16} {:>14} {:>22}",
        "dictionary", "size (bits)", "indistinguished pairs"
    );
    println!(
        "{:<16} {:>14} {:>22}",
        "full",
        full.size_bits(),
        full.indistinguished_pairs()
    );
    println!(
        "{:<16} {:>14} {:>22}",
        "pass/fail",
        pass_fail.size_bits(),
        pass_fail.indistinguished_pairs()
    );
    println!(
        "{:<16} {:>14} {:>22}",
        "same/different",
        sd.size_bits(),
        sd.indistinguished_pairs()
    );
    println!(
        "\nProcedure 1 left {after_p1} pairs; Procedure 2 improved that to {after_p2}.\n\
         The same/different dictionary costs {} extra bits over pass/fail \
         ({}% of pass/fail size) and distinguishes {} more pairs.",
        sd.sizes().baseline_overhead(),
        100 * sd.sizes().baseline_overhead() / pass_fail.size_bits().max(1),
        pass_fail.indistinguished_pairs() - sd.indistinguished_pairs(),
    );
}
