//! Diagnosis robustness against defects *outside* the single stuck-at
//! model: two-net bridges and multiple simultaneous stuck-at lines.
//!
//! Dictionaries only store modeled (stuck-at) behaviour; a real defect
//! rarely matches any entry exactly. The classic success criterion (the
//! paper's reference [7]) is that the nearest-match candidates point at the
//! defect's physical location. This example injects bridges and double
//! faults, diagnoses with a same/different dictionary, and scores locality.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example out_of_model [circuit] [seed]
//! ```

use same_different::atpg::AtpgOptions;
use same_different::dict::{select_baselines, Procedure1Options, SameDifferentDictionary};
use same_different::fault::{BridgeKind, Defect, FaultSite};
use same_different::logic::BitVec;
use same_different::sim::reference;
use same_different::Experiment;
use sdd_logic::Prng;

fn main() {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s344".to_owned());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(11);
    let mut rng = Prng::seed_from_u64(seed);

    let exp = Experiment::iscas89(&circuit, 1).expect("known circuit");
    let tests = exp.diagnostic_tests(&AtpgOptions::default());
    let matrix = exp.simulate(&tests.tests);
    let selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 20,
            ..Procedure1Options::default()
        },
    );
    let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);

    let nets: Vec<_> = exp.circuit().nets().collect();
    let mut trials = 0;
    let mut located = 0;
    let mut exactish = 0;

    for trial in 0..20 {
        // Alternate bridge and double-fault defects.
        let defect = if trial % 2 == 0 {
            let a = nets[rng.gen_range(0..nets.len())];
            let b = nets[rng.gen_range(0..nets.len())];
            if a == b {
                continue;
            }
            let kind = match rng.gen_range(0..4) {
                0 => BridgeKind::And,
                1 => BridgeKind::Or,
                2 => BridgeKind::ADominates,
                _ => BridgeKind::BDominates,
            };
            Defect::Bridge { a, b, kind }
        } else {
            let f1 = exp
                .universe()
                .fault(exp.faults()[rng.gen_range(0..exp.faults().len())]);
            let f2 = exp
                .universe()
                .fault(exp.faults()[rng.gen_range(0..exp.faults().len())]);
            Defect::MultipleStuckAt(vec![f1, f2])
        };

        // What the tester observes.
        let observed: Vec<BitVec> = tests
            .tests
            .iter()
            .map(|t| reference::defect_response(exp.circuit(), exp.view(), &defect, t))
            .collect();
        // Skip defects that never fail a test (nothing to diagnose).
        if observed
            .iter()
            .enumerate()
            .all(|(t, r)| r == matrix.good_response(t))
        {
            continue;
        }
        trials += 1;

        let report = sd.diagnose(&observed).expect("well-formed observation");
        let plausible = defect.plausible_sites();
        let hit = report.candidates().iter().any(|&pos| {
            let fault = exp.universe().fault(exp.faults()[pos]);
            let site = match fault.site {
                FaultSite::Stem(net) => net,
                FaultSite::Branch { gate, .. } => gate,
            };
            plausible.contains(&site)
        });
        if hit {
            located += 1;
        }
        if report.distance == 0 {
            exactish += 1;
        }
        println!(
            "{:<44} {} candidates, distance {:>3}, located: {}",
            defect.describe(exp.circuit()),
            report.candidates().len(),
            report.distance,
            if hit { "yes" } else { "no" }
        );
    }

    println!(
        "\n{located}/{trials} out-of-model defects localized to a plausible site \
         ({exactish} behaved exactly like a modeled fault)"
    );
}
