//! Diagnosing from imperfect tester data.
//!
//! A defective chip is tested; the tester's fail memory overflows, some scan
//! cells read `X`, and a marginal strobe flips the odd bit. This example
//! walks the whole noise-tolerant pipeline:
//!
//! 1. build a same/different dictionary under a construction *budget*;
//! 2. corrupt the defect's datalog at increasing severity;
//! 3. diagnose from the ternary (0/1/X) reconstruction and watch the report
//!    degrade gracefully — exact match, then consistent-under-mask, then a
//!    ranked best-effort list — without ever panicking.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example noisy_diagnosis [circuit] [seed]
//! ```

use std::time::Duration;

use same_different::dict::diagnose::observed_responses;
use same_different::dict::diagnose::MatchQuality;
use same_different::dict::{
    replace_baselines_budgeted, select_baselines_budgeted, Budget, Procedure1Options,
    SameDifferentDictionary,
};
use same_different::logic::BitVec;
use same_different::sim::{CorruptionModel, ScanChains};
use same_different::Experiment;
use sdd_logic::Prng;

fn main() {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s298".to_owned());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let mut rng = Prng::seed_from_u64(seed);

    let exp = Experiment::iscas89(&circuit, 1).expect("known circuit");
    let chains = ScanChains::balanced(exp.circuit(), 2);
    let tests = exp.diagnostic_tests(&Default::default());
    let matrix = exp.simulate(&tests.tests);
    let expected: Vec<BitVec> = (0..matrix.test_count())
        .map(|t| matrix.good_response(t).clone())
        .collect();

    // Offline, under a construction budget: 250 ms for Procedure 1, a
    // handful of replacement passes for Procedure 2. `completed` tells us
    // whether the search converged or the budget cut it short — either way
    // the baselines are valid.
    let mut selection = select_baselines_budgeted(
        &matrix,
        &Procedure1Options {
            calls1: 20,
            ..Procedure1Options::default()
        },
        &Budget::deadline(Duration::from_millis(250)),
    );
    let refinement =
        replace_baselines_budgeted(&matrix, &mut selection.baselines, &Budget::max_calls(4));
    println!(
        "dictionary built under budget: {} calls (converged: {}), {} passes \
         (converged: {}), {} indistinguished pairs",
        selection.calls,
        selection.completed,
        refinement.passes,
        refinement.completed,
        refinement.indistinguished_pairs,
    );
    let dictionary = SameDifferentDictionary::build(&matrix, &selection.baselines);

    // The defect, kept secret from the dictionary.
    let culprit_pos = rng.gen_range(0..exp.faults().len());
    let culprit = exp.universe().fault(exp.faults()[culprit_pos]);
    let observed = observed_responses(exp.circuit(), exp.view(), culprit, &tests.tests);
    println!("\ninjected defect: {}\n", culprit.describe(exp.circuit()));

    // Increasingly hostile testers.
    let scenarios: Vec<(&str, CorruptionModel)> = vec![
        ("clean datalog", CorruptionModel::clean()),
        (
            "5% cells masked to X",
            CorruptionModel::clean()
                .with_mask_rate(0.05)
                .with_seed(seed),
        ),
        (
            "fail memory holds 10 entries",
            CorruptionModel::clean().with_truncation(10),
        ),
        (
            "truncated + 20% masked + 2% flipped",
            CorruptionModel::clean()
                .with_truncation(10)
                .with_mask_rate(0.20)
                .with_flip_rate(0.02)
                .with_seed(seed),
        ),
    ];

    for (label, model) in scenarios {
        let masked = model
            .observe(exp.circuit(), &chains, &observed, &expected)
            .expect("responses line up with the test set");
        let known: usize = masked.iter().map(|m| m.known_count()).sum();
        let total: usize = masked.iter().map(|m| m.len()).sum();
        let report = dictionary
            .diagnose_masked(&masked)
            .expect("observation shaped by the tester model");
        let quality = match report.quality {
            MatchQuality::Exact => "exact",
            MatchQuality::ConsistentUnderMask => "consistent under mask",
            MatchQuality::Ranked => "best-effort ranking",
        };
        println!("{label}: {known}/{total} bits known -> {quality}");
        for candidate in report.ranking.iter().take(3) {
            println!(
                "    {:<28} {} mismatches over {} known bits, confidence {:.3}{}",
                exp.universe()
                    .fault(exp.faults()[candidate.fault])
                    .describe(exp.circuit()),
                candidate.mismatches,
                candidate.known,
                candidate.confidence,
                if candidate.fault == culprit_pos {
                    "   <- injected defect"
                } else {
                    ""
                },
            );
        }
        // Under masking and truncation alone the true fault cannot leave the
        // candidate set; only bit flips can evict it.
        if model.flip_rate == 0.0 {
            assert!(report.candidates().contains(&culprit_pos));
        }
    }
    println!("\nno scenario panicked: diagnosis degraded gracefully");
}
