//! Volume triage: from a pile of failing devices to a ranked defect list.
//!
//! A production ramp does not diagnose one device — it ingests a whole
//! corpus of tester datalogs and asks which *defects* recur. This example
//! synthesizes a 200-device corpus with two injected systematic faults
//! (a process defect hitting 20% of devices each) over a background of
//! random single-device faults plus tester noise, streams it through the
//! volume engine, and prints the clustered verdict: the injected defects
//! surface at the top, classified systematic, each with its output cone.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example volume_triage [circuit]
//! ```

use same_different::dict::SameDifferentDictionary;
use same_different::store::StoredDictionary;
use same_different::volume::{self, JsonlSink, SynthSpec, VolumeOptions, WholeSource};
use same_different::Experiment;

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "s298".to_owned());
    let exp = Experiment::iscas89(&circuit, 1).expect("known circuit");
    let tests = exp.diagnostic_tests(&Default::default());
    let matrix = exp.simulate(&tests.tests);
    let dictionary = SameDifferentDictionary::with_fault_free_baselines(&matrix);
    let stored = StoredDictionary::SameDifferent(dictionary);
    let faults = matrix.fault_count();

    // Output cones turn fault clusters into *physical* clusters: faults
    // observed at the same outputs point at the same region of silicon.
    let cones = same_different::sim::OutputCones::compute(exp.circuit(), exp.view());
    let fault_cones = cones.fault_cones(exp.universe(), exp.faults());

    // Inject two uniquely-diagnosable systematic faults (each clean
    // recurrence must cluster under its own index, not an equivalent
    // lower-indexed fault's), then synthesize the corpus: 200 devices,
    // 20% + 20% systematic, the rest random, with a light masking rate
    // standing in for datalog truncation.
    let representative = |fault: usize| -> (usize, usize) {
        use same_different::volume::shard::{diagnose_sharded, ShardObservation};
        let responses: Vec<sdd_logic::MaskedBitVec> = (0..matrix.test_count())
            .map(|t| {
                sdd_logic::MaskedBitVec::from_known(matrix.response(t, matrix.class(t, fault)))
            })
            .collect();
        let report =
            diagnose_sharded(&[(0, &stored)], ShardObservation::Responses(&responses)).unwrap();
        (report.best.first().copied().unwrap_or(0), report.best.len())
    };
    let pick = |from: usize, taken: Option<usize>| -> usize {
        (from..faults)
            .chain(0..from)
            .find(|&f| Some(f) != taken && representative(f) == (f, 1))
            .expect("circuit has uniquely diagnosable faults")
    };
    let first = pick(faults / 3, None);
    let injected = [first, pick((2 * faults) / 3, Some(first))];
    let spec = SynthSpec {
        devices: 200,
        systematic: injected.iter().map(|&f| (f, 0.2)).collect(),
        mask_rate: 0.01,
        flip_rate: 0.0,
        jsonl_every: 5,
        seed: 42,
    };
    let mut corpus = Vec::new();
    volume::synthesize(&matrix, &spec, &mut corpus).expect("synthesize corpus");
    let corpus = String::from_utf8(corpus).unwrap();

    // Stream the corpus through the engine. The per-device records go to a
    // buffer here; `sdd volume --report` would stream them to a file.
    let source = WholeSource::new(stored)
        .with_cones(fault_cones)
        .expect("cones cover every fault");
    let mut lines = corpus.lines().map(|l| Ok(l.to_owned()));
    let mut report = Vec::new();
    let summary = volume::run(
        &source,
        &mut lines,
        &mut JsonlSink(&mut report),
        &VolumeOptions {
            seed: spec.seed,
            ..VolumeOptions::default()
        },
    )
    .expect("volume run");

    println!(
        "{circuit}: {} devices diagnosed ({} ok, {} partial, {} error), {} skipped",
        summary.devices, summary.ok, summary.partial, summary.error, summary.skipped
    );
    println!(
        "injected systematic faults: {} and {} (20% of devices each)",
        injected[0], injected[1]
    );
    println!(
        "\nfault clusters (systematic floor: {} recurrences):",
        summary.clusters.systematic_at
    );
    println!(
        "{:>8}  {:>6}  {:>8}  {:<11}  note",
        "fault", "count", "score", "class"
    );
    for cluster in summary.clusters.faults.iter().take(8) {
        let class = if cluster.systematic {
            "systematic"
        } else {
            "random"
        };
        let note = if injected.contains(&cluster.fault) {
            "<- injected"
        } else {
            ""
        };
        println!(
            "{:>8}  {:>6}  {:>8.2}  {:<11}  {note}",
            cluster.fault, cluster.count, cluster.score, class
        );
    }
    println!("\noutput-cone clusters (shared observation region):");
    for cluster in summary.clusters.cones.iter().take(4) {
        let class = if cluster.systematic {
            "systematic"
        } else {
            "random"
        };
        println!(
            "  cone {}  count={} score={:.2} faults={} class={class}",
            cluster.cone,
            cluster.count,
            cluster.score,
            cluster.faults.len()
        );
    }

    let top: Vec<usize> = summary
        .clusters
        .faults
        .iter()
        .take(2)
        .map(|c| c.fault)
        .collect();
    if injected.iter().all(|f| top.contains(f)) {
        println!("\nverdict: both injected defects surfaced as the top clusters.");
    } else {
        println!("\nverdict: ranking degraded — top clusters {top:?} vs injected {injected:?}.");
    }
}
