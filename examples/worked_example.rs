//! Reproduces the paper's worked example — Tables 1 through 5 — exactly.
//!
//! Run with:
//!
//! ```text
//! cargo run --example worked_example
//! ```

use same_different::dict::example::paper_example;
use same_different::dict::{
    score_candidates, select_baselines_once, FullDictionary, PassFailDictionary,
    SameDifferentDictionary,
};
use same_different::sim::Partition;

fn main() {
    let matrix = paper_example();
    let faults = ["f0", "f1", "f2", "f3"];

    // ---- Table 1: the full fault dictionary. ----
    let full = FullDictionary::new(matrix.clone());
    println!("Table 1: full fault dictionary");
    println!("      t0   t1");
    println!(
        "  ff  {}   {}",
        matrix.good_response(0),
        matrix.good_response(1)
    );
    for (i, name) in faults.iter().enumerate() {
        println!(
            "  {name}  {}   {}",
            full.response(i, 0),
            full.response(i, 1)
        );
    }

    // ---- Table 2: the pass/fail dictionary. ----
    let pf = PassFailDictionary::build(&matrix);
    println!("\nTable 2: pass/fail fault dictionary");
    println!("      t0  t1");
    for (i, name) in faults.iter().enumerate() {
        let s = pf.signature(i);
        println!("  {name}   {}   {}", u8::from(s.bit(0)), u8::from(s.bit(1)));
    }
    println!(
        "  indistinguished pairs: {} (f2,f3)",
        pf.indistinguished_pairs()
    );

    // ---- Table 4: selecting z_bl,0. ----
    println!("\nTable 4: selection of z_bl,0 (dist over Z_0)");
    let p0 = Partition::unit(4);
    for (class, dist) in score_candidates(&matrix, 0, &p0).iter().enumerate() {
        println!("  z = {}  dist = {dist}", matrix.response(0, class as u32));
    }

    // ---- Table 5: selecting z_bl,1. ----
    println!("\nTable 5: selection of z_bl,1 (dist over Z_1, after z_bl,0 = 01)");
    let p1 = Partition::from_labels(&[0, 0, 1, 1]);
    for (class, dist) in score_candidates(&matrix, 1, &p1).iter().enumerate() {
        println!("  z = {}  dist = {dist}", matrix.response(1, class as u32));
    }

    // ---- Table 3: the same/different dictionary with those baselines. ----
    let (baselines, left) = select_baselines_once(&matrix, &[0, 1], Some(10));
    let sd = SameDifferentDictionary::build(&matrix, &baselines);
    println!("\nTable 3: same/different fault dictionary");
    println!("  bl  {}   {}", sd.baseline(0), sd.baseline(1));
    println!("      t0  t1");
    for (i, name) in faults.iter().enumerate() {
        let s = sd.signature(i);
        println!("  {name}   {}   {}", u8::from(s.bit(0)), u8::from(s.bit(1)));
    }
    println!(
        "  indistinguished pairs: {left} — full-dictionary resolution at pass/fail size + k*m"
    );

    assert_eq!(left, 0);
    assert_eq!(sd.baseline(0).to_string(), "01");
    assert_eq!(sd.baseline(1).to_string(), "10");
    println!("\nAll values match the paper.");
}
