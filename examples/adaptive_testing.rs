//! Adaptive test application: order the tests so diagnosis converges early
//! and stop as soon as the observed signature is unique.
//!
//! On a tester, every applied pattern costs time. With tests ordered by
//! resolution contribution (the paper's ref [13] direction), the partition
//! of faults refines fast, and a diagnosis session can stop after a prefix
//! of the test set once the remaining candidates cannot be narrowed
//! further.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example adaptive_testing [circuit]
//! ```

use same_different::atpg::AtpgOptions;
use same_different::dict::{
    order_tests_for_resolution, resolution_profile, select_baselines, Procedure1Options,
};
use same_different::Experiment;

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "s420".to_owned());
    let exp = Experiment::iscas89(&circuit, 1).expect("known circuit");
    let tests = exp.detection_tests(10, &AtpgOptions::default());
    let matrix = exp.simulate(&tests.tests);
    let selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 10,
            ..Procedure1Options::default()
        },
    );

    let natural: Vec<usize> = (0..matrix.test_count()).collect();
    let ordered = order_tests_for_resolution(&matrix, &selection.baselines);
    let base = resolution_profile(&matrix, &selection.baselines, &natural);
    let smart = resolution_profile(&matrix, &selection.baselines, &ordered);
    let final_pairs = *base.last().expect("nonempty");

    println!(
        "circuit {}: {} tests, {} faults, final resolution {} indistinguished pairs\n",
        exp.circuit().name(),
        matrix.test_count(),
        exp.faults().len(),
        final_pairs
    );
    println!(
        "{:>9} {:>16} {:>16}",
        "tests", "natural order", "greedy order"
    );
    for percent in [5usize, 10, 20, 30, 50, 75, 100] {
        let prefix = (matrix.test_count() * percent).div_ceil(100);
        println!(
            "{prefix:>6} ({percent:>3}%) {:>13} {:>16}",
            base[prefix], smart[prefix]
        );
    }

    // Where does each order first reach final resolution?
    let converged = |profile: &[u64]| {
        profile
            .iter()
            .position(|&p| p == final_pairs)
            .expect("profile ends at the final resolution")
    };
    let natural_at = converged(&base);
    let ordered_at = converged(&smart);
    println!(
        "\nfull resolution reached after {natural_at} tests (natural) vs \
         {ordered_at} tests (ordered) — the tester can stop {}% earlier",
        (100 * natural_at.saturating_sub(ordered_at))
            .checked_div(natural_at)
            .unwrap_or(0)
    );
    assert!(ordered_at <= natural_at);
}
