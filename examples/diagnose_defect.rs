//! Diagnose an injected defect with each dictionary type.
//!
//! A "defective chip" is simulated by injecting a randomly chosen stuck-at
//! fault (the tester does not know which); its observed responses are then
//! matched against a pass/fail dictionary, a same/different dictionary, and
//! a full dictionary, and finally run through two-phase
//! dictionary-plus-simulation diagnosis.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example diagnose_defect [circuit] [seed]
//! ```

use same_different::atpg::AtpgOptions;
use same_different::dict::diagnose::{observed_responses, two_phase_diagnose};
use same_different::dict::{
    replace_baselines, select_baselines, FullDictionary, PassFailDictionary, Procedure1Options,
    SameDifferentDictionary,
};
use same_different::Experiment;
use sdd_logic::Prng;

fn main() {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s344".to_owned());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let mut rng = Prng::seed_from_u64(seed);

    let exp = Experiment::iscas89(&circuit, 1).expect("known circuit");
    let tests = exp.diagnostic_tests(&AtpgOptions::default());
    let matrix = exp.simulate(&tests.tests);

    // Build the dictionaries once, offline.
    let pass_fail = PassFailDictionary::build(&matrix);
    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 20,
            ..Procedure1Options::default()
        },
    );
    replace_baselines(&matrix, &mut selection.baselines);
    let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);
    let full = FullDictionary::new(matrix.clone());

    // The "defect": a fault the tester does not know.
    let culprit_pos = rng.gen_range(0..exp.faults().len());
    let culprit_id = exp.faults()[culprit_pos];
    let culprit = exp.universe().fault(culprit_id);
    println!(
        "injected defect: {} (kept secret from the dictionaries)",
        culprit.describe(exp.circuit())
    );

    // What the tester sees.
    let observed = observed_responses(exp.circuit(), exp.view(), culprit, &tests.tests);
    let observed_pf: same_different::logic::BitVec = observed
        .iter()
        .zip(0..matrix.test_count())
        .map(|(r, t)| r != matrix.good_response(t))
        .collect();

    let name = |pos: usize| {
        exp.universe()
            .fault(exp.faults()[pos])
            .describe(exp.circuit())
    };

    let r = pass_fail
        .diagnose(&observed_pf)
        .expect("well-formed observation");
    println!(
        "\npass/fail dictionary:      {} candidate(s): {}",
        r.candidates().len(),
        r.candidates()
            .iter()
            .map(|&p| name(p))
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert!(r.candidates().contains(&culprit_pos));

    let r = sd.diagnose(&observed).expect("well-formed observation");
    println!(
        "same/different dictionary: {} candidate(s): {}",
        r.candidates().len(),
        r.candidates()
            .iter()
            .map(|&p| name(p))
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert!(r.candidates().contains(&culprit_pos));

    let r = full.diagnose(&observed).expect("well-formed observation");
    println!(
        "full dictionary:           {} candidate(s): {}",
        r.candidates().len(),
        r.candidates()
            .iter()
            .map(|&p| name(p))
            .collect::<Vec<_>>()
            .join(", ")
    );
    assert!(r.candidates().contains(&culprit_pos));

    // Two-phase: dictionary screen + exact simulation of survivors.
    let ranked = two_phase_diagnose(
        exp.circuit(),
        exp.view(),
        exp.universe(),
        exp.faults(),
        &tests.tests,
        &observed,
        &sd,
    )
    .expect("well-formed observation");
    println!("\ntwo-phase (same/different screen + simulation):");
    for (id, distance) in &ranked {
        println!(
            "  {:<24} total output-bit distance {distance}",
            exp.universe().fault(*id).describe(exp.circuit())
        );
    }
    assert_eq!(
        ranked[0].1, 0,
        "the culprit's own behaviour matches exactly"
    );
    println!("\ninjected defect is ranked first: diagnosis succeeded");
}
