//! The full production flow: ATPG → dictionary → tester datalog →
//! diagnosis.
//!
//! A defective chip is "tested" on a modeled tester with two scan chains;
//! the tester emits a fail log (failing test / chain / cell entries), and
//! diagnosis reconstructs the observed responses from the log before
//! matching them against a same/different dictionary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tester_datalog [circuit] [seed]
//! ```

use same_different::atpg::AtpgOptions;
use same_different::dict::diagnose::observed_responses;
use same_different::dict::{select_baselines, Procedure1Options, SameDifferentDictionary};
use same_different::logic::BitVec;
use same_different::sim::{FailLog, ScanChains};
use same_different::Experiment;
use sdd_logic::Prng;

fn main() {
    let mut args = std::env::args().skip(1);
    let circuit = args.next().unwrap_or_else(|| "s298".to_owned());
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let mut rng = Prng::seed_from_u64(seed);

    let exp = Experiment::iscas89(&circuit, 1).expect("known circuit");
    let chains = ScanChains::balanced(exp.circuit(), 2);
    println!(
        "circuit {}: {} scan cells on {} chains, {} primary outputs",
        exp.circuit().name(),
        chains.cell_count(),
        chains.chain_count(),
        exp.circuit().output_count()
    );

    // Offline: tests, expected responses, dictionary.
    let tests = exp.diagnostic_tests(&AtpgOptions::default());
    let matrix = exp.simulate(&tests.tests);
    let expected: Vec<BitVec> = (0..matrix.test_count())
        .map(|t| matrix.good_response(t).clone())
        .collect();
    let selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 20,
            ..Procedure1Options::default()
        },
    );
    let dictionary = SameDifferentDictionary::build(&matrix, &selection.baselines);

    // On the tester: a defective chip fails some observations.
    let culprit_pos = rng.gen_range(0..exp.faults().len());
    let culprit = exp.universe().fault(exp.faults()[culprit_pos]);
    let observed = observed_responses(exp.circuit(), exp.view(), culprit, &tests.tests);
    let log = FailLog::from_responses(exp.circuit(), &chains, &observed, &expected);
    println!(
        "\ndefect {} produced {} failing observations over {} failing tests:",
        culprit.describe(exp.circuit()),
        log.len(),
        log.failing_tests().len()
    );
    for entry in log.entries.iter().take(8) {
        println!("  test {:>3} @ {}", entry.test, entry.observation);
    }
    if log.len() > 8 {
        println!("  … {} more", log.len() - 8);
    }

    // In the diagnosis tool: datalog → responses → dictionary match.
    let reconstructed = log.to_responses(exp.circuit(), &chains, &expected);
    assert_eq!(reconstructed, observed, "datalog is lossless");
    let report = dictionary
        .diagnose(&reconstructed)
        .expect("well-formed observation");
    println!("\ndiagnosis candidates (distance {}):", report.distance);
    for &pos in report.candidates() {
        println!(
            "  {}",
            exp.universe()
                .fault(exp.faults()[pos])
                .describe(exp.circuit())
        );
    }
    assert!(report.candidates().contains(&culprit_pos));
    println!("\nthe injected defect is among the candidates: flow verified");
}
