//! Size-versus-resolution sweep: how the same/different dictionary's
//! advantage over pass/fail grows with the test set.
//!
//! The paper observes that the improvement is larger for larger test sets
//! (which is why 10-detection sets shine). This example sweeps n-detection
//! test sets for n = 1, 2, 5, 10 on one circuit and prints the trade-off.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dictionary_tradeoffs [circuit]
//! ```

use same_different::atpg::AtpgOptions;
use same_different::dict::{
    replace_baselines, select_baselines, DictionarySizes, Procedure1Options,
};
use same_different::Experiment;

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "s386".to_owned());
    let exp = Experiment::iscas89(&circuit, 1).expect("known circuit");
    let n_faults = exp.faults().len();
    let m = exp.view().outputs().len();
    println!(
        "circuit {}: {} collapsed faults, {} observed outputs\n",
        exp.circuit().name(),
        n_faults,
        m
    );
    println!(
        "{:>3} {:>6} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "n", "tests", "p/f bits", "s/d bits", "full", "p/f", "s/d P1", "s/d P2"
    );

    for n in [1u32, 2, 5, 10] {
        let tests = exp.detection_tests(n, &AtpgOptions::default());
        let matrix = exp.simulate(&tests.tests);
        let sizes = DictionarySizes::new(tests.len() as u64, n_faults as u64, m as u64);
        let full = matrix.full_partition().indistinguished_pairs();
        let pf = matrix.pass_fail_partition().indistinguished_pairs();
        let mut selection = select_baselines(
            &matrix,
            &Procedure1Options {
                calls1: 20,
                ..Procedure1Options::default()
            },
        );
        let p1 = selection.indistinguished_pairs;
        let p2 = replace_baselines(&matrix, &mut selection.baselines);
        println!(
            "{n:>3} {:>6} {:>12} {:>12} {full:>10} {pf:>10} {p1:>10} {p2:>10}",
            tests.len(),
            sizes.pass_fail,
            sizes.same_different,
        );
    }
    println!(
        "\ncolumns `full`/`p/f`/`s/d`: fault pairs left indistinguished.\n\
         Expect the p/f − s/d gap to widen as n grows, with s/d approaching `full`."
    );
}
