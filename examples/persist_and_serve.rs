//! Persist a dictionary to the binary store and serve it over TCP — the
//! deployment shape the paper's dictionaries are built for: compute once
//! next to the ATPG flow, then answer tester-floor diagnosis queries all
//! day.
//!
//! ```text
//! cargo run --example persist_and_serve
//! ```

use same_different::dict::Procedure1Options;
use same_different::serve::{serve, Client, ServeConfig};
use same_different::store::{save, StoredDictionary};
use same_different::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the c17 same/different dictionary (Procedures 1 + 2).
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let suite = exp.build_dictionaries(
        &tests,
        &Procedure1Options {
            calls1: 5,
            ..Default::default()
        },
    );
    println!(
        "built c17 same/different dictionary: {} faults x {} tests, {} indistinguished pairs",
        suite.same_different.fault_count(),
        suite.same_different.test_count(),
        suite.procedure2_pairs,
    );

    // 2. Persist it to the checksummed binary store.
    let dir = std::env::temp_dir().join(format!("sdd-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("c17.sddb");
    save(
        &path,
        &StoredDictionary::SameDifferent(suite.same_different),
    )?;
    println!(
        "saved {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // 3. Serve it and talk the line protocol over loopback.
    let handle = serve(&ServeConfig::default())?;
    println!("serving on {}", handle.addr());
    let mut client = Client::connect(handle.addr())?;
    println!(
        "> LOAD c17 ...\n< {}",
        client.request(&format!("LOAD c17 {}", path.display()))?
    );

    // A corrupted datalog: the first test's outputs survive (fault 0 makes
    // test 0 read 10 instead of the fault-free response), the second test's
    // first bit was lost in transfer.
    let fault = exp.universe().fault(exp.faults()[0]);
    let mut observation = Vec::new();
    for (t, test) in tests.iter().enumerate() {
        let response =
            same_different::sim::reference::faulty_response(exp.circuit(), exp.view(), fault, test);
        let mut token = response.to_string();
        if t == 1 {
            token.replace_range(0..1, "X");
        }
        observation.push(token);
    }
    let observation = observation.join("/");
    println!("> DIAG c17 {observation}");
    println!("< {}", client.request(&format!("DIAG c17 {observation}"))?);

    println!("> STATS\n< {}", client.request("STATS")?);
    println!("> SHUTDOWN\n< {}", client.request("SHUTDOWN")?);
    handle.wait();
    println!("server drained");
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
