//! The epoll-reactor serve transport (see the [`crate::serve`] module docs,
//! "Transport backends").
//!
//! One reactor thread owns every socket through a [`crate::reactor::Poller`]:
//! it accepts, reads complete request lines, answers the cheap inline verbs
//! (`STATS`, `QUIT`, `SHUTDOWN`, malformed `VOLUME` headers) on the spot,
//! and hands CPU-bound work to the worker pool over an SPMC job queue.
//! Workers execute through the exact same [`crate::serve::execute_line`] /
//! [`crate::serve::execute_volume`] core the threaded backend uses — so the
//! wire bytes are identical — and push finished reply buffers to a
//! completion box that wakes the reactor through an eventfd.
//!
//! Ordering guarantee: a connection has **at most one job in flight**, and
//! consecutive worker-verb lines are folded into one job executed in order,
//! so pipelined requests are always answered in issue order — byte-identical
//! to sending them one at a time.
//!
//! Backpressure: a connection whose outbound buffer crosses
//! [`HIGH_WATER`] stops being read (its read interest is dropped) until the
//! buffer drains below [`LOW_WATER`]; a client that stops reading its
//! replies therefore stops being served instead of ballooning memory, and
//! a write stalled past the configured write timeout is connection death.
//!
//! There is no poll tick anywhere: idle cutoffs and write stalls are
//! computed deadlines fed to `epoll_wait`, and shutdown rides the existing
//! listener poke.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::reactor::{Event, Poller, Waker};
use crate::serve::{
    begin_shutdown, err_reply, execute_line, execute_volume, push_line, shed_connection,
    stats_reply, RequestClock, Scratch, Shared, VOLUME_USAGE,
};

/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the completion-box eventfd.
const TOKEN_WAKER: u64 = 1;
/// First connection token; connection `i` registers as `TOKEN_BASE + i`.
const TOKEN_BASE: u64 = 2;

/// Outbound bytes at which a connection stops being read (backpressure).
const HIGH_WATER: usize = 256 * 1024;
/// Outbound bytes at which a backpressured connection resumes reading.
const LOW_WATER: usize = 64 * 1024;
/// Inbound buffer cap: a client cannot buffer more than this un-parsed.
const INBUF_HIGH_WATER: usize = 1024 * 1024;
/// Most consecutive pipelined worker lines folded into one job — amortizes
/// the queue handoff without letting one connection monopolize a worker.
const JOB_BATCH: usize = 64;
/// Size of the reusable read buffer.
const READ_CHUNK: usize = 64 * 1024;

/// One unit of CPU-bound work handed to the pool.
enum WorkItem {
    /// Consecutive worker-verb request lines, executed in order.
    Lines(Vec<String>),
    /// A `VOLUME` request whose counted corpus was already read off the
    /// wire by the reactor.
    Volume {
        request: String,
        corpus: Vec<String>,
    },
}

/// A job tagged with its connection slot and the slot's generation at
/// dispatch time — a completion whose generation no longer matches (the
/// connection died and the slot was reused) is dropped on the floor.
struct Job {
    conn: usize,
    generation: u64,
    item: WorkItem,
}

/// Finished reply bytes headed back to one connection's outbound buffer.
struct Completion {
    conn: usize,
    generation: u64,
    bytes: Vec<u8>,
}

/// The SPMC job queue between the reactor and the worker pool.
struct JobQueue {
    state: Mutex<JobState>,
    ready: Condvar,
}

#[derive(Default)]
struct JobState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(JobState::default()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` once the queue is closed **and**
    /// drained, so no accepted work is ever dropped.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

/// Where workers park finished replies; the eventfd waker kicks the
/// reactor out of `epoll_wait` to collect them.
struct CompletionBox {
    finished: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl CompletionBox {
    fn push(&self, completion: Completion) {
        let mut finished = self.finished.lock().unwrap_or_else(|e| e.into_inner());
        finished.push(completion);
        drop(finished);
        // Unconditional: eventfd writes coalesce, and a missed wakeup
        // would strand a reply until the next unrelated event.
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        self.waker.drain();
        let mut finished = self.finished.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *finished)
    }
}

/// Protocol state of one connection.
enum ConnState {
    /// Between requests; complete lines in `pending` advance the machine.
    Idle,
    /// A `VOLUME` header arrived; collecting its counted corpus lines.
    AwaitingCorpus {
        request: String,
        remaining: usize,
        corpus: Vec<String>,
    },
    /// A job is queued or running; replies for it will arrive as one
    /// completion. At most one per connection — that is the ordering
    /// guarantee.
    InFlight,
}

/// One admitted connection.
struct Conn {
    stream: TcpStream,
    generation: u64,
    /// Raw bytes read but not yet split into lines.
    inbuf: Vec<u8>,
    /// Complete lines (trailing `\r`/`\n` stripped) not yet consumed.
    pending: VecDeque<String>,
    /// Reply bytes not yet written to the socket.
    outbuf: Vec<u8>,
    state: ConnState,
    /// Last complete line parsed (or last completion) — the idle clock.
    last_activity: Instant,
    /// When the current write stall began, if one is in progress.
    write_stalled_since: Option<Instant>,
    /// The client half-closed its sending side.
    read_eof: bool,
    /// Close once the outbound buffer drains and no job is in flight.
    closing: bool,
    /// Reading is paused because `outbuf` crossed the high-water mark.
    paused: bool,
    /// Interest currently registered with the poller (read, write).
    interest: (bool, bool),
}

/// Is this request line one the worker pool executes (as opposed to the
/// inline `STATS`/`QUIT`/`SHUTDOWN` and the corpus-reading `VOLUME`)?
fn is_worker_verb(request: &str) -> bool {
    let verb = request
        .split_whitespace()
        .next()
        .unwrap_or_default()
        .to_ascii_uppercase();
    !matches!(verb.as_str(), "STATS" | "QUIT" | "SHUTDOWN" | "VOLUME")
}

/// Splits every complete line out of `inbuf` into `pending`, stripping
/// trailing `\r`s exactly like the threaded backend's `read_line` + trim.
/// `false` means the bytes were not UTF-8 — connection death there too.
fn parse_lines(conn: &mut Conn) -> bool {
    let mut start = 0;
    while let Some(offset) = conn.inbuf[start..].iter().position(|&b| b == b'\n') {
        let end = start + offset;
        let mut slice = &conn.inbuf[start..end];
        while let [head @ .., b'\r'] = slice {
            slice = head;
        }
        let Ok(text) = std::str::from_utf8(slice) else {
            return false;
        };
        conn.pending.push_back(text.to_owned());
        conn.last_activity = Instant::now();
        start = end + 1;
    }
    conn.inbuf.drain(..start);
    true
}

/// Writes as much of `outbuf` as the socket accepts right now. Starts (or
/// clears) the write-stall clock; any hard error is connection death.
fn flush(conn: &mut Conn) -> io::Result<()> {
    let mut written = 0;
    let result = loop {
        if written == conn.outbuf.len() {
            break Ok(());
        }
        match (&conn.stream).write(&conn.outbuf[written..]) {
            Ok(0) => break Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                written += n;
                conn.write_stalled_since = None;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if conn.write_stalled_since.is_none() {
                    conn.write_stalled_since = Some(Instant::now());
                }
                break Ok(());
            }
            Err(e) => break Err(e),
        }
    };
    conn.outbuf.drain(..written);
    if conn.outbuf.is_empty() {
        conn.write_stalled_since = None;
    }
    result
}

/// What one state-machine step decided (returned out of the borrow of the
/// connection so the caller can touch the queue).
enum Step {
    /// Hand this work to the pool; the connection is now `InFlight`.
    Dispatch(WorkItem),
    /// A request was handled inline (or consumed); keep advancing.
    Continue,
    /// Nothing more can happen until new bytes or a completion arrive.
    Stop,
}

/// Advances one connection's protocol state machine by a single request
/// (or corpus chunk). Inline verbs reply straight into `outbuf`; worker
/// verbs fold consecutive lines into one [`WorkItem::Lines`] job.
fn advance_step(shared: &Arc<Shared>, conn: &mut Conn, processed: &mut u64) -> Step {
    if conn.closing {
        return Step::Stop;
    }
    match &mut conn.state {
        ConnState::InFlight => Step::Stop,
        ConnState::AwaitingCorpus {
            remaining, corpus, ..
        } => {
            while *remaining > 0 {
                let Some(line) = conn.pending.pop_front() else {
                    return Step::Stop; // need more bytes off the wire
                };
                corpus.push(line);
                *remaining -= 1;
            }
            let ConnState::AwaitingCorpus {
                request, corpus, ..
            } = std::mem::replace(&mut conn.state, ConnState::InFlight)
            else {
                unreachable!("matched AwaitingCorpus above");
            };
            Step::Dispatch(WorkItem::Volume { request, corpus })
        }
        ConnState::Idle => {
            let Some(line) = conn.pending.pop_front() else {
                return Step::Stop;
            };
            let request = line.trim();
            if request.is_empty() {
                return Step::Continue;
            }
            shared.requests.fetch_add(1, Ordering::Relaxed);
            *processed += 1;
            let verb = request
                .split_whitespace()
                .next()
                .unwrap_or_default()
                .to_ascii_uppercase();
            match verb.as_str() {
                "STATS" => {
                    let reply = stats_reply(shared);
                    push_line(&mut conn.outbuf, &reply);
                    Step::Continue
                }
                "QUIT" => {
                    push_line(&mut conn.outbuf, "OK BYE");
                    conn.closing = true;
                    conn.pending.clear();
                    Step::Stop
                }
                "SHUTDOWN" => {
                    push_line(&mut conn.outbuf, "OK BYE");
                    conn.closing = true;
                    conn.pending.clear();
                    begin_shutdown(shared);
                    Step::Stop
                }
                "VOLUME" => {
                    let mut tokens = request.split_whitespace();
                    tokens.next();
                    match (tokens.next(), tokens.next().map(str::parse::<usize>)) {
                        (Some(_), Some(Ok(count))) => {
                            conn.state = ConnState::AwaitingCorpus {
                                request: request.to_owned(),
                                remaining: count,
                                corpus: Vec::new(),
                            };
                            Step::Continue
                        }
                        // A malformed header promised no corpus lines, so
                        // the usage error is safe to answer inline.
                        _ => {
                            push_line(&mut conn.outbuf, &err_reply(VOLUME_USAGE));
                            Step::Continue
                        }
                    }
                }
                _ => {
                    // Fold the run of consecutive worker-verb lines into
                    // one job: one queue handoff, replies in order.
                    let mut batch = vec![request.to_owned()];
                    while batch.len() < JOB_BATCH {
                        let Some(next) = conn.pending.front() else {
                            break;
                        };
                        let trimmed = next.trim();
                        if trimmed.is_empty() {
                            conn.pending.pop_front();
                            continue;
                        }
                        if !is_worker_verb(trimmed) {
                            break;
                        }
                        let owned = trimmed.to_owned();
                        conn.pending.pop_front();
                        shared.requests.fetch_add(1, Ordering::Relaxed);
                        *processed += 1;
                        batch.push(owned);
                    }
                    conn.state = ConnState::InFlight;
                    Step::Dispatch(WorkItem::Lines(batch))
                }
            }
        }
    }
}

/// Looks up the connection slot an epoll event points at, tolerating an
/// out-of-range token or a vacant slot by returning `None` — the event
/// loop's lookups must degrade to a connection close, never a panic,
/// because the reactor thread runs outside the per-request `catch_unwind`.
fn event_conn(conns: &mut [Option<Conn>], index: usize) -> Option<&mut Conn> {
    conns.get_mut(index).and_then(Option::as_mut)
}

/// What a timer sweep decided for one connection.
enum TimerAction {
    None,
    /// Flush whatever the timer queued (the idle courtesy line) and maybe
    /// close.
    Finish,
    /// Hard close right now (write stall, mid-corpus idle).
    Close,
}

/// The reactor: the event loop's whole mutable world.
struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    shared: Arc<Shared>,
    queue: Arc<JobQueue>,
    completions: Arc<CompletionBox>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Monotonic generation stamped onto every admitted connection.
    generation: u64,
    draining: bool,
    events: Vec<Event>,
    read_buf: Vec<u8>,
}

/// Spawns the reactor thread and its worker pool over an already-bound
/// listener. Returns the reactor handle (joins once fully drained) and the
/// worker handles.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> io::Result<(JoinHandle<()>, Vec<JoinHandle<()>>)> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
    poller.register(waker.fd(), TOKEN_WAKER, true, false)?;
    let queue = Arc::new(JobQueue::new());
    let completions = Arc::new(CompletionBox {
        finished: Mutex::new(Vec::new()),
        waker,
    });
    let workers = (0..shared.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let completions = Arc::clone(&completions);
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&queue, &completions, &shared))
        })
        .collect();
    let reactor = Reactor {
        poller,
        listener: Some(listener),
        shared,
        queue,
        completions,
        conns: Vec::new(),
        free: Vec::new(),
        generation: 0,
        draining: false,
        events: Vec::new(),
        read_buf: vec![0; READ_CHUNK],
    };
    let handle = thread::spawn(move || reactor.run());
    Ok((handle, workers))
}

/// One pool worker: pops jobs, executes them through the shared verb core
/// (with the same per-line panic containment the threaded backend has),
/// and posts the reply bytes back.
fn worker_loop(queue: &JobQueue, completions: &CompletionBox, shared: &Arc<Shared>) {
    let mut scratch = Scratch::default();
    while let Some(job) = queue.pop() {
        let mut out = Vec::new();
        match job.item {
            WorkItem::Lines(lines) => {
                for line in &lines {
                    let clock = RequestClock::new(shared.limits.request_deadline);
                    let before = out.len();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        execute_line(line, shared, &mut scratch, &clock, &mut out);
                    }));
                    if outcome.is_err() {
                        // Same contract as the threaded backend: the
                        // panicking request yields exactly one ERR line and
                        // the connection (and worker) survive.
                        out.truncate(before);
                        push_line(&mut out, &err_reply("internal error: request panicked"));
                    }
                }
            }
            WorkItem::Volume { request, corpus } => {
                let before = out.len();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    execute_volume(&request, corpus, shared, &mut out);
                }));
                if outcome.is_err() {
                    out.truncate(before);
                    push_line(&mut out, &err_reply("internal error: request panicked"));
                }
            }
        }
        completions.push(Completion {
            conn: job.conn,
            generation: job.generation,
            bytes: out,
        });
    }
}

impl Reactor {
    fn run(mut self) {
        loop {
            if !self.draining && self.shared.shutting_down.load(Ordering::SeqCst) {
                self.start_drain();
            }
            if self.draining && self.conns.iter().all(Option::is_none) {
                break;
            }
            let timeout = self.next_timeout();
            let mut events = std::mem::take(&mut self.events);
            events.clear();
            match self.poller.wait(&mut events, timeout) {
                Ok(_) => {
                    self.shared.wakeups.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    // epoll_wait only fails on programming errors; log and
                    // back off instead of spinning a hot loop on one.
                    eprintln!("sdd-serve: epoll wait failed: {e}");
                    thread::sleep(Duration::from_millis(100));
                }
            }
            for event in events.iter().copied() {
                match event.token {
                    TOKEN_LISTENER => self.on_listener(),
                    TOKEN_WAKER => self.on_completions(),
                    token => self.on_conn_event(token, event.readable, event.writable),
                }
            }
            self.events = events;
            self.check_timers();
        }
        // Drained: let the workers finish queued jobs and exit.
        self.queue.close();
    }

    /// Accepts everything the listener has ready, shedding past the
    /// connection cap and dropping post-shutdown arrivals (the poke).
    fn on_listener(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.shutting_down.load(Ordering::SeqCst) {
                        drop(stream); // the shutdown poke, or a raced client
                        continue;
                    }
                    if self.shared.active.load(Ordering::SeqCst)
                        >= self.shared.limits.max_connections
                    {
                        shed_connection(&stream, &self.shared);
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let index = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = TOKEN_BASE + index as u64;
        if self
            .poller
            .register(stream.as_raw_fd(), token, true, false)
            .is_err()
        {
            self.free.push(index);
            return;
        }
        self.generation += 1;
        self.shared.active.fetch_add(1, Ordering::SeqCst);
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        self.conns[index] = Some(Conn {
            stream,
            generation: self.generation,
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            outbuf: Vec::new(),
            state: ConnState::Idle,
            last_activity: Instant::now(),
            write_stalled_since: None,
            read_eof: false,
            closing: false,
            paused: false,
            interest: (true, false),
        });
    }

    /// Collects finished worker replies into their connections' outbound
    /// buffers and advances each (pipelined requests buffered behind the
    /// completed one run now).
    fn on_completions(&mut self) {
        for completion in self.completions.drain() {
            let index = completion.conn;
            let matched = self
                .conns
                .get_mut(index)
                .and_then(Option::as_mut)
                .is_some_and(|conn| {
                    if conn.generation != completion.generation {
                        return false; // the connection died; slot was reused
                    }
                    conn.outbuf.extend_from_slice(&completion.bytes);
                    conn.state = ConnState::Idle;
                    conn.last_activity = Instant::now();
                    true
                });
            if matched {
                self.advance(index, true);
                self.finish(index);
            }
        }
    }

    fn on_conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let index = usize::try_from(token - TOKEN_BASE).unwrap_or(usize::MAX);
        if event_conn(&mut self.conns, index).is_none() {
            return; // stale event for a connection closed this batch
        }
        if writable {
            let alive = match event_conn(&mut self.conns, index) {
                Some(conn) => flush(conn).is_ok(),
                // A slot live at the top of this function but vacant now is
                // a slab invariant violation. This thread runs outside the
                // per-request catch_unwind, so it must never panic: log,
                // close the slot, and keep serving everyone else.
                None => {
                    eprintln!("sdd-serve: connection slot {index} vanished mid-event; closing it");
                    false
                }
            };
            if !alive {
                self.close_conn(index);
                return;
            }
        }
        if readable && !self.fill_in(index) {
            self.close_conn(index);
            return;
        }
        self.advance(index, false);
        self.finish(index);
    }

    /// Reads everything the socket has (up to the inbound cap), splitting
    /// complete lines as they land. `false` is connection death.
    fn fill_in(&mut self, index: usize) -> bool {
        loop {
            let Some(conn) = self.conns[index].as_mut() else {
                return false;
            };
            if conn.read_eof || conn.paused || conn.closing || conn.inbuf.len() >= INBUF_HIGH_WATER
            {
                return true;
            }
            match (&conn.stream).read(&mut self.read_buf) {
                Ok(0) => {
                    conn.read_eof = true;
                    return true;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&self.read_buf[..n]);
                    if !parse_lines(conn) {
                        return false; // not UTF-8: same fate as threaded
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }

    /// Runs the state machine until it dispatches, blocks, or runs dry,
    /// then accounts the pipelining counter: every request consumed beyond
    /// the first of a read burst — and *every* request consumed on the
    /// completion path — was answered from bytes buffered behind an
    /// earlier request.
    fn advance(&mut self, index: usize, from_completion: bool) {
        let mut processed: u64 = 0;
        loop {
            let step = {
                let Some(conn) = self.conns[index].as_mut() else {
                    return;
                };
                advance_step(&self.shared, conn, &mut processed)
            };
            match step {
                Step::Dispatch(item) => {
                    let generation = self.conns[index].as_ref().map_or(0, |conn| conn.generation);
                    self.queue.push(Job {
                        conn: index,
                        generation,
                        item,
                    });
                    break;
                }
                Step::Continue => {}
                Step::Stop => break,
            }
        }
        let pipelined = if from_completion {
            processed
        } else {
            processed.saturating_sub(1)
        };
        if pipelined > 0 {
            self.shared
                .pipelined
                .fetch_add(pipelined, Ordering::Relaxed);
        }
    }

    /// Post-event housekeeping: eager flush, backpressure transitions,
    /// close-when-done, and poller interest reconciliation.
    fn finish(&mut self, index: usize) {
        let close = {
            let Some(conn) = self.conns[index].as_mut() else {
                return;
            };
            if flush(conn).is_err() {
                true
            } else {
                if !conn.paused && conn.outbuf.len() >= HIGH_WATER {
                    conn.paused = true;
                    self.shared
                        .backpressure_stalls
                        .fetch_add(1, Ordering::Relaxed);
                } else if conn.paused && conn.outbuf.len() <= LOW_WATER {
                    conn.paused = false;
                }
                let in_flight = matches!(conn.state, ConnState::InFlight);
                let awaiting = matches!(conn.state, ConnState::AwaitingCorpus { .. });
                let out_pending = !conn.outbuf.is_empty();
                // Close when the client died mid-corpus (same fate as the
                // threaded backend), when a draining connection has nothing
                // left to flush or finish, or at a fully-drained EOF.
                if (conn.read_eof && awaiting) || (conn.closing && !out_pending && !in_flight) {
                    true
                } else {
                    conn.read_eof
                        && !in_flight
                        && !out_pending
                        && conn.pending.is_empty()
                        && conn.inbuf.is_empty()
                }
            }
        };
        if close {
            self.close_conn(index);
        } else {
            self.update_interest(index);
        }
    }

    fn update_interest(&mut self, index: usize) {
        let Some(conn) = self.conns[index].as_mut() else {
            return;
        };
        let want_read =
            !conn.read_eof && !conn.closing && !conn.paused && conn.inbuf.len() < INBUF_HIGH_WATER;
        let want_write = !conn.outbuf.is_empty();
        if (want_read, want_write) != conn.interest {
            let token = TOKEN_BASE + index as u64;
            if self
                .poller
                .reregister(conn.stream.as_raw_fd(), token, want_read, want_write)
                .is_ok()
            {
                conn.interest = (want_read, want_write);
            }
        }
    }

    fn close_conn(&mut self, index: usize) {
        if let Some(conn) = self.conns[index].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.free.push(index);
            self.shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Enters shutdown: release the port immediately, discard buffered
    /// input everywhere, finish in-flight jobs, flush pending replies,
    /// close everything else now — the reactor's translation of the
    /// threaded backend's per-connection shutdown check.
    fn start_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        for index in 0..self.conns.len() {
            let close_now = {
                let Some(conn) = self.conns[index].as_mut() else {
                    continue;
                };
                conn.closing = true;
                conn.pending.clear();
                conn.inbuf.clear();
                !matches!(conn.state, ConnState::InFlight) && conn.outbuf.is_empty()
            };
            if close_now {
                self.close_conn(index);
            } else {
                self.update_interest(index);
            }
        }
    }

    /// The earliest pending deadline (idle cutoff or write stall) across
    /// every connection — what replaces the threaded backend's poll tick.
    fn next_timeout(&self) -> Option<Duration> {
        fn merge(deadline: &mut Option<Instant>, candidate: Instant) {
            *deadline = Some(deadline.map_or(candidate, |current| current.min(candidate)));
        }
        let mut deadline: Option<Instant> = None;
        for conn in self.conns.iter().flatten() {
            if !matches!(conn.state, ConnState::InFlight) && !conn.closing {
                merge(
                    &mut deadline,
                    conn.last_activity + self.shared.limits.idle_timeout,
                );
            }
            if let Some(since) = conn.write_stalled_since {
                merge(&mut deadline, since + self.shared.limits.write_timeout);
            }
        }
        deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Fires expired deadlines: idle connections get the courtesy `ERR`
    /// line and a drain-then-close, mid-corpus stalls and write timeouts
    /// are connection death.
    fn check_timers(&mut self) {
        let now = Instant::now();
        for index in 0..self.conns.len() {
            let action = {
                let Some(conn) = self.conns[index].as_mut() else {
                    continue;
                };
                let write_timed_out = conn
                    .write_stalled_since
                    .is_some_and(|s| now.duration_since(s) >= self.shared.limits.write_timeout);
                if write_timed_out {
                    TimerAction::Close
                } else if !matches!(conn.state, ConnState::InFlight)
                    && !conn.closing
                    && now.duration_since(conn.last_activity) >= self.shared.limits.idle_timeout
                {
                    if matches!(conn.state, ConnState::Idle) {
                        push_line(
                            &mut conn.outbuf,
                            &err_reply("idle timeout: no complete request within the limit"),
                        );
                        conn.closing = true;
                        conn.pending.clear();
                        TimerAction::Finish
                    } else {
                        TimerAction::Close // mid-corpus slow-loris: silent
                    }
                } else {
                    TimerAction::None
                }
            };
            match action {
                TimerAction::Close => self.close_conn(index),
                TimerAction::Finish => self.finish(index),
                TimerAction::None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_queue_is_fifo_and_drains_after_close() {
        let queue = JobQueue::new();
        for i in 0..3 {
            queue.push(Job {
                conn: i,
                generation: i as u64,
                item: WorkItem::Lines(vec![]),
            });
        }
        queue.close();
        // Close means "no new work", never "drop queued work".
        assert_eq!(queue.pop().map(|j| j.conn), Some(0));
        assert_eq!(queue.pop().map(|j| j.conn), Some(1));
        assert_eq!(queue.pop().map(|j| j.conn), Some(2));
        assert!(queue.pop().is_none());
    }

    #[test]
    fn vacant_or_out_of_range_event_slot_is_not_a_panic() {
        // Regression: the event loop used to re-index the slab with
        // `expect("checked above")` after its vacancy guard — an invariant
        // violation there would have killed the whole server, since the
        // reactor thread runs outside the per-request catch_unwind. Every
        // event-loop slot lookup now funnels through `event_conn`, which
        // must answer `None` for vacant and out-of-range slots alike.
        let mut conns: Vec<Option<Conn>> = vec![None, None];
        assert!(event_conn(&mut conns, 0).is_none());
        assert!(event_conn(&mut conns, 1).is_none());
        assert!(event_conn(&mut conns, 2).is_none());
        assert!(event_conn(&mut conns, usize::MAX).is_none());
    }

    #[test]
    fn verb_classification_routes_inline_verbs_to_the_reactor() {
        for inline in [
            "STATS",
            "quit",
            "Shutdown",
            "VOLUME d 3",
            "volume d 3 seed=1",
        ] {
            assert!(!is_worker_verb(inline), "{inline}");
        }
        for worker in ["DIAG d 01", "LOAD d p", "BATCH d 01 10", "PANIC", "bogus"] {
            assert!(is_worker_verb(worker), "{worker}");
        }
    }
}
