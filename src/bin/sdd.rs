//! `sdd` — command-line front end for the same-different workspace.
//!
//! ```text
//! sdd generate <circuit> [--seed N] [-o out.bench]      emit a synthetic benchmark
//! sdd info <file.bench>                                 circuit and fault statistics
//! sdd atpg <file.bench> [--ttype diag|<n>det] [--seed N] [-o tests.txt]
//! sdd dictionary <file.bench> --tests tests.txt [--calls1 N] [--jobs N]
//!                [--shards K] [--out dict.txt|dict.sddb|dict.sddm]
//! sdd build ...                                         alias of `dictionary`
//! sdd inject <file.bench> --tests tests.txt [--fault K|random] [--seed N] [-o obs.txt]
//! sdd diagnose <file.bench> --tests tests.txt --dict dict.txt|dict.sddb --observed obs.txt
//! sdd patch <old.bench> <new.bench> <dict.sddb|dict.sddm> --tests tests.txt
//!           [--jobs N] [--budget-passes N] [--budget-ms MS]
//! sdd verify <dict.sddb|dict.sddm> [--quarantine] [--mmap auto|on|off]
//! sdd volume <dict.sddb|dict.sddm> [--corpus file|-] [--jobs N] [--seed N]
//!            [--budget-ms MS] [--threshold F] [--report out.jsonl] [--mmap auto|on|off]
//! sdd serve [--addr HOST:PORT] [--workers N] [--mem-cap BYTES]
//!           [--max-conns N] [--deadline-ms MS] [--idle-ms MS]
//!           [--backend auto|threaded|reactor] [--mmap auto|on|off] [name=dict ...]
//! ```
//!
//! `volume` streams a datalog corpus (one device observation per line, text
//! or JSONL — see `sdd_volume::corpus`) through per-device diagnosis and
//! defect clustering, writing a JSONL report (one record per device plus a
//! final summary). The report bytes are identical for every `--jobs` value
//! and identical to what the serve `VOLUME` verb streams for the same
//! corpus.
//!
//! `patch` updates a built binary artifact in place after an engineering
//! change order: it computes which outputs and faults the netlist edit can
//! reach, re-simulates only those, refreshes baselines of the touched
//! tests under the given budget, and rewrites only the touched shards
//! through the crash-safe store path. The result is bit-identical (modulo
//! the patch-generation counter in the header) to rebuilding the modified
//! netlist from scratch with the same baselines.
//!
//! Test files hold one input pattern per line (`0`/`1` characters, one per
//! view input: primary inputs then flip-flop pseudo-inputs). Observation
//! files hold one output response per line (primary outputs then flip-flop
//! pseudo-outputs), in test order.
//!
//! Dictionary files are accepted in both formats everywhere, sniffed by
//! magic number: the diffable v1 text format and the binary `.sddb` store.
//! `--out` picks the output format from the extension (`.sddb` → binary,
//! anything else → text, streamed record-by-record) and `-o` remains the
//! text-only spelling older scripts use. With `--shards K` the dictionary
//! is cut into `K` fault-range shards along output-cone boundaries and
//! written as `<out>.sddm` (a checksummed shard manifest) plus one
//! `<stem>.NNN.sddb` per shard — `sdd serve` then loads shards lazily.

use std::fs;
use std::process::ExitCode;

use same_different::atpg::AtpgOptions;
use same_different::dict::{
    io as dict_io, replace_baselines, select_baselines, Procedure1Options, SameDifferentDictionary,
};
use same_different::logic::BitVec;
use same_different::netlist::{bench, generator};
use same_different::Experiment;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("atpg") => cmd_atpg(&args[1..]),
        Some("dictionary") | Some("build") => cmd_dictionary(&args[1..]),
        Some("inject") => cmd_inject(&args[1..]),
        Some("diagnose") => cmd_diagnose(&args[1..]),
        Some("patch") => cmd_patch(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("volume") => cmd_volume(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage: sdd <generate|info|atpg|dictionary|build|inject|diagnose|patch|verify|volume|serve> ..."
            );
            eprintln!("see the crate docs or README for details");
            return ExitCode::from(if args.is_empty() { 2 } else { 0 });
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("sdd: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` out of an argument list; returns remaining
/// positional arguments.
fn parse_flags(
    args: &[String],
    flags: &mut [(&str, &mut Option<String>)],
) -> Result<Vec<String>, String> {
    let mut positional = Vec::new();
    let mut iter = args.iter();
    'outer: while let Some(arg) = iter.next() {
        for (name, slot) in flags.iter_mut() {
            if arg == name {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{name} requires a value"))?;
                **slot = Some(value.clone());
                continue 'outer;
            }
        }
        if arg.starts_with('-') {
            return Err(format!("unknown option {arg:?}"));
        }
        positional.push(arg.clone());
    }
    Ok(positional)
}

fn load_circuit(path: &str) -> Result<same_different::netlist::Circuit, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    bench::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_patterns(path: &str, width: usize, what: &str) -> Result<Vec<BitVec>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut patterns = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let p: BitVec = line.parse().map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if p.len() != width {
            return Err(format!(
                "{path}:{}: {what} has {} bits, expected {width}",
                i + 1,
                p.len()
            ));
        }
        patterns.push(p);
    }
    if patterns.is_empty() {
        return Err(format!("{path}: no {what}s found"));
    }
    Ok(patterns)
}

fn emit(output: Option<String>, content: &str) -> Result<(), String> {
    match output {
        Some(path) => fs::write(&path, content).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{content}");
            Ok(())
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let mut seed = None;
    let mut output = None;
    let positional = parse_flags(args, &mut [("--seed", &mut seed), ("-o", &mut output)])?;
    let [name] = positional.as_slice() else {
        return Err("usage: sdd generate <circuit> [--seed N] [-o out.bench]".into());
    };
    let seed: u64 = seed.map_or(Ok(1), |s| s.parse().map_err(|_| "bad --seed"))?;
    // The embedded library circuits come first; everything else is drawn
    // from the synthetic benchmark generator.
    let circuit = match name.as_str() {
        "c17" => same_different::netlist::library::c17(),
        "demo_seq" => same_different::netlist::library::demo_seq(),
        _ => {
            let profile = generator::profile(name).ok_or_else(|| {
                format!(
                    "unknown circuit {name:?}; known: c17, demo_seq, {}",
                    generator::ISCAS89_PROFILES
                        .iter()
                        .chain(&generator::ISCAS85_PROFILES)
                        .map(|p| p.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            generator::generate(profile, seed)
        }
    };
    emit(output, &bench::write(&circuit))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let positional = parse_flags(args, &mut [])?;
    let [path] = positional.as_slice() else {
        return Err("usage: sdd info <file.bench>".into());
    };
    let exp = Experiment::new(load_circuit(path)?);
    let c = exp.circuit();
    println!("circuit:          {}", c.name());
    println!("primary inputs:   {}", c.input_count());
    println!("primary outputs:  {}", c.output_count());
    println!("flip-flops:       {}", c.dff_count());
    println!("gates:            {}", c.gate_count());
    println!("nets:             {}", c.net_count());
    println!("view inputs:      {} (PI + PPI)", exp.view().inputs().len());
    println!(
        "view outputs:     {} (PO + PPO = m)",
        exp.view().outputs().len()
    );
    println!("logic depth:      {}", exp.view().depth());
    println!(
        "faults:           {} ({} collapsed)",
        exp.universe().len(),
        exp.faults().len()
    );
    Ok(())
}

fn cmd_atpg(args: &[String]) -> Result<(), String> {
    let mut ttype = None;
    let mut seed = None;
    let mut output = None;
    let positional = parse_flags(
        args,
        &mut [
            ("--ttype", &mut ttype),
            ("--seed", &mut seed),
            ("-o", &mut output),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err(
            "usage: sdd atpg <file.bench> [--ttype diag|<n>det] [--seed N] [-o tests.txt]".into(),
        );
    };
    let seed: u64 = seed.map_or(Ok(1), |s| s.parse().map_err(|_| "bad --seed"))?;
    let exp = Experiment::new(load_circuit(path)?);
    let options = AtpgOptions {
        seed,
        ..AtpgOptions::default()
    };
    let ttype = ttype.unwrap_or_else(|| "diag".to_owned());
    let set = if ttype == "diag" {
        exp.diagnostic_tests(&options)
    } else if let Some(n) = ttype
        .strip_suffix("det")
        .and_then(|n| n.parse::<u32>().ok())
        .filter(|&n| n > 0)
    {
        exp.detection_tests(n, &options)
    } else {
        return Err(format!(
            "unknown --ttype {ttype:?} (diag or <n>det, e.g. 1det, 10det)"
        ));
    };
    let report = same_different::atpg::CoverageReport::measure(
        exp.circuit(),
        exp.view(),
        exp.universe(),
        exp.faults(),
        &set,
    );
    eprintln!("{report}");
    let mut content = String::new();
    for test in &set.tests {
        content.push_str(&test.to_string());
        content.push('\n');
    }
    emit(output, &content)
}

fn cmd_dictionary(args: &[String]) -> Result<(), String> {
    let mut tests_path = None;
    let mut calls1 = None;
    let mut jobs = None;
    let mut shards = None;
    let mut output = None;
    let mut out = None;
    let positional = parse_flags(
        args,
        &mut [
            ("--tests", &mut tests_path),
            ("--calls1", &mut calls1),
            ("--jobs", &mut jobs),
            ("--shards", &mut shards),
            ("-o", &mut output),
            ("--out", &mut out),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err(
            "usage: sdd dictionary <file.bench> --tests tests.txt [--calls1 N] [--jobs N] \
             [--shards K] [--out dict.txt|dict.sddb|dict.sddm]"
                .into(),
        );
    };
    let tests_path = tests_path.ok_or("missing --tests")?;
    let calls1: usize = calls1.map_or(Ok(20), |s| s.parse().map_err(|_| "bad --calls1"))?;
    let shards: Option<usize> = match shards {
        None => None,
        Some(s) => match s.parse() {
            Ok(0) | Err(_) => return Err("bad --shards (want a positive count)".into()),
            Ok(k) => Some(k),
        },
    };
    // Construction output is identical for every --jobs value; the flag only
    // decides how many threads build it.
    let jobs: usize = jobs.map_or(Ok(same_different::sim::available_jobs()), |s| {
        s.parse().map_err(|_| "bad --jobs")
    })?;

    let exp = Experiment::new(load_circuit(path)?);
    let tests = load_patterns(&tests_path, exp.view().inputs().len(), "test pattern")?;
    let matrix = exp.simulate_jobs(&tests, jobs);
    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1,
            jobs,
            ..Procedure1Options::default()
        },
    );
    let indistinguished = replace_baselines(&matrix, &mut selection.baselines);
    let dictionary = SameDifferentDictionary::build(&matrix, &selection.baselines);
    eprintln!(
        "same/different dictionary: {} bits, {} of {} fault pairs indistinguished \
         (pass/fail would leave {})",
        dictionary.size_bits(),
        indistinguished,
        exp.faults().len() * (exp.faults().len() - 1) / 2,
        matrix.pass_fail_partition().indistinguished_pairs(),
    );
    if let Some(k) = shards {
        let manifest_path = out.ok_or("--shards requires --out <base>.sddm")?;
        if !manifest_path.ends_with(".sddm") {
            return Err(format!(
                "--shards writes a shard manifest; --out {manifest_path:?} must end in .sddm"
            ));
        }
        // Partition the collapsed fault list along output-cone boundaries
        // (contiguous fallback when the cut windows find none), and record
        // each shard's cone so `sdd serve` can prioritize lazy loads.
        let cones = same_different::sim::OutputCones::compute(exp.circuit(), exp.view());
        let ranges = cones.shard_ranges(exp.universe(), exp.faults(), k);
        let shard_cones: Vec<BitVec> = ranges
            .iter()
            .map(|r| cones.shard_cone(exp.universe(), exp.faults(), r.clone()))
            .collect();
        let manifest = same_different::store::write_sharded(
            &manifest_path,
            &same_different::store::StoredDictionary::SameDifferent(dictionary),
            &ranges,
            Some(&shard_cones),
        )
        .map_err(|e| e.to_string())?;
        eprintln!(
            "wrote {} shard(s) beside {manifest_path}: {}",
            manifest.shards.len(),
            manifest
                .shards
                .iter()
                .map(|s| format!("{} ({} faults)", s.file, s.fault_count))
                .collect::<Vec<_>>()
                .join(", "),
        );
        return Ok(());
    }
    match out {
        Some(path) if path.ends_with(".sddb") => same_different::store::save(
            &path,
            &same_different::store::StoredDictionary::SameDifferent(dictionary),
        )
        .map_err(|e| e.to_string()),
        Some(path) => {
            // Stream record-by-record (for large designs the text blob is
            // bigger than the dictionary itself) through a crash-safe
            // staged write: a build killed mid-write leaves the previous
            // dictionary intact, never a torn one.
            let staged =
                same_different::store::AtomicFile::create(&path).map_err(|e| e.to_string())?;
            let mut writer = std::io::BufWriter::new(staged);
            dict_io::write_same_different_to(&dictionary, &mut writer)
                .and_then(|()| std::io::Write::flush(&mut writer))
                .map_err(|e| format!("{path}: {e}"))?;
            writer
                .into_inner()
                .map_err(|e| format!("{path}: {e}"))?
                .commit()
                .map_err(|e| e.to_string())
        }
        None => match output {
            Some(_) => emit(output, &dict_io::write_same_different(&dictionary)),
            None => {
                let stdout = std::io::stdout();
                dict_io::write_same_different_to(&dictionary, &mut stdout.lock())
                    .map_err(|e| format!("stdout: {e}"))
            }
        },
    }
}

fn cmd_inject(args: &[String]) -> Result<(), String> {
    let mut tests_path = None;
    let mut fault_sel = None;
    let mut seed = None;
    let mut output = None;
    let positional = parse_flags(
        args,
        &mut [
            ("--tests", &mut tests_path),
            ("--fault", &mut fault_sel),
            ("--seed", &mut seed),
            ("-o", &mut output),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err(
            "usage: sdd inject <file.bench> --tests tests.txt [--fault K|random] [--seed N] [-o obs.txt]"
                .into(),
        );
    };
    let seed: u64 = seed.map_or(Ok(0), |s| s.parse().map_err(|_| "bad --seed"))?;
    let exp = Experiment::new(load_circuit(path)?);
    let tests = load_patterns(
        &tests_path.ok_or("missing --tests")?,
        exp.view().inputs().len(),
        "test pattern",
    )?;
    let position = match fault_sel.as_deref() {
        None | Some("random") => {
            // Splitmix-style hash keeps this dependency-free and stable.
            let mixed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x1234_5678);
            (mixed % exp.faults().len() as u64) as usize
        }
        Some(k) => {
            let k: usize = k.parse().map_err(|_| "bad --fault (index or `random`)")?;
            if k >= exp.faults().len() {
                return Err(format!(
                    "fault index {k} out of range ({} collapsed faults)",
                    exp.faults().len()
                ));
            }
            k
        }
    };
    let fault = exp.universe().fault(exp.faults()[position]);
    eprintln!(
        "injected fault #{position}: {}",
        fault.describe(exp.circuit())
    );
    let mut content = String::new();
    for test in &tests {
        let response =
            same_different::sim::reference::faulty_response(exp.circuit(), exp.view(), fault, test);
        content.push_str(&response.to_string());
        content.push('\n');
    }
    emit(output, &content)
}

fn cmd_diagnose(args: &[String]) -> Result<(), String> {
    let mut tests_path = None;
    let mut dict_path = None;
    let mut observed_path = None;
    let positional = parse_flags(
        args,
        &mut [
            ("--tests", &mut tests_path),
            ("--dict", &mut dict_path),
            ("--observed", &mut observed_path),
        ],
    )?;
    let [path] = positional.as_slice() else {
        return Err(
            "usage: sdd diagnose <file.bench> --tests tests.txt --dict dict.txt --observed obs.txt"
                .into(),
        );
    };
    let exp = Experiment::new(load_circuit(path)?);
    let tests = load_patterns(
        &tests_path.ok_or("missing --tests")?,
        exp.view().inputs().len(),
        "test pattern",
    )?;
    // Sniffed by magic number: binary .sddb and v1 text both load here.
    let dictionary = same_different::store::load_same_different(dict_path.ok_or("missing --dict")?)
        .map_err(|e| e.to_string())?;
    let observed = load_patterns(
        &observed_path.ok_or("missing --observed")?,
        exp.view().outputs().len(),
        "observed response",
    )?;
    if observed.len() != tests.len() {
        return Err(format!(
            "{} observed responses for {} tests",
            observed.len(),
            tests.len()
        ));
    }
    if dictionary.fault_count() != exp.faults().len() {
        return Err(format!(
            "dictionary covers {} faults but the circuit has {} collapsed faults",
            dictionary.fault_count(),
            exp.faults().len()
        ));
    }

    let report = dictionary.diagnose(&observed).map_err(|e| e.to_string())?;
    if report.exact.is_empty() {
        println!(
            "no exact match; {} nearest candidate(s) at signature distance {}:",
            report.nearest.len(),
            report.distance
        );
    } else {
        println!("{} exact candidate(s):", report.exact.len());
    }
    for &pos in report.candidates() {
        let fault = exp.universe().fault(exp.faults()[pos]);
        println!("  {}", fault.describe(exp.circuit()));
    }
    Ok(())
}

fn cmd_patch(args: &[String]) -> Result<(), String> {
    use same_different::patch::{patch_dictionary, PatchOptions};

    let mut tests_path = None;
    let mut jobs = None;
    let mut budget_passes = None;
    let mut budget_ms = None;
    let positional = parse_flags(
        args,
        &mut [
            ("--tests", &mut tests_path),
            ("--jobs", &mut jobs),
            ("--budget-passes", &mut budget_passes),
            ("--budget-ms", &mut budget_ms),
        ],
    )?;
    let [old_path, new_path, artifact] = positional.as_slice() else {
        return Err(
            "usage: sdd patch <old.bench> <new.bench> <dict.sddb|dict.sddm> --tests tests.txt \
             [--jobs N] [--budget-passes N] [--budget-ms MS]"
                .into(),
        );
    };
    let tests_path = tests_path.ok_or("patch requires --tests")?;
    let old = load_circuit(old_path)?;
    let new = load_circuit(new_path)?;
    let width = same_different::netlist::CombView::new(&old).inputs().len();
    let tests = load_patterns(&tests_path, width, "test pattern")?;
    let jobs = match jobs {
        Some(v) => v.parse().map_err(|e| format!("--jobs: {e}"))?,
        None => 1,
    };
    let mut budget = same_different::dict::Budget::unlimited();
    if let Some(v) = budget_passes {
        let passes: usize = v.parse().map_err(|e| format!("--budget-passes: {e}"))?;
        budget = budget.and_max_calls(passes);
    }
    if let Some(v) = budget_ms {
        let ms: u64 = v.parse().map_err(|e| format!("--budget-ms: {e}"))?;
        budget = budget.and_deadline(std::time::Duration::from_millis(ms));
    }

    let report = patch_dictionary(&old, &new, &tests, artifact, &PatchOptions { jobs, budget })
        .map_err(|e| e.to_string())?;
    println!(
        "changed nets: {} ({})",
        report.changed_nets.len(),
        report
            .changed_nets
            .iter()
            .map(|&n| old.net_name(n).to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    println!(
        "dirty: {} of {} faults, {} outputs",
        report.dirty_faults, report.total_faults, report.dirty_outputs
    );
    println!(
        "touched tests: {} of {}",
        report.touched_tests, report.total_tests
    );
    if let Some(pairs) = report.indistinguished_pairs {
        println!(
            "indistinguished pairs: {pairs} (refresh: {} passes, {})",
            report.refresh_passes,
            if report.refresh_completed {
                "converged"
            } else {
                "budget exhausted"
            },
        );
    }
    let stats = &report.stats;
    if stats.changed() {
        println!(
            "patched {artifact}: {} tests, {} signature bits, {} baselines, \
             {}/{} files rewritten, generation {}",
            stats.tests_patched,
            stats.bits_flipped,
            stats.baseline_changes,
            stats.files_rewritten,
            stats.files_total,
            stats.generation,
        );
    } else {
        println!("no changes: {artifact} left untouched");
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let mut quarantine = false;
    let mut mmap = same_different::store::MmapMode::Auto;
    let mut paths = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quarantine" => quarantine = true,
            "--mmap" => {
                let value = iter.next().ok_or("--mmap needs a value (auto|on|off)")?;
                mmap = parse_mmap(value)?;
            }
            a if a.starts_with('-') => return Err(format!("unknown option {a:?}")),
            _ => paths.push(arg.clone()),
        }
    }
    let [path] = paths.as_slice() else {
        return Err(
            "usage: sdd verify <dict.sddb|dict.sddm> [--quarantine] [--mmap auto|on|off]".into(),
        );
    };
    let report = same_different::store::verify_file_with(path, mmap).map_err(|e| e.to_string())?;
    println!(
        "{}: kind={} faults={} shards={}",
        report.path.display(),
        report.kind.name(),
        report.faults,
        report.shards.len(),
    );
    for shard in &report.shards {
        match &shard.error {
            None => println!(
                "  shard {} {}: ok ({} faults)",
                shard.index, shard.file, shard.faults
            ),
            Some(e) => println!(
                "  shard {} {}: BAD ({} faults lost): {e}",
                shard.index, shard.file, shard.faults
            ),
        }
    }
    for temp in &report.stale_temps {
        println!("  stale temp {} (interrupted write; inert)", temp.display());
    }
    println!(
        "coverage: {}/{} faults",
        report.covered_faults(),
        report.faults
    );
    if report.healthy() {
        println!("healthy");
        return Ok(());
    }
    if quarantine {
        let moved =
            same_different::store::quarantine_bad_shards(&report).map_err(|e| e.to_string())?;
        for moved_path in &moved {
            println!("quarantined: {}", moved_path.display());
        }
    }
    Err(format!(
        "{} of {} shards unhealthy",
        report.bad_shards().count(),
        report.shards.len(),
    ))
}

fn cmd_volume(args: &[String]) -> Result<(), String> {
    use same_different::volume;
    use std::io::BufRead;

    let mut corpus = None;
    let mut jobs = None;
    let mut seed = None;
    let mut budget_ms = None;
    let mut threshold = None;
    let mut report = None;
    let mut mmap = None;
    let positional = parse_flags(
        args,
        &mut [
            ("--corpus", &mut corpus),
            ("--jobs", &mut jobs),
            ("--seed", &mut seed),
            ("--budget-ms", &mut budget_ms),
            ("--threshold", &mut threshold),
            ("--report", &mut report),
            ("--mmap", &mut mmap),
        ],
    )?;
    let [dict_path] = positional.as_slice() else {
        return Err(
            "usage: sdd volume <dict.sddb|dict.sddm> [--corpus file|-] [--jobs N] [--seed N] \
             [--budget-ms MS] [--threshold F] [--report out.jsonl] [--mmap auto|on|off]"
                .into(),
        );
    };
    let mmap = mmap.map_or(Ok(same_different::store::MmapMode::Auto), |v| {
        parse_mmap(&v)
    })?;
    let mut options = volume::VolumeOptions {
        jobs: jobs.map_or(Ok(same_different::sim::available_jobs()), |s| {
            s.parse().map_err(|_| "bad --jobs")
        })?,
        ..volume::VolumeOptions::default()
    };
    if let Some(seed) = seed {
        options.seed = seed.parse().map_err(|_| "bad --seed")?;
    }
    if let Some(ms) = budget_ms {
        let ms: u64 = ms.parse().map_err(|_| "bad --budget-ms")?;
        options.budget =
            same_different::dict::Budget::deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(t) = threshold {
        options.threshold = t.parse().map_err(|_| "bad --threshold")?;
    }

    // Sniffed by magic number, like every other dictionary consumer: a
    // shard manifest preloads its whole shard set (per-shard failures
    // degrade device records, only a bad manifest is fatal); anything else
    // loads as one whole dictionary.
    let bytes =
        same_different::store::read_dictionary_bytes(dict_path, mmap).map_err(|e| e.to_string())?;
    let source: Box<dyn volume::ShardSource> = if same_different::store::is_manifest(&bytes) {
        Box::new(volume::PreloadedShards::open_with(dict_path, mmap).map_err(|e| e.to_string())?)
    } else {
        let dictionary = if same_different::store::is_binary(&bytes) {
            same_different::store::decode(&bytes)
        } else {
            same_different::store::read_same_different_auto(&bytes)
                .map(same_different::store::StoredDictionary::SameDifferent)
        }
        .map_err(|e| e.to_string())?;
        Box::new(volume::WholeSource::new(dictionary))
    };

    let corpus = corpus.unwrap_or_else(|| "-".to_owned());
    let reader: Box<dyn BufRead> = if corpus == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        Box::new(std::io::BufReader::new(
            fs::File::open(&corpus).map_err(|e| format!("{corpus}: {e}"))?,
        ))
    };
    let mut lines = reader.lines();

    let summary = match report {
        Some(path) => {
            // The report commits atomically: a run killed mid-corpus leaves
            // any previous report intact, never a torn one.
            let staged =
                same_different::store::AtomicFile::create(&path).map_err(|e| e.to_string())?;
            let mut writer = std::io::BufWriter::new(staged);
            let summary = volume::run(
                source.as_ref(),
                &mut lines,
                &mut volume::JsonlSink(&mut writer),
                &options,
            )
            .map_err(|e| format!("{path}: {e}"))?;
            std::io::Write::flush(&mut writer).map_err(|e| format!("{path}: {e}"))?;
            writer
                .into_inner()
                .map_err(|e| format!("{path}: {e}"))?
                .commit()
                .map_err(|e| e.to_string())?;
            summary
        }
        None => {
            let stdout = std::io::stdout();
            volume::run(
                source.as_ref(),
                &mut lines,
                &mut volume::JsonlSink(&mut stdout.lock()),
                &options,
            )
            .map_err(|e| format!("stdout: {e}"))?
        }
    };
    let systematic = summary
        .clusters
        .faults
        .iter()
        .filter(|c| c.systematic)
        .count();
    eprintln!(
        "volume: {} devices ({} ok, {} partial, {} error), {} skipped; \
         {systematic} systematic fault cluster(s) at floor {}",
        summary.devices,
        summary.ok,
        summary.partial,
        summary.error,
        summary.skipped,
        summary.clusters.systematic_at,
    );
    Ok(())
}

/// Parses a `--mmap` flag value into a byte-ownership mode.
fn parse_mmap(value: &str) -> Result<same_different::store::MmapMode, String> {
    same_different::store::MmapMode::parse(value)
        .ok_or_else(|| format!("bad --mmap {value:?} (want auto|on|off)"))
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of 1024).
fn parse_bytes(s: &str) -> Result<usize, String> {
    let (digits, shift) = match s.trim_end_matches(['k', 'K', 'm', 'M', 'g', 'G']) {
        d if d.len() == s.len() => (d, 0u32),
        d => (
            d,
            match s.as_bytes()[s.len() - 1].to_ascii_lowercase() {
                b'k' => 10,
                b'm' => 20,
                _ => 30,
            },
        ),
    };
    let base: usize = digits
        .parse()
        .map_err(|_| format!("bad byte count {s:?} (try 512m, 2g, 1048576)"))?;
    base.checked_shl(shift)
        .filter(|v| v >> shift == base)
        .ok_or_else(|| format!("byte count {s:?} overflows"))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut addr = None;
    let mut workers = None;
    let mut mem_cap = None;
    let mut max_conns = None;
    let mut deadline_ms = None;
    let mut idle_ms = None;
    let mut backend = None;
    let mut mmap = None;
    let positional = parse_flags(
        args,
        &mut [
            ("--addr", &mut addr),
            ("--workers", &mut workers),
            ("--mem-cap", &mut mem_cap),
            ("--max-conns", &mut max_conns),
            ("--deadline-ms", &mut deadline_ms),
            ("--idle-ms", &mut idle_ms),
            ("--backend", &mut backend),
            ("--mmap", &mut mmap),
        ],
    )?;
    let mut config = same_different::serve::ServeConfig::default();
    if let Some(addr) = addr {
        config.addr = addr;
    }
    if let Some(workers) = workers {
        config.workers = workers.parse().map_err(|_| "bad --workers")?;
    }
    if let Some(cap) = mem_cap {
        config.memory_cap = parse_bytes(&cap)?;
    }
    if let Some(n) = max_conns {
        config.max_connections = match n.parse() {
            Ok(0) | Err(_) => return Err("bad --max-conns (want a positive count)".into()),
            Ok(n) => n,
        };
    }
    if let Some(ms) = deadline_ms {
        let ms: u64 = ms.parse().map_err(|_| "bad --deadline-ms")?;
        config.request_deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = idle_ms {
        let ms: u64 = ms.parse().map_err(|_| "bad --idle-ms")?;
        config.idle_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(token) = backend {
        config.backend =
            same_different::serve::ServeBackend::parse(&token).map_err(|e| e.to_string())?;
    }
    if let Some(token) = mmap {
        config.mmap = parse_mmap(&token)?;
    }
    let handle = same_different::serve::serve(&config).map_err(|e| e.to_string())?;
    // Preload `name=path` dictionaries through the protocol itself, so the
    // CLI exercises exactly what a remote client would.
    if !positional.is_empty() {
        let mut client = same_different::serve::Client::connect(handle.addr())
            .map_err(|e| format!("preload connection: {e}"))?;
        for spec in &positional {
            let (name, path) = spec
                .split_once('=')
                .ok_or_else(|| format!("bad dictionary spec {spec:?} (want name=path)"))?;
            let reply = client
                .request(&format!("LOAD {name} {path}"))
                .map_err(|e| format!("{spec}: {e}"))?;
            if let Some(message) = reply.strip_prefix("ERR ") {
                return Err(format!("{path}: {message}"));
            }
            eprintln!("{reply}");
        }
    }
    println!("listening on {}", handle.addr());
    handle.wait();
    eprintln!("server drained; bye");
    Ok(())
}
