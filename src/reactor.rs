//! A thin, dependency-free readiness abstraction over Linux `epoll`.
//!
//! The event-driven serve backend ([`crate::serve`] with
//! [`ServeBackend::Reactor`](crate::serve::ServeBackend)) needs exactly four
//! primitives: create an interest set, (de)register file descriptors with
//! read/write interest, block until something is ready or a deadline passes,
//! and be woken from another thread. This module provides them over raw
//! `epoll_*`/`eventfd` syscalls declared directly against the C runtime the
//! Rust standard library already links — no third-party crates, matching the
//! workspace's zero-dependency rule.
//!
//! On non-Linux targets the same API compiles but [`supported`] returns
//! `false` and [`Poller::new`] fails with [`std::io::ErrorKind::Unsupported`];
//! the serve layer then falls back to the portable threaded backend, so the
//! workspace still builds and serves everywhere.
//!
//! This is the **only** module in the crate allowed to contain `unsafe`
//! code (the crate root carries `#![deny(unsafe_code)]`); the unsafety is
//! confined to the FFI declarations and calls below, each of which passes
//! kernel-owned buffers it fully initializes.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness notification: the registered token plus the directions
/// that are now actionable. Error and hang-up conditions are folded into
/// *both* directions — the owner's next `read`/`write` observes the actual
/// failure, which keeps error handling in one place.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// A `read` (or `accept`) would make progress.
    pub readable: bool,
    /// A `write` would make progress.
    pub writable: bool,
}

/// Is the epoll reactor available on this target?
#[must_use]
pub const fn supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, RawFd};
    use std::fs::File;
    use std::io::{self, Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
    use std::time::Duration;

    // The kernel ABI constants and the epoll event record. On x86-64 the
    // kernel declares `struct epoll_event` packed; everywhere else it has
    // natural alignment.
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o200_0000;
    const EFD_CLOEXEC: i32 = 0o200_0000;
    const EFD_NONBLOCK: i32 = 0o4000;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    // Declared against the C runtime std already links; no `libc` crate.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    /// Converts a `-1` syscall result into the thread's `errno` error.
    fn check(result: i32) -> io::Result<i32> {
        if result < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(result)
        }
    }

    /// An epoll interest set.
    pub struct Poller {
        epoll: OwnedFd,
        /// Kernel-filled scratch for `epoll_wait`, reused across calls.
        buffer: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes no pointers; a valid fd (or -1)
            // comes back, and ownership transfers to the OwnedFd.
            let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self {
                // SAFETY: `fd` is a freshly created descriptor we own.
                epoll: unsafe { OwnedFd::from_raw_fd(fd) },
                buffer: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Option<(u64, bool, bool)>) -> io::Result<()> {
            let mut event = EpollEvent { events: 0, data: 0 };
            if let Some((token, readable, writable)) = interest {
                event.data = token;
                if readable {
                    event.events |= EPOLLIN | EPOLLRDHUP;
                }
                if writable {
                    event.events |= EPOLLOUT;
                }
            }
            // SAFETY: `event` is a live, fully initialized record for the
            // duration of the call; the kernel copies it and keeps nothing.
            check(unsafe { epoll_ctl(self.epoll.as_raw_fd(), op, fd, &mut event) }).map(|_| ())
        }

        pub fn register(&self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some((token, r, w)))
        }

        pub fn reregister(&self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some((token, r, w)))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until readiness or the timeout (`None` = forever),
        /// appending one [`Event`] per ready descriptor. Returns the number
        /// of events delivered; `0` means the deadline passed quietly.
        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let millis: i32 = match timeout {
                None => -1,
                // Round up so a 0.4ms deadline does not busy-spin at 0ms.
                Some(t) => i32::try_from(t.as_nanos().div_ceil(1_000_000)).unwrap_or(i32::MAX),
            };
            let capacity = i32::try_from(self.buffer.len()).unwrap_or(i32::MAX);
            let count = loop {
                // SAFETY: the buffer holds `capacity` initialized records;
                // the kernel overwrites at most that many.
                let n = unsafe {
                    epoll_wait(
                        self.epoll.as_raw_fd(),
                        self.buffer.as_mut_ptr(),
                        capacity,
                        millis,
                    )
                };
                match check(n) {
                    Ok(n) => break usize::try_from(n).unwrap_or(0),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for record in &self.buffer[..count] {
                // Copy out of the (possibly packed) record before use.
                let bits = record.events;
                let token = record.data;
                let trouble = bits & (EPOLLERR | EPOLLHUP) != 0;
                out.push(Event {
                    token,
                    readable: trouble || bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: trouble || bits & EPOLLOUT != 0,
                });
            }
            Ok(count)
        }
    }

    /// A cross-thread wakeup: an `eventfd` registered with the poller.
    /// Cheap to signal from any thread; coalesces bursts into one event.
    pub struct Waker {
        event: File,
    }

    impl Waker {
        pub fn new() -> io::Result<Self> {
            // SAFETY: eventfd takes no pointers; ownership of the returned
            // descriptor transfers to the File.
            let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            // SAFETY: `fd` is a freshly created descriptor we own.
            Ok(Self {
                event: unsafe { File::from_raw_fd(fd) },
            })
        }

        pub fn fd(&self) -> RawFd {
            self.event.as_raw_fd()
        }

        /// Signals the poller; safe to call from any thread, any number of
        /// times — the counter coalesces until [`drain`](Self::drain).
        pub fn wake(&self) {
            let _ = (&self.event).write(&1u64.to_ne_bytes());
        }

        /// Clears the pending signal so the next `wake` fires a new event.
        pub fn drain(&self) {
            let mut count = [0u8; 8];
            let _ = (&self.event).read(&mut count);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, RawFd};
    use std::io;
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll reactor is only available on Linux",
        ))
    }

    /// Stub interest set: constructing one always fails, so the methods
    /// below are unreachable — they exist to keep the API identical.
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Self> {
            unsupported()
        }

        pub fn register(&self, _fd: RawFd, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            unsupported()
        }

        pub fn reregister(&self, _fd: RawFd, _token: u64, _r: bool, _w: bool) -> io::Result<()> {
            unsupported()
        }

        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            unsupported()
        }

        pub fn wait(
            &mut self,
            _out: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unsupported()
        }
    }

    /// Stub waker mirroring the Linux API.
    pub struct Waker {}

    impl Waker {
        pub fn new() -> io::Result<Self> {
            unsupported()
        }

        pub fn fd(&self) -> RawFd {
            -1
        }

        pub fn wake(&self) {}

        pub fn drain(&self) {}
    }
}

/// A readiness interest set: file descriptors registered under tokens, and
/// a blocking [`wait`](Self::wait) that reports which are actionable.
///
/// Level-triggered: a descriptor that stays ready keeps being reported, so
/// owners adjust interest (via [`reregister`](Self::reregister)) instead of
/// tracking edge state.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates an empty interest set.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::Unsupported`] off Linux; otherwise the OS error.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: sys::Poller::new()?,
        })
    }

    /// Adds `fd` under `token` with the given read/write interest.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (e.g. the fd is already present).
    pub fn register(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.inner.register(fd, token, readable, writable)
    }

    /// Replaces the interest of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (e.g. the fd was never added).
    pub fn reregister(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.inner.reregister(fd, token, readable, writable)
    }

    /// Removes `fd` from the interest set.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks until at least one registered descriptor is ready or the
    /// timeout elapses (`None` waits indefinitely); ready descriptors are
    /// appended to `out`. Interrupted waits (`EINTR`) are retried
    /// internally.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_wait` failure.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(out, timeout)
    }
}

/// A cross-thread wakeup channel for a [`Poller`]: register
/// [`fd`](Self::fd) read-interest under a reserved token, then any thread
/// holding the waker can force `wait` to return.
pub struct Waker {
    inner: sys::Waker,
}

impl Waker {
    /// Creates the wakeup channel.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::Unsupported`] off Linux; otherwise the OS error.
    pub fn new() -> io::Result<Self> {
        Ok(Self {
            inner: sys::Waker::new()?,
        })
    }

    /// The descriptor to register with the poller (read interest).
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.inner.fd()
    }

    /// Forces the poller's `wait` to return. Signals coalesce: any number
    /// of wakes before a [`drain`](Self::drain) deliver one event.
    pub fn wake(&self) {
        self.inner.wake();
    }

    /// Consumes the pending signal after its event was observed.
    pub fn drain(&self) {
        self.inner.drain();
    }

    /// Joins a thread that may still be signalling this waker, **then**
    /// drains the coalesced signal, returning the join result.
    ///
    /// The order is the point: draining before the join races the waking
    /// thread — a wake landing after the drain re-signals the poller, and
    /// any quiescence check that follows flakes. Tear-down paths that stop
    /// a waking thread should go through this helper instead of
    /// open-coding `join` + `drain`, so the ordering cannot regress
    /// file-by-file.
    ///
    /// # Errors
    ///
    /// Propagates the joined thread's panic payload, exactly like
    /// [`std::thread::JoinHandle::join`].
    pub fn join_then_drain<T>(&self, handle: std::thread::JoinHandle<T>) -> std::thread::Result<T> {
        let result = handle.join();
        self.drain();
        result
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_wakes_an_idle_poller_across_threads() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), 7, true, false).unwrap();

        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
            remote.wake(); // coalesces with the first
        });

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1, "one coalesced wake event");
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        // Join before draining: the second wake must have landed (and
        // coalesced) before the drain, or it would re-signal afterwards.
        // The helper owns that ordering so no test re-introduces the race.
        waker.join_then_drain(handle).unwrap();

        // Drained: the next wait times out quietly.
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "no events after drain: {events:?}");
    }

    #[test]
    fn join_then_drain_never_leaves_a_residual_signal() {
        // The race this guards: a wake issued between a drain and the
        // waking thread's exit re-signals the poller, so a quiescence
        // check after tear-down observes a phantom event. Iterate with an
        // unsynchronized late waker; the helper's join-before-drain order
        // must absorb every wake.
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), 3, true, false).unwrap();
        for _ in 0..50 {
            let remote = std::sync::Arc::clone(&waker);
            let handle = std::thread::spawn(move || {
                remote.wake();
                std::thread::yield_now();
                remote.wake(); // deliberately racing the tear-down
            });
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            waker.join_then_drain(handle).unwrap();
            events.clear();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(1)))
                .unwrap();
            assert_eq!(n, 0, "phantom wake after join_then_drain: {events:?}");
        }
    }

    #[test]
    fn timeout_expires_without_events() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), 1, true, false).unwrap();
        let start = Instant::now();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 10, true, false)
            .unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 10 && e.readable),
            "listener became acceptable: {events:?}"
        );
        let (server, _) = listener.accept().unwrap();

        // A connected stream is immediately writable; after dropping write
        // interest it stops being reported.
        poller
            .register(server.as_raw_fd(), 11, false, true)
            .unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 11 && e.writable));
        poller
            .reregister(server.as_raw_fd(), 11, true, false)
            .unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token != 11),
            "write interest dropped: {events:?}"
        );

        // Incoming bytes surface as read readiness under the new interest.
        client.write_all(b"DIAG\n").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 11 && e.readable));
        poller.deregister(server.as_raw_fd()).unwrap();
    }
}
