//! Incremental (ECO) dictionary patching: `sdd patch`'s engine.
//!
//! Given a built same/different artifact, the netlist it was built from,
//! and a *modified* netlist, this module re-simulates only what the edit
//! can have changed and patches the artifact in place, producing files
//! **bit-identical** (modulo the patch-generation provenance counter) to a
//! from-scratch rebuild of the modified netlist that keeps the same
//! baseline policy. The pipeline:
//!
//! 1. **Cone delta** ([`sdd_sim::EcoDelta`]): which outputs and faults the
//!    changed drivers can reach, consulting both circuits' cones.
//! 2. **Phase 1** — simulate the *dirty faults* under **all** tests on both
//!    the old and the new circuit. The old run cross-checks the artifact
//!    (a stale or mismatched dictionary is a typed error, not a silent
//!    corruption); comparing the two runs finds the *touched tests*, the
//!    tests where any dirty fault's diff set or the fault-free response
//!    changed.
//! 3. **Phase 2** — simulate **all** faults under only the touched tests
//!    on the new circuit. Response-class interning is per test, so these
//!    columns are exactly the columns a full rebuild would produce.
//! 4. **Baseline refresh** — touched tests get a [`Budget`]-bounded
//!    Procedure 2 pass ([`sdd_core::refresh_baselines_budgeted`]) whose
//!    replacement decisions are evaluated against the *full* dictionary:
//!    untouched tests contribute their (invariant) signature columns as a
//!    fixed partition. Untouched baselines are never moved — skipping the
//!    fresh Procedure 1 restarts is the documented policy that makes
//!    patching cheap, and the refresh can only improve on the inherited
//!    baselines.
//! 5. **Column patch** ([`sdd_store::patch_artifact`]): the touched
//!    columns are written through the store's row index — whole files
//!    atomically, sharded sets shard-by-shard with the manifest committed
//!    last.
//!
//! Why this is exact: an output is *dirty* when a changed net's cone (old
//! or new) contains it; a clean output computes the same function before
//! and after, so every fault's value there is unchanged. A fault is
//! *dirty* when its cone meets a dirty output; a clean fault's diff set
//! (faulty vs fault-free positions) is therefore invariant under every
//! test, which means per-test response partitions can only change through
//! dirty faults — and those are exactly what Phase 1 watches.

use std::path::Path;

use sdd_core::{refresh_baselines_budgeted, Budget, SameDifferentDictionary};
use sdd_logic::{BitVec, SddError};
use sdd_netlist::{Circuit, NetId};
use sdd_sim::{EcoDelta, Partition, ResponseMatrix};
use sdd_store::{
    DictionaryKind, MmapMode, PatchStats, SdColumnPatch, ShardedReader, StoredDictionary,
};

use crate::Experiment;

/// Tuning knobs for [`patch_dictionary`].
#[derive(Debug, Clone)]
pub struct PatchOptions {
    /// Worker threads for the two simulation phases (output is identical
    /// for every value).
    pub jobs: usize,
    /// Budget for the touched-test baseline refresh (Procedure 2 passes).
    /// An exhausted budget keeps the best baselines found so far — the
    /// patch is correct either way, the budget only trades diagnostic
    /// resolution for time.
    pub budget: Budget,
}

impl Default for PatchOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            budget: Budget::unlimited(),
        }
    }
}

/// What [`patch_dictionary`] did, for reporting and benchmarks.
#[derive(Debug, Clone)]
pub struct PatchReport {
    /// Nets whose drivers the ECO changed.
    pub changed_nets: Vec<NetId>,
    /// View outputs the change can reach.
    pub dirty_outputs: usize,
    /// Collapsed faults whose signatures may have changed.
    pub dirty_faults: usize,
    /// Total collapsed faults.
    pub total_faults: usize,
    /// Tests whose dictionary column actually changed.
    pub touched_tests: usize,
    /// Total tests.
    pub total_tests: usize,
    /// Indistinguished fault pairs of the patched dictionary (`None` when
    /// no test was touched — the artifact's resolution is unchanged).
    pub indistinguished_pairs: Option<u64>,
    /// Baseline-refresh passes run, and whether the refresh converged
    /// before the budget ran out.
    pub refresh_passes: usize,
    /// `false` when the budget stopped the refresh mid-improvement.
    pub refresh_completed: bool,
    /// What the store layer rewrote.
    pub stats: PatchStats,
}

/// Reads the same/different dictionary out of a binary artifact — a whole
/// `.sddb` or a sharded `.sddm` set reassembled in global fault order.
fn load_artifact(path: &Path) -> Result<SameDifferentDictionary, SddError> {
    let bytes = sdd_store::read_dictionary_bytes(path, MmapMode::Off)?;
    if !sdd_store::is_manifest(&bytes) {
        return sdd_store::read_same_different_auto(&bytes);
    }
    let reader = ShardedReader::open(path)?;
    let manifest = reader.manifest();
    if manifest.kind != DictionaryKind::SameDifferent {
        return Err(SddError::invalid(format!(
            "expected a same-different dictionary, found a {} manifest",
            manifest.kind.name()
        )));
    }
    let mut signatures = Vec::with_capacity(manifest.faults);
    let mut baselines = Vec::new();
    let mut classes = Vec::new();
    for index in 0..reader.shard_count() {
        let StoredDictionary::SameDifferent(shard) = reader.load_shard(index)? else {
            return Err(SddError::invalid(format!(
                "shard {index}: kind disagrees with the manifest"
            )));
        };
        if index == 0 {
            baselines = (0..shard.test_count())
                .map(|t| shard.baseline(t).clone())
                .collect();
            classes = shard.baseline_classes().to_vec();
        }
        for fault in 0..shard.fault_count() {
            signatures.push(shard.signature(fault).clone());
        }
    }
    SameDifferentDictionary::from_parts(signatures, baselines, classes, manifest.outputs)
}

/// Checks the preconditions that make patching (rather than rebuilding)
/// sound: the two circuits enumerate and collapse to the *identical* fault
/// list, so fault indices in the artifact keep their meaning.
fn check_fault_lists(old: &Experiment, new: &Experiment) -> Result<(), SddError> {
    if old.universe().faults() != new.universe().faults() {
        return Err(SddError::invalid(
            "ECO changed the fault universe (gate fanins differ): fault indices \
             would shift — not patchable, rebuild the dictionary",
        ));
    }
    if old.faults() != new.faults() {
        return Err(SddError::invalid(
            "ECO changed fault collapsing: fault indices would shift — \
             not patchable, rebuild the dictionary",
        ));
    }
    Ok(())
}

/// Patches the same/different artifact at `artifact` — built from `old`
/// over `tests` — so it describes `new` instead, re-simulating only the
/// cone-affected region. See the module docs for the algorithm and the
/// exactness argument.
///
/// # Errors
///
/// [`SddError::Invalid`] when the circuits are not patch-compatible (net
/// interface, fault universe, or collapsing changed — rebuild instead),
/// when the artifact's dimensions disagree with the circuit and test set,
/// or when the artifact's stored signatures disagree with an old-circuit
/// re-simulation of the dirty faults (a stale or foreign dictionary).
/// Store and I/O errors pass through typed.
pub fn patch_dictionary(
    old: &Circuit,
    new: &Circuit,
    tests: &[BitVec],
    artifact: impl AsRef<Path>,
    options: &PatchOptions,
) -> Result<PatchReport, SddError> {
    let artifact = artifact.as_ref();
    let old_exp = Experiment::new(old.clone());
    let new_exp = Experiment::new(new.clone());
    // `EcoDelta::compute` validates the net interface; these validate the
    // fault side of the contract.
    let delta = EcoDelta::compute(old, new, old_exp.universe(), old_exp.faults())?;
    check_fault_lists(&old_exp, &new_exp)?;
    let faults = old_exp.faults();
    let (n, k, m) = (faults.len(), tests.len(), old_exp.view().outputs().len());

    let dictionary = load_artifact(artifact)?;
    if dictionary.fault_count() != n {
        return Err(SddError::CountMismatch {
            context: "artifact fault count",
            expected: n,
            actual: dictionary.fault_count(),
        });
    }
    if dictionary.test_count() != k {
        return Err(SddError::CountMismatch {
            context: "artifact test count",
            expected: k,
            actual: dictionary.test_count(),
        });
    }
    if dictionary.sizes().outputs as usize != m {
        return Err(SddError::CountMismatch {
            context: "artifact output count",
            expected: m,
            actual: dictionary.sizes().outputs as usize,
        });
    }

    let mut report = PatchReport {
        changed_nets: delta.changed_nets().to_vec(),
        dirty_outputs: delta.dirty_outputs().count_ones(),
        dirty_faults: delta.dirty_faults().len(),
        total_faults: n,
        touched_tests: 0,
        total_tests: k,
        indistinguished_pairs: None,
        refresh_passes: 0,
        refresh_completed: true,
        stats: PatchStats::default(),
    };
    if report.changed_nets.is_empty() {
        return Ok(report);
    }

    // Phase 1: dirty faults × all tests, both circuits. (Runs even when
    // the dirty fault set is empty: the fault-free responses alone decide
    // whether baseline vectors moved.)
    let dirty_ids: Vec<_> = delta.dirty_faults().iter().map(|&p| faults[p]).collect();
    let old_dirty = ResponseMatrix::simulate_jobs(
        old,
        old_exp.view(),
        old_exp.universe(),
        &dirty_ids,
        tests,
        options.jobs,
    );
    let new_dirty = ResponseMatrix::simulate_jobs(
        new,
        new_exp.view(),
        new_exp.universe(),
        &dirty_ids,
        tests,
        options.jobs,
    );

    // Cross-check the artifact against the old circuit where they must
    // agree: a dirty fault's stored signature bit says whether its old
    // response differs from the stored baseline vector.
    for test in 0..k {
        let baseline = dictionary.baseline(test);
        // Memoized per response class: whole classes share the verdict.
        let mut differs: Vec<Option<bool>> = vec![None; old_dirty.class_count(test)];
        for (local, &global) in delta.dirty_faults().iter().enumerate() {
            let class = old_dirty.class(test, local);
            let differs = *differs[class as usize]
                .get_or_insert_with(|| old_dirty.response(test, class) != *baseline);
            let stored = dictionary.signature(global).bit(test);
            if stored != differs {
                return Err(SddError::invalid(format!(
                    "artifact disagrees with the old netlist at test {test}, fault {global}: \
                     it was not built from this circuit and test set — rebuild instead",
                )));
            }
        }
    }

    // A test is touched when the new circuit changes its fault-free
    // response or any dirty fault's diff set — equivalently, when any
    // response vector the dictionary column depends on moved.
    let touched: Vec<usize> = (0..k)
        .filter(|&t| {
            old_dirty.good_response(t) != new_dirty.good_response(t)
                || (0..dirty_ids.len()).any(|p| {
                    old_dirty.class_diffs(t, old_dirty.class(t, p))
                        != new_dirty.class_diffs(t, new_dirty.class(t, p))
                })
        })
        .collect();
    report.touched_tests = touched.len();
    if touched.is_empty() {
        return Ok(report);
    }

    // Phase 2: all faults × touched tests on the new circuit. Interning is
    // per test, so these are exactly the rebuilt dictionary's columns.
    let touched_patterns: Vec<BitVec> = touched.iter().map(|&t| tests[t].clone()).collect();
    let matrix = ResponseMatrix::simulate_jobs(
        new,
        new_exp.view(),
        new_exp.universe(),
        faults,
        &touched_patterns,
        options.jobs,
    );

    // Inherited baselines: the class whose new response equals the stored
    // baseline vector, falling back to the fault-free class when the ECO
    // removed that response entirely.
    let mut baselines: Vec<u32> = touched
        .iter()
        .enumerate()
        .map(|(j, &t)| {
            let stored = dictionary.baseline(t);
            (0..matrix.class_count(j) as u32)
                .find(|&c| matrix.response(j, c) == *stored)
                .unwrap_or(0)
        })
        .collect();

    // Untouched columns are invariant, so their stored signature bits are
    // the fixed partition the refresh's decisions are evaluated against.
    let mut fixed = Partition::unit(n);
    let touched_set: Vec<bool> = {
        let mut set = vec![false; k];
        for &t in &touched {
            set[t] = true;
        }
        set
    };
    for test in (0..k).filter(|&t| !touched_set[t]) {
        fixed.refine_bits(|fault| dictionary.signature(fault).bit(test));
    }
    let outcome = refresh_baselines_budgeted(&matrix, &fixed, &mut baselines, &options.budget);
    report.indistinguished_pairs = Some(outcome.indistinguished_pairs);
    report.refresh_passes = outcome.passes;
    report.refresh_completed = outcome.completed;

    let patches: Vec<SdColumnPatch> = touched
        .iter()
        .enumerate()
        .map(|(j, &t)| {
            let baseline_class = baselines[j];
            let mut column = BitVec::zeros(n);
            for (fault, &class) in matrix.classes(j).iter().enumerate() {
                column.set(fault, class != baseline_class);
            }
            SdColumnPatch {
                test: t,
                baseline_class,
                baseline: matrix.response(j, baseline_class),
                column,
            }
        })
        .collect();
    report.stats = sdd_store::patch_artifact(artifact, &patches)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_netlist::{library, Driver, GateKind};

    fn rewire(circuit: &Circuit, gate: &str, pin: usize, source: &str) -> Circuit {
        let gate = circuit.net(gate).unwrap();
        let mut inputs = circuit.driver(gate).fanin().to_vec();
        inputs[pin] = circuit.net(source).unwrap();
        let kind = match circuit.driver(gate) {
            Driver::Gate { kind, .. } => *kind,
            _ => panic!("not a gate"),
        };
        circuit
            .with_driver(gate, Driver::Gate { kind, inputs })
            .unwrap()
    }

    /// A patch-compatible ECO on c17: swap which of N11/N16 feeds N19 and
    /// N23. Both nets keep fan-out 2, so the branch-fault universe and the
    /// structural collapsing are unchanged while the function moves.
    fn rewired_c17(old: &Circuit) -> Circuit {
        rewire(&rewire(old, "N19", 0, "N16"), "N23", 0, "N11")
    }

    /// End-to-end on c17: patching the artifact of the old circuit yields
    /// byte-for-byte the encoding of a dictionary rebuilt from the new
    /// matrix with the same baseline policy (modulo provenance).
    #[test]
    fn patched_c17_equals_the_rebuilt_dictionary() {
        let old = library::c17();
        let new = rewired_c17(&old);
        let exp = Experiment::new(old.clone());
        let tests = exp.diagnostic_tests(&Default::default()).tests;
        let matrix = exp.simulate(&tests);
        let mut selection = sdd_core::select_baselines(
            &matrix,
            &sdd_core::Procedure1Options {
                calls1: 3,
                ..Default::default()
            },
        );
        sdd_core::replace_baselines(&matrix, &mut selection.baselines);
        let dictionary = SameDifferentDictionary::build(&matrix, &selection.baselines);

        let dir = std::env::temp_dir().join(format!("sdd-patch-e2e-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c17.sddb");
        sdd_store::save(&path, &StoredDictionary::SameDifferent(dictionary)).unwrap();

        let report = patch_dictionary(&old, &new, &tests, &path, &PatchOptions::default()).unwrap();
        assert!(report.touched_tests > 0);
        assert!(report.stats.changed());

        // Rebuild target: new matrix, untouched baselines inherited (as
        // class labels, valid because untouched columns are invariant),
        // touched baselines as the patch refreshed them.
        let new_matrix = Experiment::new(new.clone()).simulate(&tests);
        let patched = load_artifact(&path).unwrap();
        let rebuilt = SameDifferentDictionary::build(&new_matrix, patched.baseline_classes());
        assert_eq!(patched, rebuilt);
        assert_eq!(
            report.indistinguished_pairs,
            Some(rebuilt.indistinguished_pairs())
        );
        let patched_bytes = std::fs::read(&path).unwrap();
        let rebuilt_bytes = sdd_store::encode(&StoredDictionary::SameDifferent(rebuilt)).unwrap();
        assert_eq!(
            sdd_store::strip_patch_provenance(&patched_bytes).unwrap(),
            sdd_store::strip_patch_provenance(&rebuilt_bytes).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_circuits_patch_to_a_no_op() {
        let old = library::c17();
        let exp = Experiment::new(old.clone());
        let tests = exp.diagnostic_tests(&Default::default()).tests;
        let matrix = exp.simulate(&tests);
        let selection = sdd_core::select_baselines(
            &matrix,
            &sdd_core::Procedure1Options {
                calls1: 2,
                ..Default::default()
            },
        );
        let dictionary = SameDifferentDictionary::build(&matrix, &selection.baselines);
        let dir = std::env::temp_dir().join(format!("sdd-patch-noop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c17.sddb");
        sdd_store::save(&path, &StoredDictionary::SameDifferent(dictionary)).unwrap();
        let before = std::fs::read(&path).unwrap();
        let report = patch_dictionary(&old, &old, &tests, &path, &PatchOptions::default()).unwrap();
        assert!(report.changed_nets.is_empty());
        assert_eq!(report.touched_tests, 0);
        assert!(!report.stats.changed());
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_stale_artifact_is_a_typed_error() {
        let old = library::c17();
        let new = rewired_c17(&old);
        let exp = Experiment::new(old.clone());
        let tests = exp.diagnostic_tests(&Default::default()).tests;
        // Build the artifact from the NEW circuit, then claim it describes
        // the old one: the old-circuit cross-check must reject it.
        let matrix = Experiment::new(new.clone()).simulate(&tests);
        let selection = sdd_core::select_baselines(
            &matrix,
            &sdd_core::Procedure1Options {
                calls1: 2,
                ..Default::default()
            },
        );
        let dictionary = SameDifferentDictionary::build(&matrix, &selection.baselines);
        let dir = std::env::temp_dir().join(format!("sdd-patch-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c17.sddb");
        sdd_store::save(&path, &StoredDictionary::SameDifferent(dictionary)).unwrap();
        let err =
            patch_dictionary(&old, &new, &tests, &path, &PatchOptions::default()).unwrap_err();
        assert!(err.to_string().contains("rebuild"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_fanin_changing_eco_demands_a_rebuild() {
        let old = library::c17();
        // Drop one fanin of N22: the branch-fault universe changes shape.
        let net = old.net("N22").unwrap();
        let inputs = old.driver(net).fanin().to_vec();
        let new = old
            .with_driver(
                net,
                Driver::Gate {
                    kind: GateKind::Not,
                    inputs: inputs[..1].to_vec(),
                },
            )
            .unwrap();
        let exp = Experiment::new(old.clone());
        let tests = exp.diagnostic_tests(&Default::default()).tests;
        let err = patch_dictionary(&old, &new, &tests, "unused.sddb", &PatchOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("rebuild"), "{err}");
    }
}
