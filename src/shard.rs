//! Diagnosis across sharded dictionaries.
//!
//! The implementation lives in [`sdd_volume::shard`] (the volume-diagnosis
//! crate runs it per device at corpus scale); this module re-exports it
//! under the established path for the serve layer, the CLI, and existing
//! callers.
//!
//! A sharded set (see [`store::write_sharded`](sdd_store::write_sharded))
//! cuts one dictionary into contiguous fault ranges; [`diagnose_sharded`]
//! runs the masked-diagnosis ladder over every shard and merges the
//! per-shard rankings into one report that is bit-identical to diagnosing
//! against the unsharded dictionary. All shards must be scored: signatures
//! compare against shard-global baselines, so a fault outside the failing
//! outputs' cones can still be a zero-mismatch candidate — cones
//! prioritize *load order* (see [`crate::serve`]), never skip scoring.
//!
//! # Example
//!
//! ```
//! use same_different::dict::PassFailDictionary;
//! use same_different::shard::{diagnose_sharded, ShardObservation};
//! use same_different::store::{slice_dictionary, StoredDictionary};
//! use same_different::logic::MaskedBitVec;
//!
//! let whole = StoredDictionary::PassFail(PassFailDictionary::build(
//!     &same_different::dict::example::paper_example(),
//! ));
//! let lo = slice_dictionary(&whole, 0..2)?;
//! let hi = slice_dictionary(&whole, 2..4)?;
//! let observed = MaskedBitVec::from_known("01".parse()?);
//! let merged = diagnose_sharded(
//!     &[(0, &lo), (2, &hi)],
//!     ShardObservation::Signature(&observed),
//! )?;
//! let unsharded =
//!     diagnose_sharded(&[(0, &whole)], ShardObservation::Signature(&observed))?;
//! assert_eq!(merged, unsharded);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use sdd_volume::shard::{diagnose_sharded, failing_outputs, ShardObservation};
