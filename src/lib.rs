//! # same-different
//!
//! A production-quality Rust reproduction of *“A Same/Different Fault
//! Dictionary: An Extended Pass/Fail Fault Dictionary with Improved
//! Diagnostic Resolution”* (Pomeranz & Reddy, DATE 2008), together with
//! every substrate the paper's experiments need: gate-level netlists, the
//! single stuck-at fault model with collapsing, a parallel-pattern fault
//! simulator, PODEM-based ATPG for detection / 10-detection / diagnostic
//! test sets, and the three dictionary types with the paper's baseline
//! selection procedures.
//!
//! This crate re-exports the workspace members and offers [`Experiment`], a
//! small pipeline type that wires them together.
//!
//! | layer | crate | re-export |
//! |-------|-------|-----------|
//! | logic values | `sdd-logic` | [`logic`] |
//! | netlists | `sdd-netlist` | [`netlist`] |
//! | fault model | `sdd-fault` | [`fault`] |
//! | simulation | `sdd-sim` | [`sim`] |
//! | test generation | `sdd-atpg` | [`atpg`] |
//! | dictionaries | `sdd-core` | [`dict`] |
//! | binary persistence | `sdd-store` | [`store`] |
//! | volume diagnosis | `sdd-volume` | [`volume`] |
//! | diagnosis service | this crate | [`serve`] |
//!
//! # Quickstart
//!
//! ```
//! use same_different::dict::{select_baselines, Procedure1Options, SameDifferentDictionary};
//! use same_different::Experiment;
//!
//! // Build the pipeline on the embedded c17 benchmark.
//! let exp = Experiment::new(same_different::netlist::library::c17());
//! // Generate a diagnostic test set and fault-simulate it.
//! let tests = exp.diagnostic_tests(&Default::default());
//! let matrix = exp.simulate(&tests.tests);
//! // Select baselines (Procedure 1) and build the dictionary.
//! let selection = select_baselines(&matrix, &Procedure1Options::default());
//! let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);
//! assert!(sd.indistinguished_pairs() <= matrix.pass_fail_partition().indistinguished_pairs());
//! ```

// `deny`, not `forbid`: the one FFI module (`reactor`) opts back in with a
// scoped `#![allow(unsafe_code)]`; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use sdd_atpg as atpg;
pub use sdd_core as dict;
pub use sdd_fault as fault;
pub use sdd_logic as logic;
pub use sdd_netlist as netlist;
pub use sdd_sim as sim;
pub use sdd_store as store;
pub use sdd_volume as volume;

pub mod patch;
pub mod reactor;
pub mod serve;
mod serve_reactor;
pub mod shard;

use sdd_atpg::{AtpgOptions, GeneratedTestSet};
use sdd_fault::{CollapsedFaults, FaultId, FaultUniverse};
use sdd_logic::BitVec;
use sdd_netlist::{Circuit, CombView};
use sdd_sim::ResponseMatrix;

/// A circuit wired up for dictionary experiments: its full-scan view, fault
/// universe, and collapsed fault list.
///
/// This is the fixture every example and benchmark in the workspace starts
/// from; it owns all derived structures so nothing borrows the circuit.
///
/// # Example
///
/// ```
/// use same_different::Experiment;
///
/// let exp = Experiment::new(same_different::netlist::library::c17());
/// assert_eq!(exp.faults().len(), 22);
/// assert_eq!(exp.view().outputs().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    circuit: Circuit,
    view: CombView,
    universe: FaultUniverse,
    collapsed: CollapsedFaults,
}

impl Experiment {
    /// Prepares `circuit` for experiments: builds the full-scan view,
    /// enumerates the fault universe, and equivalence-collapses it.
    pub fn new(circuit: Circuit) -> Self {
        let view = CombView::new(&circuit);
        let universe = FaultUniverse::enumerate(&circuit);
        let collapsed = universe.collapse_on(&circuit);
        Self {
            circuit,
            view,
            universe,
            collapsed,
        }
    }

    /// Prepares the named ISCAS'89-shaped synthetic benchmark
    /// (see [`netlist::generator`]).
    ///
    /// Returns `None` for unknown circuit names.
    pub fn iscas89(name: &str, seed: u64) -> Option<Self> {
        sdd_netlist::generator::iscas89(name, seed).map(Self::new)
    }

    /// The circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The full-scan combinational view.
    pub fn view(&self) -> &CombView {
        &self.view
    }

    /// The complete fault universe.
    pub fn universe(&self) -> &FaultUniverse {
        &self.universe
    }

    /// The collapsed fault list — the paper's fault set `F`.
    pub fn faults(&self) -> &[FaultId] {
        self.collapsed.representatives()
    }

    /// The collapsing result (class map included).
    pub fn collapsed(&self) -> &CollapsedFaults {
        &self.collapsed
    }

    /// Fault-simulates `tests` over the collapsed fault list.
    pub fn simulate(&self, tests: &[BitVec]) -> ResponseMatrix {
        self.simulate_jobs(tests, 1)
    }

    /// [`simulate`](Self::simulate) fanned out over `jobs` worker threads —
    /// identical output for every `jobs` value (see
    /// [`ResponseMatrix::simulate_jobs`]).
    pub fn simulate_jobs(&self, tests: &[BitVec], jobs: usize) -> ResponseMatrix {
        ResponseMatrix::simulate_jobs(
            &self.circuit,
            &self.view,
            &self.universe,
            self.faults(),
            tests,
            jobs,
        )
    }

    /// Generates an `n`-detection test set for the collapsed fault list.
    pub fn detection_tests(&self, n: u32, options: &AtpgOptions) -> GeneratedTestSet {
        sdd_atpg::generate_detection(
            &self.circuit,
            &self.view,
            &self.universe,
            self.faults(),
            n,
            options,
        )
    }

    /// Generates a diagnostic test set for the collapsed fault list.
    pub fn diagnostic_tests(&self, options: &AtpgOptions) -> GeneratedTestSet {
        sdd_atpg::generate_diagnostic(
            &self.circuit,
            &self.view,
            &self.universe,
            self.faults(),
            options,
        )
    }

    /// Fault-simulates `tests` and builds all three dictionary types, with
    /// baselines selected by Procedure 1 and improved by Procedure 2 —
    /// the whole Table 6 inner loop in one call.
    ///
    /// `options.jobs` parallelizes both the fault simulation and the
    /// Procedure 1 restarts; the result is identical for every value.
    pub fn build_dictionaries(
        &self,
        tests: &[BitVec],
        options: &sdd_core::Procedure1Options,
    ) -> DictionarySuite {
        let matrix = self.simulate_jobs(tests, options.jobs);
        let pass_fail = sdd_core::PassFailDictionary::build(&matrix);
        let mut selection = sdd_core::select_baselines(&matrix, options);
        let procedure1_pairs = selection.indistinguished_pairs;
        let procedure2_pairs = sdd_core::replace_baselines(&matrix, &mut selection.baselines);
        let same_different =
            sdd_core::SameDifferentDictionary::build(&matrix, &selection.baselines);
        DictionarySuite {
            full: sdd_core::FullDictionary::new(matrix),
            pass_fail,
            same_different,
            procedure1_pairs,
            procedure2_pairs,
        }
    }
}

/// All three dictionaries over one test set, built by
/// [`Experiment::build_dictionaries`].
#[derive(Debug, Clone)]
pub struct DictionarySuite {
    /// The full dictionary (owns the response matrix).
    pub full: sdd_core::FullDictionary,
    /// The pass/fail dictionary.
    pub pass_fail: sdd_core::PassFailDictionary,
    /// The same/different dictionary after Procedures 1 and 2.
    pub same_different: sdd_core::SameDifferentDictionary,
    /// Indistinguished pairs after Procedure 1 alone (the paper's
    /// `s/d rand` column).
    pub procedure1_pairs: u64,
    /// Indistinguished pairs after Procedure 2 (the `s/d repl` column).
    pub procedure2_pairs: u64,
}

impl DictionarySuite {
    /// The underlying response matrix.
    pub fn matrix(&self) -> &sdd_sim::ResponseMatrix {
        self.full.matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_pipeline_on_c17() {
        let exp = Experiment::new(netlist::library::c17());
        assert_eq!(exp.circuit().name(), "c17");
        assert_eq!(exp.faults().len(), 22);
        let tests = exp.detection_tests(1, &AtpgOptions::default());
        let matrix = exp.simulate(&tests.tests);
        assert_eq!(matrix.fault_count(), 22);
        assert!(matrix.undetected_faults().is_empty());
    }

    #[test]
    fn iscas89_lookup() {
        assert!(Experiment::iscas89("s298", 0).is_some());
        assert!(Experiment::iscas89("bogus", 0).is_none());
    }

    #[test]
    fn dictionary_suite_orders_resolutions() {
        let exp = Experiment::new(netlist::library::c17());
        let tests = exp.diagnostic_tests(&AtpgOptions::default());
        let suite = exp.build_dictionaries(
            &tests.tests,
            &dict::Procedure1Options {
                calls1: 5,
                ..Default::default()
            },
        );
        let full = suite.full.indistinguished_pairs();
        let sd = suite.same_different.indistinguished_pairs();
        let pf = suite.pass_fail.indistinguished_pairs();
        assert!(full <= sd && sd <= pf);
        assert_eq!(sd, suite.procedure2_pairs);
        assert!(suite.procedure2_pairs <= suite.procedure1_pairs);
        assert_eq!(suite.matrix().fault_count(), 22);
    }
}
