//! A concurrent diagnosis service over TCP — the tester-floor deployment
//! shape: one precomputed dictionary, thousands of diagnosis queries per
//! lot.
//!
//! The server speaks a line-delimited text protocol (one request per line,
//! space-separated tokens; replies start with `OK` or `ERR`):
//!
//! ```text
//! LOAD <name> <path>        load a dictionary (.sddb binary or v1 text)
//! DIAG <name> <obs>         diagnose one observation against <name>
//! BATCH <name> <obs>...     diagnose many; replies `OK BATCH <count>`
//!                           then one result line per observation
//! STATS                     registry and traffic counters
//! QUIT                      close this connection
//! SHUTDOWN                  drain in-flight requests and stop the server
//! ```
//!
//! Observations are ternary (`0`/`1`/`X`), matching what corrupted tester
//! datalogs actually contain: a pass/fail dictionary takes one `k`-bit
//! signature token; same/different and full dictionaries take `k`
//! slash-separated `m`-bit output responses (`01X/1X0/...`). Every query is
//! routed through the masked-diagnosis ladder
//! ([`sdd_core::diagnose`]) and reports where it landed
//! (`exact`, `consistent`, `ranked`) alongside the ranked candidates.
//!
//! Loaded dictionaries live in a registry with least-recently-used eviction
//! under a configurable memory cap, so a box serving many designs keeps its
//! footprint bounded. Each worker thread reuses one diagnosis scratch
//! buffer across requests, keeping the hot path allocation-light.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sdd_core::diagnose::{match_signatures_masked_into, MatchQuality, ScoredCandidate};
use sdd_logic::{MaskedBitVec, SddError};
use sdd_store::StoredDictionary;

/// How the server is bound and provisioned.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:4017` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Registry memory cap in bytes; least-recently-used dictionaries are
    /// evicted when loading would exceed it.
    pub memory_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            memory_cap: 64 << 20,
        }
    }
}

/// How many ranked candidates a `DIAG` reply includes in its `top=` field.
const TOP_CANDIDATES: usize = 5;

/// Read timeout used to re-check the shutdown flag on idle connections.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// One loaded dictionary plus its LRU bookkeeping.
struct Entry {
    dictionary: Arc<StoredDictionary>,
    bytes: usize,
    last_used: u64,
    /// Microseconds the `LOAD` spent reading, decoding, and inserting —
    /// surfaced per dictionary in `STATS` so slow loads are visible.
    load_us: u64,
}

/// The dictionary registry: named dictionaries under a memory cap with
/// least-recently-used eviction.
struct Registry {
    cap: usize,
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    entries: HashMap<String, Entry>,
    bytes: usize,
    clock: u64,
    evictions: u64,
}

impl Registry {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Inserts (or replaces) a dictionary, then evicts least-recently-used
    /// entries until the total fits the cap. The entry just inserted is
    /// never evicted: a dictionary larger than the cap alone is admitted,
    /// because refusing it would make the service useless for that design.
    fn insert(&self, name: &str, dictionary: StoredDictionary, load_us: u64) -> usize {
        let bytes = dictionary.approx_bytes();
        let mut inner = self.inner.lock().expect("registry lock");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.insert(
            name.to_owned(),
            Entry {
                dictionary: Arc::new(dictionary),
                bytes,
                last_used: clock,
                load_us,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.bytes > self.cap && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(n, _)| n.as_str() != name)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(n, _)| n.clone());
            match victim {
                Some(victim) => {
                    let evicted = inner.entries.remove(&victim).expect("victim exists");
                    inner.bytes -= evicted.bytes;
                    inner.evictions += 1;
                }
                None => break,
            }
        }
        bytes
    }

    /// Fetches a dictionary and marks it most-recently-used.
    fn get(&self, name: &str) -> Option<Arc<StoredDictionary>> {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.clock += 1;
        let clock = inner.clock;
        inner.entries.get_mut(name).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.dictionary)
        })
    }

    fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry lock");
        let mut entries: Vec<(String, usize, u64)> = inner
            .entries
            .iter()
            .map(|(name, e)| (name.clone(), e.bytes, e.load_us))
            .collect();
        entries.sort_unstable();
        RegistryStats {
            dicts: inner.entries.len(),
            bytes: inner.bytes,
            evictions: inner.evictions,
            entries,
        }
    }
}

/// A consistent snapshot of the registry for `STATS`.
struct RegistryStats {
    dicts: usize,
    bytes: usize,
    evictions: u64,
    /// Per dictionary, sorted by name: `(name, resident bytes, load µs)`.
    entries: Vec<(String, usize, u64)>,
}

/// State shared by the acceptor and every worker.
struct Shared {
    registry: Registry,
    shutting_down: AtomicBool,
    requests: AtomicU64,
    diagnoses: AtomicU64,
    addr: SocketAddr,
    /// Size of the worker pool, reported by `STATS`.
    workers: usize,
}

/// A running server: its bound address and the handles needed to stop it.
///
/// Obtained from [`serve`]; dropping the handle does **not** stop the
/// server — call [`shutdown`](Self::shutdown) or send `SHUTDOWN` over a
/// connection, then [`wait`](Self::wait).
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests the same graceful shutdown a `SHUTDOWN` command does:
    /// stop accepting, finish in-flight requests, release the port.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the server has fully drained and every thread exited.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Flags the shutdown and pokes the acceptor loose from `accept()` with a
/// throwaway connection.
fn begin_shutdown(shared: &Shared) {
    if !shared.shutting_down.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(shared.addr);
    }
}

/// Binds the listener and spawns the acceptor and worker threads.
///
/// Returns once the port is bound; serving continues in the background
/// until a `SHUTDOWN` request (or [`ServerHandle::shutdown`]) drains it.
///
/// # Errors
///
/// [`SddError::Io`] when the address cannot be bound.
pub fn serve(config: &ServeConfig) -> Result<ServerHandle, SddError> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| SddError::io(config.addr.clone(), &e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| SddError::io(config.addr.clone(), &e))?;
    let shared = Arc::new(Shared {
        registry: Registry::new(config.memory_cap),
        shutting_down: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        diagnoses: AtomicU64::new(0),
        addr,
        workers: config.workers.max(1),
    });

    let (sender, receiver) = mpsc::channel::<TcpStream>();
    let receiver = Arc::new(Mutex::new(receiver));
    let workers = (0..shared.workers)
        .map(|_| {
            let receiver = Arc::clone(&receiver);
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&receiver, &shared))
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break; // the poke, or a client that raced it
                        }
                        if sender.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            // Dropping the sender lets workers drain the queue and exit.
        })
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Per-worker reusable buffers: the ranked-candidate scratch the masked
/// matcher fills and the parsed per-test responses of the current request.
#[derive(Default)]
struct Scratch {
    ranking: Vec<ScoredCandidate>,
    responses: Vec<MaskedBitVec>,
}

fn worker_loop(receiver: &Arc<Mutex<mpsc::Receiver<TcpStream>>>, shared: &Arc<Shared>) {
    let mut scratch = Scratch::default();
    loop {
        let stream = {
            let guard = receiver.lock().expect("connection queue lock");
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, shared, &mut scratch),
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, scratch: &mut Scratch) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return; // in-flight request finished; drop the connection
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let request = line.trim().to_owned();
                line.clear();
                if request.is_empty() {
                    continue;
                }
                shared.requests.fetch_add(1, Ordering::Relaxed);
                match respond(&request, shared, scratch, &mut writer) {
                    Ok(ConnectionFate::Keep) => {}
                    Ok(ConnectionFate::Close) => return,
                    Err(_) => return, // client went away mid-reply
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle poll tick; partial line stays buffered
            }
            Err(_) => return,
        }
    }
}

enum ConnectionFate {
    Keep,
    Close,
}

/// Parses one request line, writes the reply line(s), and says whether the
/// connection stays open.
fn respond(
    request: &str,
    shared: &Arc<Shared>,
    scratch: &mut Scratch,
    writer: &mut TcpStream,
) -> io::Result<ConnectionFate> {
    let mut tokens = request.split_whitespace();
    let verb = tokens.next().unwrap_or_default().to_ascii_uppercase();
    match verb.as_str() {
        "LOAD" => {
            let reply = match (tokens.next(), tokens.next(), tokens.next()) {
                (Some(name), Some(path), None) => load_reply(name, path, shared),
                _ => err_reply("usage: LOAD <name> <path>"),
            };
            writeln!(writer, "{reply}")?;
        }
        "DIAG" => {
            let reply = match (tokens.next(), tokens.next(), tokens.next()) {
                (Some(name), Some(obs), None) => diag_reply(name, obs, shared, scratch),
                _ => err_reply("usage: DIAG <dict> <observation>"),
            };
            writeln!(writer, "{reply}")?;
        }
        "BATCH" => match tokens.next() {
            Some(name) => {
                let observations: Vec<&str> = tokens.collect();
                writeln!(writer, "OK BATCH {}", observations.len())?;
                for (index, obs) in observations.iter().enumerate() {
                    let reply = diag_reply(name, obs, shared, scratch);
                    writeln!(writer, "{index} {reply}")?;
                }
            }
            None => writeln!(writer, "{}", err_reply("usage: BATCH <dict> <obs>..."))?,
        },
        "STATS" => {
            let stats = shared.registry.stats();
            let mut reply = format!(
                "OK STATS workers={} dicts={} bytes={} cap={} requests={} diags={} evictions={}",
                shared.workers,
                stats.dicts,
                stats.bytes,
                shared.registry.cap,
                shared.requests.load(Ordering::Relaxed),
                shared.diagnoses.load(Ordering::Relaxed),
                stats.evictions,
            );
            for (name, bytes, load_us) in &stats.entries {
                reply.push_str(&format!(" dict={name}:{bytes}:{load_us}us"));
            }
            writeln!(writer, "{reply}")?;
        }
        "QUIT" => {
            writeln!(writer, "OK BYE")?;
            writer.flush()?;
            return Ok(ConnectionFate::Close);
        }
        "SHUTDOWN" => {
            writeln!(writer, "OK BYE")?;
            writer.flush()?;
            begin_shutdown(shared);
            return Ok(ConnectionFate::Close);
        }
        other => {
            writeln!(
                writer,
                "{}",
                err_reply(&format!("unknown command {other:?}"))
            )?;
        }
    }
    writer.flush()?;
    Ok(ConnectionFate::Keep)
}

fn err_reply(message: &str) -> String {
    // Replies are single lines; scrub any newline an error message carries.
    format!("ERR {}", message.replace('\n', " "))
}

fn load_reply(name: &str, path: &str, shared: &Arc<Shared>) -> String {
    let start = Instant::now();
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) => return err_reply(&SddError::io(path, &e).to_string()),
    };
    let dictionary = if sdd_store::is_binary(&bytes) {
        sdd_store::decode(&bytes)
    } else {
        sdd_store::read_same_different_auto(&bytes).map(StoredDictionary::SameDifferent)
    };
    match dictionary {
        Ok(d) => {
            let kind = d.kind().name();
            let (faults, tests) = (d.fault_count(), d.test_count());
            let load_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let resident = shared.registry.insert(name, d, load_us);
            format!(
                "OK LOADED {name} kind={kind} faults={faults} tests={tests} bytes={resident} load_us={load_us}"
            )
        }
        Err(e) => err_reply(&e.to_string()),
    }
}

fn diag_reply(name: &str, obs: &str, shared: &Arc<Shared>, scratch: &mut Scratch) -> String {
    let Some(dictionary) = shared.registry.get(name) else {
        return err_reply(&format!("no dictionary loaded as {name:?}"));
    };
    shared.diagnoses.fetch_add(1, Ordering::Relaxed);
    match diagnose(&dictionary, obs, scratch) {
        Ok(reply) => reply,
        Err(e) => err_reply(&e.to_string()),
    }
}

/// Routes one observation through the masked-diagnosis ladder of the named
/// dictionary kind, reusing the worker's scratch buffers.
fn diagnose(
    dictionary: &StoredDictionary,
    obs: &str,
    scratch: &mut Scratch,
) -> Result<String, SddError> {
    match dictionary {
        StoredDictionary::PassFail(d) => {
            let observed: MaskedBitVec = obs.parse()?;
            let (quality, known) =
                match_signatures_masked_into(d.signatures(), &observed, &mut scratch.ranking)?;
            Ok(format_report(quality, known, &scratch.ranking))
        }
        StoredDictionary::SameDifferent(d) => {
            parse_responses(obs, &mut scratch.responses)?;
            let observed = d.encode_observed_masked(&scratch.responses)?;
            let (quality, known) =
                match_signatures_masked_into(d.signatures(), &observed, &mut scratch.ranking)?;
            Ok(format_report(quality, known, &scratch.ranking))
        }
        StoredDictionary::Full(d) => {
            parse_responses(obs, &mut scratch.responses)?;
            let report = d.diagnose_masked(&scratch.responses)?;
            Ok(format_report(report.quality, report.known, &report.ranking))
        }
    }
}

/// Parses `01X/1X0/...` into the reusable per-test response buffer.
fn parse_responses(obs: &str, responses: &mut Vec<MaskedBitVec>) -> Result<(), SddError> {
    responses.clear();
    for token in obs.split('/') {
        responses.push(token.parse()?);
    }
    Ok(())
}

fn quality_name(quality: MatchQuality) -> &'static str {
    match quality {
        MatchQuality::Exact => "exact",
        MatchQuality::ConsistentUnderMask => "consistent",
        MatchQuality::Ranked => "ranked",
    }
}

/// Formats a ranked diagnosis as a single reply line:
/// `OK DIAG quality=<q> known=<b> distance=<d> best=<i,j> top=<f:miss:conf,...>`.
fn format_report(quality: MatchQuality, known: usize, ranking: &[ScoredCandidate]) -> String {
    let distance = ranking.first().map_or(0, |c| c.mismatches);
    let best: Vec<String> = ranking
        .iter()
        .take_while(|c| c.mismatches == distance)
        .map(|c| c.fault.to_string())
        .collect();
    let top: Vec<String> = ranking
        .iter()
        .take(TOP_CANDIDATES)
        .map(|c| format!("{}:{}:{:.4}", c.fault, c.mismatches, c.confidence))
        .collect();
    format!(
        "OK DIAG quality={} known={known} distance={distance} best={} top={}",
        quality_name(quality),
        best.join(","),
        top.join(","),
    )
}

/// A minimal blocking client for the line protocol — what the smoke tests,
/// examples, and one-off scripts drive the server with.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        Ok(Self {
            reader: BufReader::new(TcpStream::connect(addr)?),
        })
    }

    fn send(&mut self, request: &str) -> io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()
    }

    fn receive(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    /// Sends one request line and reads one reply line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, including the server closing mid-reply.
    pub fn request(&mut self, request: &str) -> io::Result<String> {
        self.send(request)?;
        self.receive()
    }

    /// Sends a `BATCH` request and reads the counted multi-line reply,
    /// returning one result line per observation.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a non-`OK BATCH` first line comes back as
    /// [`io::ErrorKind::InvalidData`] carrying the server's reply.
    pub fn batch(&mut self, dictionary: &str, observations: &[&str]) -> io::Result<Vec<String>> {
        self.send(&format!("BATCH {dictionary} {}", observations.join(" ")))?;
        let head = self.receive()?;
        let count: usize = head
            .strip_prefix("OK BATCH ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, head.clone()))?;
        (0..count).map(|_| self.receive()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::PassFailDictionary;

    fn pf() -> StoredDictionary {
        StoredDictionary::PassFail(PassFailDictionary::build(
            &sdd_core::example::paper_example(),
        ))
    }

    #[test]
    fn registry_evicts_least_recently_used_under_cap() {
        let one = pf().approx_bytes();
        let registry = Registry::new(2 * one);
        registry.insert("a", pf(), 11);
        registry.insert("b", pf(), 22);
        assert!(registry.get("a").is_some(), "a is now most recently used");
        registry.insert("c", pf(), 33); // over cap: evicts b, the LRU entry
        let stats = registry.stats();
        assert_eq!((stats.dicts, stats.evictions), (2, 1));
        assert!(stats.bytes <= 2 * one);
        assert_eq!(
            stats.entries,
            vec![("a".to_owned(), one, 11), ("c".to_owned(), one, 33)],
            "per-dictionary stats are sorted by name and keep load times"
        );
        assert!(registry.get("b").is_none(), "b was evicted");
        assert!(registry.get("a").is_some() && registry.get("c").is_some());
    }

    #[test]
    fn registry_admits_an_oversized_dictionary_alone() {
        let registry = Registry::new(1); // cap smaller than any dictionary
        registry.insert("big", pf(), 0);
        let stats = registry.stats();
        assert_eq!(
            (stats.dicts, stats.evictions),
            (1, 0),
            "sole entry is never evicted"
        );
        registry.insert("bigger", pf(), 0);
        let stats = registry.stats();
        assert_eq!(
            (stats.dicts, stats.evictions),
            (1, 1),
            "previous entry made room"
        );
    }

    #[test]
    fn replacing_a_dictionary_does_not_leak_accounting() {
        let one = pf().approx_bytes();
        let registry = Registry::new(10 * one);
        registry.insert("a", pf(), 5);
        registry.insert("a", pf(), 7);
        let stats = registry.stats();
        assert_eq!((stats.dicts, stats.bytes, stats.evictions), (1, one, 0));
        assert_eq!(stats.entries[0].2, 7, "reload refreshes the load time");
    }

    #[test]
    fn diagnose_formats_the_ladder() {
        let mut scratch = Scratch::default();
        let d = pf();
        let reply = diagnose(&d, "01", &mut scratch).unwrap();
        assert!(reply.starts_with("OK DIAG quality=exact"), "{reply}");
        assert!(reply.contains("best=0"), "{reply}");
        let reply = diagnose(&d, "0X", &mut scratch).unwrap();
        assert!(reply.contains("quality=consistent"), "{reply}");
        // Width mismatch is an ERR-able typed error, not a panic.
        assert!(diagnose(&d, "011", &mut scratch).is_err());
    }
}
