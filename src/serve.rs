//! A concurrent diagnosis service over TCP — the tester-floor deployment
//! shape: one precomputed dictionary, thousands of diagnosis queries per
//! lot.
//!
//! The server speaks a line-delimited text protocol (one request per line,
//! space-separated tokens; replies start with `OK` or `ERR`):
//!
//! ```text
//! LOAD <name> <path>        load a dictionary (.sddb binary, .sddm shard
//!                           manifest, or v1 text)
//! RELOAD <name>             re-open the artifact <name> was loaded from
//!                           (after `sdd patch`); a sharded entry keeps
//!                           every resident shard the patch left unchanged
//! DIAG <name> <obs>         diagnose one observation against <name>
//! BATCH <name> <obs>...     diagnose many; replies `OK BATCH <count>`
//!                           then one result line per observation
//! VOLUME <name> <lines> [seed=N] [threshold=F] [budget_ms=N]
//!                           volume diagnosis: the client streams <lines>
//!                           corpus lines (text or JSONL, see
//!                           `sdd_volume::corpus`) right after the request;
//!                           the server replies `OK VOLUME <lines>`, one
//!                           verdict-prefixed JSON record per corpus
//!                           record, then `OK SUMMARY <json>`
//! STATS                     registry and traffic counters
//! QUIT                      close this connection
//! SHUTDOWN                  drain in-flight requests and stop the server
//! ```
//!
//! Observations are ternary (`0`/`1`/`X`), matching what corrupted tester
//! datalogs actually contain: a pass/fail dictionary takes one `k`-bit
//! signature token; same/different and full dictionaries take `k`
//! slash-separated `m`-bit output responses (`01X/1X0/...`). Every query is
//! routed through the masked-diagnosis ladder
//! ([`sdd_core::diagnose`]) and reports where it landed
//! (`exact`, `consistent`, `ranked`) alongside the ranked candidates.
//!
//! Loaded dictionaries live in a registry with least-recently-used eviction
//! under a configurable memory cap, so a box serving many designs keeps its
//! footprint bounded. Each worker thread reuses one diagnosis scratch
//! buffer across requests, keeping the hot path allocation-light.
//!
//! Loading a `.sddm` shard manifest registers the shard set without reading
//! any shard: shards load lazily on the first `DIAG` that needs them, in
//! cone-priority order (shards whose recorded output cone intersects the
//! observation's failing outputs first). Every shard is still *scored* on
//! every query — signatures compare against shard-global baselines, so a
//! fault outside the failing cone can still be the best candidate, and
//! skipping it would break the bit-identical merge. The LRU registry evicts
//! at shard granularity, and `STATS` reports per-shard residency.
//!
//! # Failure domains and the reply contract
//!
//! Every reply line starts with one of four verdicts, and infrastructure
//! failures degrade the verdict instead of killing the connection or the
//! worker:
//!
//! * `OK` — the request was served against complete evidence. `OK BUSY`
//!   is the overload shed: a connection accepted past
//!   [`ServeConfig::max_connections`] gets the one-line refusal and is
//!   closed, so excess clients queue at their end, not inside the pool.
//! * `PARTIAL` — a sharded `DIAG`/`BATCH` item answered from the shards
//!   that could be loaded, because some shard was missing, corrupt, or cut
//!   off by the per-request deadline. The reply carries
//!   `covered=<faults>/<total>` and a `degraded=<shard>:<reason>,...` list;
//!   the ranking is bit-identical to diagnosing the explicit
//!   sub-dictionary of the shards that *were* resident (a missing shard is
//!   just another form of masked evidence).
//! * `ERR` — a typed per-request failure (bad syntax, unknown dictionary,
//!   shape mismatch, every shard unavailable). The connection stays open.
//! * A stalled client is bounded, not trusted: a connection with no
//!   complete request within [`ServeConfig::idle_timeout`] is closed
//!   (slow-loris cutoff), and a write stalled past
//!   [`ServeConfig::write_timeout`] is connection death, never a wedged
//!   worker.
//!
//! # Transport backends
//!
//! Two interchangeable transports serve the identical protocol, selected by
//! [`ServeConfig::backend`]:
//!
//! * [`ServeBackend::Reactor`] (the default on Linux via
//!   [`ServeBackend::Auto`]) — one event-driven readiness loop
//!   ([`crate::reactor`]) owns every socket: accept, read, write, and the
//!   idle/write-stall timers. Complete request lines are handed to the
//!   worker pool over an SPMC queue; workers execute the CPU-bound
//!   diagnosis and push reply bytes to per-connection outbound buffers the
//!   reactor drains on writability. Clients may **pipeline**: many requests
//!   written in one burst are answered in order, byte-identical to issuing
//!   them sequentially. A connection whose outbound buffer passes the
//!   high-water mark stops being read until it drains (write
//!   backpressure), so a slow reader can never balloon server memory.
//! * [`ServeBackend::Threaded`] — the portable fallback: each worker owns
//!   one connection at a time and blocks on it, polling under
//!   [`POLL_INTERVAL`] to honor shutdown and idle limits. It serves the
//!   same byte-for-byte protocol (pipelined bursts included — the kernel
//!   socket buffer holds them) and runs everywhere.
//!
//! `STATS` reports which backend is live (`backend=`) plus the reactor
//! traffic counters (`accepted=`, `wakeups=`, `backpressure_stalls=`,
//! `pipelined=`); the threaded backend reports zeros for those so parsers
//! stay uniform.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sdd_core::diagnose::{match_signatures_masked_into, MatchQuality, ScoredCandidate};
use sdd_core::Budget;
use sdd_logic::{BitVec, MaskedBitVec, SddError};
use sdd_store::{DictBytes, DictionaryKind, MmapMode, SddbReader, ShardedReader, StoredDictionary};
use sdd_volume::{
    error_token, quality_name, FetchError, ShardSource, VolumeOptions, WholeSource, WireSink,
};

use crate::shard::{self, ShardObservation};

/// Which transport drives the sockets (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeBackend {
    /// The epoll reactor where supported ([`crate::reactor::supported`]),
    /// else the threaded transport. The right choice almost always.
    #[default]
    Auto,
    /// Force the portable blocking worker-pool transport.
    Threaded,
    /// Force the epoll reactor; [`serve`] fails with a typed error on
    /// platforms without it.
    Reactor,
}

impl ServeBackend {
    /// Parses the `--backend` CLI token.
    ///
    /// # Errors
    ///
    /// [`SddError::Invalid`] for anything but `auto`/`threaded`/`reactor`.
    pub fn parse(token: &str) -> Result<Self, SddError> {
        match token.to_ascii_lowercase().as_str() {
            "auto" => Ok(Self::Auto),
            "threaded" => Ok(Self::Threaded),
            "reactor" => Ok(Self::Reactor),
            other => Err(SddError::invalid(format!(
                "unknown serve backend {other:?} (expected auto, threaded, or reactor)"
            ))),
        }
    }
}

/// How the server is bound and provisioned.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:4017` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Registry memory cap in bytes; least-recently-used dictionaries are
    /// evicted when loading would exceed it.
    pub memory_cap: usize,
    /// Connections served concurrently before the acceptor starts shedding
    /// newcomers with a one-line `OK BUSY` refusal.
    pub max_connections: usize,
    /// Per-write socket timeout; a reply write that stalls this long is
    /// connection death, never a wedged worker.
    pub write_timeout: Duration,
    /// A connection with no *complete* request line for this long is closed
    /// (`ERR idle timeout ...`) — the slow-loris cutoff that keeps stalled
    /// clients from pinning pool workers.
    pub idle_timeout: Duration,
    /// Optional wall-clock budget per request. A sharded `DIAG` that runs
    /// out mid-load answers `PARTIAL` from the shards already resident;
    /// remaining `BATCH` items answer `ERR deadline`. `None` means
    /// unbounded.
    pub request_deadline: Option<Duration>,
    /// Which transport drives the sockets (see the module docs).
    pub backend: ServeBackend,
    /// How `LOAD` brings dictionary files into memory: mapped zero-copy
    /// images ([`MmapMode::Auto`] maps on Linux, reads elsewhere) or owned
    /// buffers. Mapped binary dictionaries register their validated image
    /// and defer decoding to the first `DIAG`; mapped shard eviction is an
    /// `munmap`. Verdict bytes are identical in every mode.
    pub mmap: MmapMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            memory_cap: 64 << 20,
            max_connections: 256,
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(600),
            request_deadline: None,
            backend: ServeBackend::Auto,
            mmap: MmapMode::Auto,
        }
    }
}

/// How many ranked candidates a `DIAG` reply includes in its `top=` field.
const TOP_CANDIDATES: usize = 5;

/// Read timeout the **threaded** backend uses to re-check the shutdown flag
/// on idle connections. The reactor backend has no poll tick at all —
/// shutdown, idle cutoffs, and write stalls are epoll wakeups with computed
/// deadlines.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// One loaded dictionary — whole, or a lazily-populated shard set.
enum Entry {
    Whole {
        /// The decoded form. `None` while only the mapped image is held:
        /// a mapped `LOAD` validates and checksums the file but defers
        /// decoding to the first `DIAG`, and eviction of an image-backed
        /// entry drops only this (the image re-decodes from warm pages).
        dictionary: Option<Arc<StoredDictionary>>,
        /// The validated byte image the decode runs from — present only
        /// when it is a mapping, which costs page cache rather than heap
        /// and is therefore not counted against the memory cap.
        image: Option<Arc<DictBytes>>,
        /// Decoded-resident bytes counted against the cap (zero while the
        /// entry is image-only).
        bytes: usize,
        last_used: u64,
        /// Microseconds the `LOAD` spent reading, decoding, and inserting —
        /// surfaced per dictionary in `STATS` so slow loads are visible.
        load_us: u64,
    },
    Sharded {
        reader: Arc<ShardedReader>,
        /// One slot per manifest shard; `resident: None` until the first
        /// `DIAG` that needs the shard loads it (or after eviction).
        slots: Vec<ShardSlot>,
        /// Microseconds the `LOAD` spent reading the manifest.
        load_us: u64,
    },
}

/// Residency state of one shard. The manifest itself is a few hundred bytes
/// and is not counted against the memory cap; only resident decoded shard
/// payloads are — a shard's mapped image is page cache, tracked separately.
#[derive(Default)]
struct ShardSlot {
    resident: Option<Arc<StoredDictionary>>,
    /// The shard file's mapped image, kept alongside the decoded form so
    /// `STATS` can report mapped bytes; eviction drops both, and dropping
    /// the image *is* the `munmap`.
    image: Option<DictBytes>,
    bytes: usize,
    last_used: u64,
    /// How many times this shard has been (re)loaded from disk — zero means
    /// the shard has never been needed.
    loads: u64,
}

impl ShardSlot {
    fn mapped_bytes(&self) -> usize {
        match &self.image {
            Some(image) if image.is_mapped() => image.len(),
            _ => 0,
        }
    }
}

/// What [`Registry::get`] found under a name.
enum Fetched {
    Whole(Arc<StoredDictionary>),
    /// A mapped dictionary whose decode is deferred (or was evicted): the
    /// caller decodes from the image outside the registry lock and makes
    /// the result resident via [`Registry::insert_decoded`].
    WholeCold(Arc<DictBytes>),
    Sharded(Arc<ShardedReader>),
    Missing,
}

/// The dictionary registry: named dictionaries under a memory cap with
/// least-recently-used eviction. Whole dictionaries and individual resident
/// shards are peer eviction units — a cold query against one design evicts
/// the stalest *shard* elsewhere, not necessarily a whole design.
struct Registry {
    cap: usize,
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    entries: HashMap<String, Entry>,
    /// The artifact path each name was `LOAD`ed from — what `RELOAD`
    /// re-opens after an in-place patch. Kept beside the entries (not in
    /// them) so replacing an entry mid-request cannot lose its provenance.
    paths: HashMap<String, String>,
    bytes: usize,
    clock: u64,
    evictions: u64,
}

impl RegistryInner {
    /// Evicts least-recently-used units until the total fits `cap`. The
    /// unit named by `keep` (a whole dictionary, or one shard of one) is
    /// never evicted: an entry larger than the cap alone is admitted,
    /// because refusing it would make the service useless for that design.
    ///
    /// Only decoded-resident bytes count against the cap, so only they are
    /// evictable: an image-backed whole dictionary keeps its mapping (page
    /// cache, free to re-decode from) and sheds just the decoded form,
    /// while an owned whole dictionary is removed outright. A shard drops
    /// both its decoded form and its mapped image — that drop is the
    /// `munmap`, and a later fetch maps the file afresh.
    fn evict_over_cap(&mut self, cap: usize, keep: (&str, Option<usize>)) {
        while self.bytes > cap {
            let victim = self
                .entries
                .iter()
                .flat_map(|(name, entry)| -> Vec<(u64, String, Option<usize>)> {
                    match entry {
                        Entry::Whole {
                            last_used,
                            dictionary,
                            ..
                        } => dictionary
                            .is_some()
                            .then(|| (*last_used, name.clone(), None))
                            .into_iter()
                            .collect(),
                        Entry::Sharded { slots, .. } => slots
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.resident.is_some())
                            .map(|(i, s)| (s.last_used, name.clone(), Some(i)))
                            .collect(),
                    }
                })
                .filter(|(_, name, slot)| (name.as_str(), *slot) != keep)
                .min();
            let Some((_, name, slot)) = victim else {
                break;
            };
            match slot {
                None => {
                    let image_backed = matches!(
                        self.entries.get(&name),
                        Some(Entry::Whole { image: Some(_), .. })
                    );
                    if image_backed {
                        if let Some(Entry::Whole {
                            dictionary, bytes, ..
                        }) = self.entries.get_mut(&name)
                        {
                            *dictionary = None;
                            self.bytes -= *bytes;
                            *bytes = 0;
                        }
                    } else if let Some(Entry::Whole { bytes, .. }) = self.entries.remove(&name) {
                        self.bytes -= bytes;
                    }
                }
                Some(index) => {
                    if let Some(Entry::Sharded { slots, .. }) = self.entries.get_mut(&name) {
                        let slot = &mut slots[index];
                        slot.resident = None;
                        slot.image = None; // the munmap
                        self.bytes -= slot.bytes;
                        slot.bytes = 0;
                    }
                }
            }
            self.evictions += 1;
        }
    }
}

impl Registry {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Locks the registry, recovering from poisoning: every mutation keeps
    /// the accounting consistent before releasing the lock, so the state a
    /// panicking worker left behind is safe to reuse — wedging every
    /// subsequent request on an `expect` would turn one bad request into a
    /// full outage.
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts (or replaces) a whole, decoded, owned dictionary, then
    /// evicts until the total fits the cap.
    fn insert(&self, name: &str, dictionary: StoredDictionary, load_us: u64) -> usize {
        let bytes = dictionary.approx_bytes();
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let old = inner.entries.insert(
            name.to_owned(),
            Entry::Whole {
                dictionary: Some(Arc::new(dictionary)),
                image: None,
                bytes,
                last_used: clock,
                load_us,
            },
        );
        inner.bytes -= old.map_or(0, |e| entry_bytes(&e));
        inner.bytes += bytes;
        inner.evict_over_cap(self.cap, (name, None));
        bytes
    }

    /// Registers (or replaces) a whole dictionary by its validated mapped
    /// image alone — no decode, no cap pressure. The first `DIAG` decodes
    /// through [`Fetched::WholeCold`] + [`insert_decoded`]
    /// (Self::insert_decoded); until then the dictionary costs page cache
    /// only. Returns the resident decoded byte count — always zero here.
    fn insert_image(&self, name: &str, image: DictBytes, load_us: u64) -> usize {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let old = inner.entries.insert(
            name.to_owned(),
            Entry::Whole {
                dictionary: None,
                image: Some(Arc::new(image)),
                bytes: 0,
                last_used: clock,
                load_us,
            },
        );
        inner.bytes -= old.map_or(0, |e| entry_bytes(&e));
        0
    }

    /// Makes the decoded form of an image-backed whole dictionary resident
    /// (the decode ran in the worker, outside this lock), then evicts
    /// until the total fits the cap. If the entry was replaced mid-request
    /// the decode still serves this request; it is just not cached.
    fn insert_decoded(&self, name: &str, dictionary: StoredDictionary) -> Arc<StoredDictionary> {
        let bytes = dictionary.approx_bytes();
        let dictionary = Arc::new(dictionary);
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(Entry::Whole {
            dictionary: resident,
            bytes: entry_bytes,
            last_used,
            image: Some(_),
            ..
        }) = inner.entries.get_mut(name)
        {
            let replaced = std::mem::replace(entry_bytes, bytes);
            *resident = Some(Arc::clone(&dictionary));
            *last_used = clock;
            inner.bytes -= replaced;
            inner.bytes += bytes;
            inner.evict_over_cap(self.cap, (name, None));
        }
        dictionary
    }

    /// Registers (or replaces) a sharded dictionary by its manifest. No
    /// shard is read here — slots start cold and populate on demand.
    fn insert_manifest(&self, name: &str, reader: ShardedReader, load_us: u64) -> usize {
        let slots = (0..reader.shard_count())
            .map(|_| ShardSlot::default())
            .collect();
        let mut inner = self.lock();
        let old = inner.entries.insert(
            name.to_owned(),
            Entry::Sharded {
                reader: Arc::new(reader),
                slots,
                load_us,
            },
        );
        inner.bytes -= old.map_or(0, |e| entry_bytes(&e));
        0
    }

    /// Records the artifact path `name` was loaded from, for `RELOAD`.
    fn record_path(&self, name: &str, path: &str) {
        self.lock().paths.insert(name.to_owned(), path.to_owned());
    }

    /// The artifact path `name` was loaded from, if it ever loaded.
    fn source_path(&self, name: &str) -> Option<String> {
        self.lock().paths.get(name).cloned()
    }

    /// Replaces a sharded entry with a re-opened manifest, carrying over
    /// every resident slot whose manifest record is unchanged (same file
    /// name, checksum, and fault range) — after an in-place patch, only
    /// the rewritten shards go cold. Returns how many resident shards
    /// survived the swap.
    fn reload_manifest(&self, name: &str, reader: ShardedReader, load_us: u64) -> usize {
        let new_records = reader.manifest().shards.clone();
        let mut slots: Vec<ShardSlot> = new_records.iter().map(|_| ShardSlot::default()).collect();
        let mut kept = 0;
        let mut inner = self.lock();
        if let Some(Entry::Sharded {
            reader: old_reader,
            slots: old_slots,
            ..
        }) = inner.entries.get_mut(name)
        {
            let old_records = &old_reader.manifest().shards;
            for (index, record) in new_records.iter().enumerate() {
                let unchanged = old_records.iter().position(|old| {
                    old.file == record.file
                        && old.payload_checksum == record.payload_checksum
                        && old.fault_start == record.fault_start
                        && old.fault_count == record.fault_count
                });
                if let Some(old_index) = unchanged {
                    // Taking the slot keeps its resident bytes counted in
                    // `inner.bytes`: they move to the new entry unchanged.
                    let slot = std::mem::take(&mut old_slots[old_index]);
                    if slot.resident.is_some() {
                        kept += 1;
                    }
                    slots[index] = slot;
                }
            }
        }
        let old = inner.entries.insert(
            name.to_owned(),
            Entry::Sharded {
                reader: Arc::new(reader),
                slots,
                load_us,
            },
        );
        inner.bytes -= old.map_or(0, |e| entry_bytes(&e));
        kept
    }

    /// Fetches whatever is registered under `name`, marking a whole
    /// dictionary most-recently-used (shards are touched individually). An
    /// image-backed entry whose decoded form is absent comes back as
    /// [`Fetched::WholeCold`] for the caller to decode outside the lock.
    fn get(&self, name: &str) -> Fetched {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(name) {
            Some(Entry::Whole {
                dictionary,
                image,
                last_used,
                ..
            }) => {
                *last_used = clock;
                match (dictionary, &image) {
                    (Some(dictionary), _) => Fetched::Whole(Arc::clone(dictionary)),
                    (None, Some(image)) => Fetched::WholeCold(Arc::clone(image)),
                    // Unreachable by construction (an entry always holds a
                    // decoded form, an image, or both), but a typed miss
                    // beats a panic inside the registry lock.
                    (None, None) => Fetched::Missing,
                }
            }
            Some(Entry::Sharded { reader, .. }) => Fetched::Sharded(Arc::clone(reader)),
            None => Fetched::Missing,
        }
    }

    /// Fetches one resident shard and marks it most-recently-used; `None`
    /// when the shard is cold, evicted, or the entry is gone.
    fn resident_shard(&self, name: &str, index: usize) -> Option<Arc<StoredDictionary>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(name) {
            Some(Entry::Sharded { slots, .. }) => {
                let slot = slots.get_mut(index)?;
                let dictionary = slot.resident.as_ref().map(Arc::clone)?;
                slot.last_used = clock;
                Some(dictionary)
            }
            _ => None,
        }
    }

    /// Makes a freshly-loaded shard resident (shard file I/O happens in the
    /// worker, outside this lock), then evicts until the total fits the
    /// cap — the shard just inserted is never its own victim. If the entry
    /// was evicted or replaced mid-request, it is re-registered from
    /// `reader` so the load is not wasted.
    fn insert_shard(
        &self,
        name: &str,
        reader: &Arc<ShardedReader>,
        index: usize,
        dictionary: StoredDictionary,
        image: DictBytes,
    ) -> Arc<StoredDictionary> {
        let bytes = dictionary.approx_bytes();
        let dictionary = Arc::new(dictionary);
        // Only a mapping is worth retaining (it is page cache, and
        // dropping it later is the munmap); an owned image would just
        // double the shard's heap next to its decoded form.
        let image = image.is_mapped().then_some(image);
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if !matches!(inner.entries.get(name), Some(Entry::Sharded { .. })) {
            let slots = (0..reader.shard_count())
                .map(|_| ShardSlot::default())
                .collect();
            inner.entries.insert(
                name.to_owned(),
                Entry::Sharded {
                    reader: Arc::clone(reader),
                    slots,
                    load_us: 0,
                },
            );
        }
        if let Some(Entry::Sharded { slots, .. }) = inner.entries.get_mut(name) {
            if let Some(slot) = slots.get_mut(index) {
                let replaced = std::mem::replace(&mut slot.bytes, bytes);
                slot.resident = Some(Arc::clone(&dictionary));
                slot.image = image;
                slot.last_used = clock;
                slot.loads += 1;
                inner.bytes -= replaced;
            }
        }
        inner.bytes += bytes;
        inner.evict_over_cap(self.cap, (name, Some(index)));
        dictionary
    }

    fn stats(&self) -> RegistryStats {
        let inner = self.lock();
        let mut entries: Vec<StatsEntry> = inner
            .entries
            .iter()
            .map(|(name, e)| match e {
                Entry::Whole {
                    bytes,
                    load_us,
                    image,
                    ..
                } => StatsEntry {
                    name: name.clone(),
                    bytes: *bytes,
                    load_us: *load_us,
                    mode: if image.is_some() { "mapped" } else { "owned" },
                    mapped: image.as_ref().map_or(0, |i| i.len()),
                    shards: Vec::new(),
                },
                Entry::Sharded {
                    slots,
                    load_us,
                    reader,
                } => StatsEntry {
                    name: name.clone(),
                    bytes: slots.iter().map(|s| s.bytes).sum(),
                    load_us: *load_us,
                    mode: if reader.mode().wants_map() {
                        "mapped"
                    } else {
                        "owned"
                    },
                    mapped: slots.iter().map(ShardSlot::mapped_bytes).sum(),
                    shards: slots
                        .iter()
                        .map(|s| ShardStat {
                            status: match (&s.resident, s.loads) {
                                (Some(_), _) => "resident",
                                (None, 0) => "cold",
                                (None, _) => "evicted",
                            },
                            bytes: s.bytes,
                        })
                        .collect(),
                },
            })
            .collect();
        entries.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        let total_shards = entries.iter().map(|e| e.shards.len()).sum();
        let resident_shards = entries
            .iter()
            .flat_map(|e| &e.shards)
            .filter(|s| s.status == "resident")
            .count();
        RegistryStats {
            dicts: inner.entries.len(),
            bytes: inner.bytes,
            mapped: entries.iter().map(|e| e.mapped).sum(),
            evictions: inner.evictions,
            resident_shards,
            total_shards,
            entries,
        }
    }
}

fn entry_bytes(entry: &Entry) -> usize {
    match entry {
        Entry::Whole { bytes, .. } => *bytes,
        Entry::Sharded { slots, .. } => slots.iter().map(|s| s.bytes).sum(),
    }
}

/// A consistent snapshot of the registry for `STATS`.
struct RegistryStats {
    dicts: usize,
    /// Decoded-resident bytes — the quantity the memory cap bounds.
    bytes: usize,
    /// Mapped image bytes across every entry — page cache the kernel can
    /// reclaim, deliberately outside the cap.
    mapped: usize,
    evictions: u64,
    /// Resident shards across every sharded entry.
    resident_shards: usize,
    /// Total shards across every sharded entry.
    total_shards: usize,
    /// Per dictionary, sorted by name.
    entries: Vec<StatsEntry>,
}

struct StatsEntry {
    name: String,
    bytes: usize,
    load_us: u64,
    /// `"mapped"` when the entry's bytes come from a mapping (or, for a
    /// sharded entry, its shards load through one), else `"owned"`.
    mode: &'static str,
    /// Mapped image bytes currently held for this entry.
    mapped: usize,
    /// Empty for whole dictionaries; per-shard residency otherwise.
    shards: Vec<ShardStat>,
}

struct ShardStat {
    status: &'static str,
    bytes: usize,
}

/// State shared by the transport (acceptor or reactor) and every worker.
pub(crate) struct Shared {
    registry: Registry,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) requests: AtomicU64,
    diagnoses: AtomicU64,
    /// Connections refused with `OK BUSY` under overload.
    busy: AtomicU64,
    /// Sharded diagnoses answered with a degraded `PARTIAL` verdict.
    partial: AtomicU64,
    /// Connections currently admitted (queued or in a worker).
    pub(crate) active: AtomicUsize,
    /// Connections accepted by the reactor (threaded reports zero).
    pub(crate) accepted: AtomicU64,
    /// Reactor `epoll_wait` returns (threaded reports zero).
    pub(crate) wakeups: AtomicU64,
    /// Transitions into write backpressure — a connection whose outbound
    /// buffer crossed the high-water mark and stopped being read
    /// (threaded reports zero).
    pub(crate) backpressure_stalls: AtomicU64,
    /// Requests answered from bytes that were already buffered behind an
    /// earlier request on the same connection — the pipelining win
    /// (threaded reports zero).
    pub(crate) pipelined: AtomicU64,
    addr: SocketAddr,
    /// Size of the worker pool, reported by `STATS`.
    pub(crate) workers: usize,
    /// Which transport is live, reported by `STATS` as `backend=`.
    backend: &'static str,
    /// How `LOAD` brings dictionary files into memory, copied out of
    /// [`ServeConfig::mmap`].
    mmap: MmapMode,
    /// Connection and request limits, copied out of [`ServeConfig`].
    pub(crate) limits: Limits,
}

/// The failure-domain knobs every connection handler consults.
pub(crate) struct Limits {
    pub(crate) max_connections: usize,
    pub(crate) write_timeout: Duration,
    pub(crate) idle_timeout: Duration,
    pub(crate) request_deadline: Option<Duration>,
}

/// Wall-clock budget of one in-flight request — the serving analog of the
/// construction-time [`Budget`]. Sharded shard-loads and batch items check
/// it between units of work and degrade (`PARTIAL` / `ERR deadline`)
/// instead of overrunning.
pub(crate) struct RequestClock {
    start: Instant,
    budget: Budget,
}

impl RequestClock {
    pub(crate) fn new(limit: Option<Duration>) -> Self {
        Self {
            start: Instant::now(),
            budget: limit.map_or_else(Budget::unlimited, Budget::deadline),
        }
    }

    fn expired(&self) -> bool {
        !self.budget.allows(0, self.start.elapsed())
    }
}

/// A running server: its bound address and the handles needed to stop it.
///
/// Obtained from [`serve`]; dropping the handle does **not** stop the
/// server — call [`shutdown`](Self::shutdown) or send `SHUTDOWN` over a
/// connection, then [`wait`](Self::wait).
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests the same graceful shutdown a `SHUTDOWN` command does:
    /// stop accepting, finish in-flight requests, release the port.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the server has fully drained and every thread exited.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Flags the shutdown and pokes the transport loose from its wait with a
/// throwaway connection (the threaded acceptor's `accept()` returns; the
/// reactor's listener turns readable).
pub(crate) fn begin_shutdown(shared: &Shared) {
    if !shared.shutting_down.swap(true, Ordering::SeqCst) {
        let _ = TcpStream::connect(shared.addr);
    }
}

/// Binds the listener and spawns the transport (reactor or
/// acceptor-plus-workers, per [`ServeConfig::backend`]).
///
/// Returns once the port is bound; serving continues in the background
/// until a `SHUTDOWN` request (or [`ServerHandle::shutdown`]) drains it.
///
/// # Errors
///
/// [`SddError::Io`] when the address cannot be bound;
/// [`SddError::Invalid`] when [`ServeBackend::Reactor`] is forced on a
/// platform without epoll.
pub fn serve(config: &ServeConfig) -> Result<ServerHandle, SddError> {
    let backend = match config.backend {
        ServeBackend::Auto => {
            if crate::reactor::supported() {
                ServeBackend::Reactor
            } else {
                ServeBackend::Threaded
            }
        }
        ServeBackend::Reactor if !crate::reactor::supported() => {
            return Err(SddError::invalid(
                "the reactor backend needs epoll; this platform has none (use --backend threaded)",
            ));
        }
        explicit => explicit,
    };
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| SddError::io(config.addr.clone(), &e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| SddError::io(config.addr.clone(), &e))?;
    let shared = Arc::new(Shared {
        registry: Registry::new(config.memory_cap),
        shutting_down: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        diagnoses: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        partial: AtomicU64::new(0),
        active: AtomicUsize::new(0),
        accepted: AtomicU64::new(0),
        wakeups: AtomicU64::new(0),
        backpressure_stalls: AtomicU64::new(0),
        pipelined: AtomicU64::new(0),
        addr,
        workers: config.workers.max(1),
        backend: match backend {
            ServeBackend::Reactor => "reactor",
            _ => "threaded",
        },
        mmap: config.mmap,
        limits: Limits {
            max_connections: config.max_connections.max(1),
            write_timeout: config.write_timeout,
            idle_timeout: config.idle_timeout,
            request_deadline: config.request_deadline,
        },
    });

    if backend == ServeBackend::Reactor {
        let (reactor, workers) = crate::serve_reactor::spawn(listener, Arc::clone(&shared))
            .map_err(|e| SddError::io("epoll reactor", &e))?;
        return Ok(ServerHandle {
            shared,
            acceptor: Some(reactor),
            workers,
        });
    }

    let (sender, receiver) = mpsc::channel::<TcpStream>();
    let receiver = Arc::new(Mutex::new(receiver));
    let workers = (0..shared.workers)
        .map(|_| {
            let receiver = Arc::clone(&receiver);
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&receiver, &shared))
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break; // the poke, or a client that raced it
                        }
                        // Shed before queueing: a connection past the cap
                        // gets an explicit one-line refusal instead of
                        // waiting unbounded behind stalled peers.
                        if shared.active.load(Ordering::SeqCst) >= shared.limits.max_connections {
                            shed_connection(&stream, &shared);
                            continue;
                        }
                        shared.active.fetch_add(1, Ordering::SeqCst);
                        if sender.send(stream).is_err() {
                            shared.active.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                    }
                    Err(_) => {
                        if shared.shutting_down.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            // Dropping the sender lets workers drain the queue and exit.
        })
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Per-worker reusable buffers: the ranked-candidate scratch the masked
/// matcher fills and the parsed per-test responses of the current request.
#[derive(Default)]
pub(crate) struct Scratch {
    ranking: Vec<ScoredCandidate>,
    responses: Vec<MaskedBitVec>,
}

fn worker_loop(receiver: &Arc<Mutex<mpsc::Receiver<TcpStream>>>, shared: &Arc<Shared>) {
    let mut scratch = Scratch::default();
    loop {
        let stream = {
            // A worker that panicked mid-request poisons nothing the queue
            // depends on — recover the receiver and keep serving.
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                handle_connection(stream, shared, &mut scratch);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

/// Logs (one stderr line) a failed socket option instead of silently
/// discarding it — a box where `SO_RCVTIMEO` cannot be set is a box where
/// stalled clients pin workers, and that must be visible in triage.
fn warn_socket(what: &str, result: io::Result<()>) {
    if let Err(e) = result {
        eprintln!("sdd-serve: {what} failed: {e}");
    }
}

/// Refuses one connection under overload: a one-line `OK BUSY` reply, then
/// the stream drops closed. The client saw an explicit verdict and can
/// retry with backoff; the worker pool never saw the connection.
///
/// The write is a **single non-blocking attempt**: the refusal line always
/// fits a fresh socket's empty send buffer, and a client too slow (or too
/// hostile) to have one ready forfeits the courtesy line instead of
/// stalling admission — shedding must never cost more than one syscall.
pub(crate) fn shed_connection(stream: &TcpStream, shared: &Shared) {
    shared.busy.fetch_add(1, Ordering::Relaxed);
    warn_socket("set_nonblocking (shed)", stream.set_nonblocking(true));
    let line = format!(
        "OK BUSY active={} max={}\n",
        shared.active.load(Ordering::SeqCst),
        shared.limits.max_connections,
    );
    let _ = (&*stream).write(line.as_bytes());
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, scratch: &mut Scratch) {
    // Socket-option failures are survivable (the connection just loses its
    // stall protection) but must not be silent — see `warn_socket`.
    warn_socket(
        "set_read_timeout",
        stream.set_read_timeout(Some(POLL_INTERVAL)),
    );
    warn_socket(
        "set_write_timeout",
        stream.set_write_timeout(Some(shared.limits.write_timeout)),
    );
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut last_complete = Instant::now();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return; // in-flight request finished; drop the connection
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                let request = line.trim().to_owned();
                line.clear();
                if request.is_empty() {
                    continue;
                }
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let clock = RequestClock::new(shared.limits.request_deadline);
                // One panicking request must not take the worker (and its
                // queued connections) down with it: catch the unwind, tell
                // the client, and keep serving. The scratch buffers are
                // cleared at the start of every parse, so reusing them
                // after a panic is safe.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    respond(&request, shared, scratch, &mut reader, &mut writer, &clock)
                }));
                match outcome {
                    Ok(Ok(ConnectionFate::Keep)) => {}
                    Ok(Ok(ConnectionFate::Close)) => return,
                    // Client went away mid-reply, or the write timed out
                    // (`WouldBlock`/`TimedOut` from `SO_SNDTIMEO`): either
                    // way the connection is dead; the worker is not.
                    Ok(Err(_)) => return,
                    Err(_) => {
                        let reply = err_reply("internal error: request panicked");
                        if writeln!(writer, "{reply}")
                            .and_then(|()| writer.flush())
                            .is_err()
                        {
                            return;
                        }
                    }
                }
                last_complete = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick; a partial line stays buffered. A client
                // that dribbles bytes without ever finishing a request —
                // the slow-loris shape — is cut off at the idle limit so
                // it cannot pin a pool worker forever.
                if last_complete.elapsed() >= shared.limits.idle_timeout {
                    let _ = writeln!(
                        writer,
                        "{}",
                        err_reply("idle timeout: no complete request within the limit")
                    );
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

enum ConnectionFate {
    Keep,
    Close,
}

/// Parses one request line, writes the reply line(s), and says whether the
/// connection stays open. `VOLUME` is the one verb that also *reads*: its
/// corpus lines stream in on `reader` right behind the request line.
///
/// The inline verbs (`STATS`, `QUIT`, `SHUTDOWN`) and streaming `VOLUME`
/// are handled here; every worker verb goes through [`execute_line`], the
/// execution core both transports share.
fn respond(
    request: &str,
    shared: &Arc<Shared>,
    scratch: &mut Scratch,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    clock: &RequestClock,
) -> io::Result<ConnectionFate> {
    let mut tokens = request.split_whitespace();
    let verb = tokens.next().unwrap_or_default().to_ascii_uppercase();
    match verb.as_str() {
        "VOLUME" => volume_reply(&mut tokens, shared, reader, writer)?,
        "STATS" => writeln!(writer, "{}", stats_reply(shared))?,
        "QUIT" => {
            writeln!(writer, "OK BYE")?;
            writer.flush()?;
            return Ok(ConnectionFate::Close);
        }
        "SHUTDOWN" => {
            writeln!(writer, "OK BYE")?;
            writer.flush()?;
            begin_shutdown(shared);
            return Ok(ConnectionFate::Close);
        }
        _ => {
            let mut out = Vec::new();
            execute_line(request, shared, scratch, clock, &mut out);
            writer.write_all(&out)?;
        }
    }
    writer.flush()?;
    Ok(ConnectionFate::Keep)
}

/// Appends one complete protocol line (newline-terminated) to a reply
/// buffer.
pub(crate) fn push_line(out: &mut Vec<u8>, line: &str) {
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
}

/// Executes one **worker verb** request line — `LOAD`, `RELOAD`, `DIAG`,
/// `BATCH`, the env-gated `PANIC` test hook, or an unknown verb —
/// appending the complete reply line(s) to `out`.
///
/// This is the execution core both transports share: the threaded backend
/// buffers through it before writing, and the reactor's workers call it
/// once per pipelined request. The caller routes the inline verbs
/// (`STATS`, `QUIT`, `SHUTDOWN`) and the corpus-reading `VOLUME` verb, so
/// they never reach here. `PANIC` really panics — containment is the
/// caller's `catch_unwind`.
pub(crate) fn execute_line(
    request: &str,
    shared: &Arc<Shared>,
    scratch: &mut Scratch,
    clock: &RequestClock,
    out: &mut Vec<u8>,
) {
    let mut tokens = request.split_whitespace();
    let verb = tokens.next().unwrap_or_default().to_ascii_uppercase();
    match verb.as_str() {
        "LOAD" => {
            let reply = match (tokens.next(), tokens.next(), tokens.next()) {
                (Some(name), Some(path), None) => load_reply(name, path, shared),
                _ => err_reply("usage: LOAD <name> <path>"),
            };
            push_line(out, &reply);
        }
        "RELOAD" => {
            let reply = match (tokens.next(), tokens.next()) {
                (Some(name), None) => reload_reply(name, shared),
                _ => err_reply("usage: RELOAD <name>"),
            };
            push_line(out, &reply);
        }
        "DIAG" => {
            let reply = match (tokens.next(), tokens.next(), tokens.next()) {
                (Some(name), Some(obs), None) => diag_reply(name, obs, shared, scratch, clock),
                _ => err_reply("usage: DIAG <dict> <observation>"),
            };
            push_line(out, &reply);
        }
        "BATCH" => match tokens.next() {
            Some(name) => {
                let observations: Vec<&str> = tokens.collect();
                if observations.is_empty() {
                    // An empty batch is a malformed request, not zero work:
                    // replying `OK BATCH 0` would hide a truncated datalog.
                    push_line(
                        out,
                        &err_reply("empty batch: BATCH needs at least one observation"),
                    );
                } else {
                    push_line(out, &format!("OK BATCH {}", observations.len()));
                    for (index, obs) in observations.iter().enumerate() {
                        // The counted-lines contract holds even when the
                        // request deadline expires mid-batch: remaining
                        // items get explicit `ERR deadline` result lines,
                        // never a truncated reply.
                        let reply = if clock.expired() {
                            err_reply("deadline: request budget exhausted before this item")
                        } else {
                            diag_reply(name, obs, shared, scratch, clock)
                        };
                        push_line(out, &format!("{index} {reply}"));
                    }
                }
            }
            None => push_line(out, &err_reply("usage: BATCH <dict> <obs>...")),
        },
        // Test hook: deliberately panics a worker mid-request so the
        // panic-containment path is exercisable end-to-end. Inert unless
        // the operator opts in via the environment.
        "PANIC" if std::env::var_os("SDD_SERVE_TEST_PANIC").is_some() => {
            panic!("PANIC requested with SDD_SERVE_TEST_PANIC set");
        }
        other => {
            push_line(out, &err_reply(&format!("unknown command {other:?}")));
        }
    }
}

/// Formats the complete `OK STATS ...` reply line — registry snapshot,
/// traffic counters, transport counters, and per-dictionary residency.
pub(crate) fn stats_reply(shared: &Shared) -> String {
    let stats = shared.registry.stats();
    let mut reply = format!(
        "OK STATS workers={} dicts={} bytes={} mapped={} cap={} requests={} diags={} evictions={} busy={} partial={} active={} backend={} accepted={} wakeups={} backpressure_stalls={} pipelined={}",
        shared.workers,
        stats.dicts,
        stats.bytes,
        stats.mapped,
        shared.registry.cap,
        shared.requests.load(Ordering::Relaxed),
        shared.diagnoses.load(Ordering::Relaxed),
        stats.evictions,
        shared.busy.load(Ordering::Relaxed),
        shared.partial.load(Ordering::Relaxed),
        shared.active.load(Ordering::SeqCst),
        shared.backend,
        shared.accepted.load(Ordering::Relaxed),
        shared.wakeups.load(Ordering::Relaxed),
        shared.backpressure_stalls.load(Ordering::Relaxed),
        shared.pipelined.load(Ordering::Relaxed),
    );
    if stats.total_shards > 0 {
        reply.push_str(&format!(
            " shards={}/{}",
            stats.resident_shards, stats.total_shards
        ));
    }
    for entry in &stats.entries {
        reply.push_str(&format!(
            " dict={}:{}:{}us:mode={}:mapped={}",
            entry.name, entry.bytes, entry.load_us, entry.mode, entry.mapped
        ));
        for (index, shard) in entry.shards.iter().enumerate() {
            reply.push_str(&format!(
                " shard={}.{index}:{}:{}",
                entry.name, shard.status, shard.bytes
            ));
        }
    }
    reply
}

pub(crate) fn err_reply(message: &str) -> String {
    // Replies are single lines; scrub any newline an error message carries.
    format!("ERR {}", message.replace('\n', " "))
}

fn load_reply(name: &str, path: &str, shared: &Arc<Shared>) -> String {
    let start = Instant::now();
    // `read_dictionary_bytes` validates the header-declared payload length
    // against the actual file length *before* buffering or mapping, so a
    // corrupt header claiming a huge payload cannot make the server
    // allocate it, and a truncated file can never SIGBUS a mapped read.
    let bytes = match sdd_store::read_dictionary_bytes(path, shared.mmap) {
        Ok(bytes) => bytes,
        Err(e) => return err_reply(&e.to_string()),
    };
    if sdd_store::is_manifest(&bytes) {
        // A shard manifest registers the set without touching any shard
        // file — shards load lazily on the first DIAG that needs them,
        // inheriting the server's byte-ownership mode.
        return match ShardedReader::open_with(path, shared.mmap) {
            Ok(reader) => {
                let m = reader.manifest();
                let (kind, faults, tests, shards) =
                    (m.kind.name(), m.faults, m.tests, reader.shard_count());
                let load_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let resident = shared.registry.insert_manifest(name, reader, load_us);
                shared.registry.record_path(name, path);
                format!(
                    "OK LOADED {name} kind={kind} faults={faults} tests={tests} bytes={resident} load_us={load_us} shards={shards}"
                )
            }
            Err(e) => err_reply(&e.to_string()),
        };
    }
    if bytes.is_mapped() && sdd_store::is_binary(&bytes) {
        // Mapped load: checksum the image now (faulting every page, so
        // corruption surfaces at LOAD exactly as in owned mode) but defer
        // the decode to the first DIAG. The registry keeps the mapping;
        // resident decoded bytes are 0 until a request warms the entry.
        return match SddbReader::open(&bytes) {
            Ok(reader) => {
                let (kind, faults, tests) = (reader.kind().name(), reader.faults(), reader.tests());
                let mapped = bytes.len();
                let load_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let resident = shared.registry.insert_image(name, bytes, load_us);
                shared.registry.record_path(name, path);
                format!(
                    "OK LOADED {name} kind={kind} faults={faults} tests={tests} bytes={resident} load_us={load_us} mode=mapped mapped={mapped}"
                )
            }
            Err(e) => err_reply(&e.to_string()),
        };
    }
    let dictionary = if sdd_store::is_binary(&bytes) {
        sdd_store::decode(&bytes)
    } else {
        sdd_store::read_same_different_auto(&bytes).map(StoredDictionary::SameDifferent)
    };
    match dictionary {
        Ok(d) => {
            let kind = d.kind().name();
            let (faults, tests) = (d.fault_count(), d.test_count());
            let load_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            let resident = shared.registry.insert(name, d, load_us);
            shared.registry.record_path(name, path);
            format!(
                "OK LOADED {name} kind={kind} faults={faults} tests={tests} bytes={resident} load_us={load_us}"
            )
        }
        Err(e) => err_reply(&e.to_string()),
    }
}

/// Re-opens the artifact a dictionary was loaded from — the post-patch
/// refresh path. A sharded entry keeps every resident shard whose manifest
/// record is byte-for-byte unchanged (only patched shards go cold); a
/// whole dictionary is simply re-loaded through [`load_reply`].
fn reload_reply(name: &str, shared: &Arc<Shared>) -> String {
    let Some(path) = shared.registry.source_path(name) else {
        return err_reply(&format!(
            "unknown dictionary {name:?}: RELOAD needs a prior LOAD"
        ));
    };
    let start = Instant::now();
    let bytes = match sdd_store::read_dictionary_bytes(&path, MmapMode::Off) {
        Ok(bytes) => bytes,
        Err(e) => return err_reply(&e.to_string()),
    };
    if sdd_store::is_manifest(&bytes) {
        return match ShardedReader::open_with(&path, shared.mmap) {
            Ok(reader) => {
                let m = reader.manifest();
                let (kind, faults, tests, shards) =
                    (m.kind.name(), m.faults, m.tests, reader.shard_count());
                let load_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                let kept = shared.registry.reload_manifest(name, reader, load_us);
                format!(
                    "OK RELOADED {name} kind={kind} faults={faults} tests={tests} shards={shards} kept={kept} load_us={load_us}"
                )
            }
            Err(e) => err_reply(&e.to_string()),
        };
    }
    // Whole files replace their entry outright: the artifact was rewritten
    // atomically as one image, so there is no sibling to keep.
    let reply = load_reply(name, &path, shared);
    match reply.strip_prefix("OK LOADED") {
        Some(rest) => format!("OK RELOADED{rest} kept=0"),
        None => reply,
    }
}

fn diag_reply(
    name: &str,
    obs: &str,
    shared: &Arc<Shared>,
    scratch: &mut Scratch,
    clock: &RequestClock,
) -> String {
    match shared.registry.get(name) {
        Fetched::Whole(dictionary) => {
            shared.diagnoses.fetch_add(1, Ordering::Relaxed);
            match diagnose(&dictionary, obs, scratch) {
                Ok(reply) => reply,
                Err(e) => err_reply(&e.to_string()),
            }
        }
        Fetched::WholeCold(image) => {
            shared.diagnoses.fetch_add(1, Ordering::Relaxed);
            match fetch_whole(name, &image, shared)
                .and_then(|dictionary| diagnose(&dictionary, obs, scratch))
            {
                Ok(reply) => reply,
                Err(e) => err_reply(&e.to_string()),
            }
        }
        Fetched::Sharded(reader) => {
            shared.diagnoses.fetch_add(1, Ordering::Relaxed);
            match diagnose_sharded_reply(name, &reader, obs, shared, scratch, clock) {
                Ok(reply) => reply,
                Err(e) => err_reply(&e.to_string()),
            }
        }
        Fetched::Missing => err_reply(&format!("no dictionary loaded as {name:?}")),
    }
}

/// Fetches one shard: the resident copy when warm, else loads the shard
/// file (I/O outside the registry lock) and makes it resident. Under a
/// mapped mode the shard's image rides along into the registry slot, so
/// evicting the slot later is the `munmap`.
fn fetch_shard(
    name: &str,
    reader: &Arc<ShardedReader>,
    index: usize,
    shared: &Arc<Shared>,
) -> Result<Arc<StoredDictionary>, SddError> {
    if let Some(dictionary) = shared.registry.resident_shard(name, index) {
        return Ok(dictionary);
    }
    let (image, dictionary) = reader.load_shard_with_image(index)?;
    Ok(shared
        .registry
        .insert_shard(name, reader, index, dictionary, image))
}

/// Decodes a cold image-backed whole dictionary and makes the decoded form
/// resident — the warm-up path behind [`Fetched::WholeCold`]. The image
/// was checksummed at `LOAD`; `revalidate` re-checks the mapped file's
/// length first so an in-place truncation since then surfaces as a typed
/// [`SddError::Truncated`], never a fault on a vanished page.
fn fetch_whole(
    name: &str,
    image: &DictBytes,
    shared: &Arc<Shared>,
) -> Result<Arc<StoredDictionary>, SddError> {
    image.revalidate()?;
    let dictionary = sdd_store::decode(image.as_slice())?;
    Ok(shared.registry.insert_decoded(name, dictionary))
}

/// Do two cone bitmaps share an output?
fn cone_intersects(a: &BitVec, b: &BitVec) -> bool {
    a.as_words().zip(b.as_words()).any(|(x, y)| x & y != 0)
}

/// The typed failure when *no* shard of a sharded dictionary could serve a
/// request — degradation has nothing left to degrade to.
fn all_shards_failed(count: usize, last: Option<SddError>) -> SddError {
    match last {
        Some(e) => SddError::invalid(format!("all {count} shards unavailable; last error: {e}")),
        None => SddError::invalid(format!(
            "request deadline exceeded before any of {count} shards loaded"
        )),
    }
}

/// Diagnoses against a sharded dictionary: loads shards lazily in
/// cone-priority order, scores *every available* shard (cones only order
/// loading — see the module docs), and merges the rankings into the same
/// reply the unsharded dictionary would produce.
///
/// Availability is where degradation enters: a shard that is missing,
/// corrupt, or cut off by the request deadline is dropped from the merge
/// and recorded, and the reply verdict becomes `PARTIAL` with
/// `covered=<faults>/<total>` and a `degraded=<shard>:<reason>,...` list.
/// Because [`shard::diagnose_sharded`] merges any consistent shard subset,
/// the degraded ranking is bit-identical to diagnosing the explicit
/// sub-dictionary of the shards that did load.
fn diagnose_sharded_reply(
    name: &str,
    reader: &Arc<ShardedReader>,
    obs: &str,
    shared: &Arc<Shared>,
    scratch: &mut Scratch,
    clock: &RequestClock,
) -> Result<String, SddError> {
    let manifest = reader.manifest();
    let count = reader.shard_count();
    // Parse once, in the shape the manifest kind expects.
    let signature: Option<MaskedBitVec> = match manifest.kind {
        sdd_store::DictionaryKind::PassFail => Some(obs.parse()?),
        _ => {
            parse_responses(obs, &mut scratch.responses)?;
            None
        }
    };
    // Per-shard fate this request: a shard that fails is probed once and
    // remembered, not retried by every later step.
    let mut failures: Vec<Option<&'static str>> = vec![None; count];
    let mut last_error: Option<SddError> = None;
    // Cone-priority order: load shards whose recorded cone intersects the
    // observation's failing outputs first. Pass/fail observations carry no
    // per-output information, so they keep index order.
    let mut order: Vec<usize> = (0..count).collect();
    if signature.is_none() {
        // Failing outputs need one reference dictionary (shards share
        // per-test output dimensions); prefer a warm shard, else the first
        // cold one that still loads.
        let mut reference = (0..count).find_map(|i| shared.registry.resident_shard(name, i));
        if reference.is_none() {
            for (index, failure) in failures.iter_mut().enumerate() {
                match fetch_shard(name, reader, index, shared) {
                    Ok(d) => {
                        reference = Some(d);
                        break;
                    }
                    Err(e) => {
                        *failure = Some(error_token(&e));
                        last_error = Some(e);
                    }
                }
            }
        }
        let Some(reference) = reference else {
            return Err(all_shards_failed(count, last_error));
        };
        let failing = shard::failing_outputs(&reference, &scratch.responses)?;
        if failing.any() {
            order.sort_by_key(|&i| (!cone_intersects(&manifest.shards[i].cone, &failing), i));
        }
    }
    let mut fetched: Vec<(usize, Arc<StoredDictionary>)> = Vec::with_capacity(count);
    for index in order {
        if failures[index].is_some() {
            continue;
        }
        let fault_start = manifest.shards[index].fault_start;
        if clock.expired() {
            // Out of time: shards already resident still join the merge (a
            // registry hit is a lock and a clone, not I/O); cold shards
            // become degraded coverage instead of a blown deadline.
            match shared.registry.resident_shard(name, index) {
                Some(d) => fetched.push((fault_start, d)),
                None => failures[index] = Some("deadline"),
            }
            continue;
        }
        match fetch_shard(name, reader, index, shared) {
            Ok(d) => fetched.push((fault_start, d)),
            Err(e) => {
                failures[index] = Some(error_token(&e));
                last_error = Some(e);
            }
        }
    }
    if fetched.is_empty() {
        return Err(all_shards_failed(count, last_error));
    }
    fetched.sort_unstable_by_key(|&(fault_start, _)| fault_start);
    let shards: Vec<(usize, &StoredDictionary)> = fetched
        .iter()
        .map(|(fault_start, d)| (*fault_start, d.as_ref()))
        .collect();
    let observation = match &signature {
        Some(signature) => ShardObservation::Signature(signature),
        None => ShardObservation::Responses(&scratch.responses),
    };
    let report = shard::diagnose_sharded(&shards, observation)?;
    let fields = report_fields(report.quality, report.known, &report.ranking);
    let degraded: Vec<String> = failures
        .iter()
        .enumerate()
        .filter_map(|(index, failure)| failure.map(|reason| format!("{index}:{reason}")))
        .collect();
    if degraded.is_empty() {
        return Ok(format!("OK DIAG {fields}"));
    }
    shared.partial.fetch_add(1, Ordering::Relaxed);
    let covered: usize = fetched.iter().map(|(_, d)| d.fault_count()).sum();
    Ok(format!(
        "PARTIAL DIAG {fields} covered={covered}/{total} degraded={}",
        degraded.join(","),
        total = manifest.faults,
    ))
}

/// Corpus lines of an in-flight `VOLUME` request, pulled from the
/// connection under the same poll/idle discipline as request lines: a
/// partial line stays buffered across poll ticks, a shutdown or stall
/// mid-corpus surfaces as a transport error — which aborts the request and
/// the connection, never wedges the worker.
struct WireLines<'a> {
    reader: &'a mut BufReader<TcpStream>,
    shared: &'a Shared,
    remaining: usize,
    line: String,
    last_line: Instant,
}

impl<'a> WireLines<'a> {
    fn new(reader: &'a mut BufReader<TcpStream>, shared: &'a Shared, count: usize) -> Self {
        Self {
            reader,
            shared,
            remaining: count,
            line: String::new(),
            last_line: Instant::now(),
        }
    }
}

impl Iterator for WireLines<'_> {
    type Item = io::Result<String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        loop {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                return Some(Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "server shutting down mid-corpus",
                )));
            }
            match self.reader.read_line(&mut self.line) {
                Ok(0) => {
                    return Some(Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "client closed mid-corpus",
                    )))
                }
                Ok(_) => {
                    self.remaining -= 1;
                    self.last_line = Instant::now();
                    let text = self.line.trim_end_matches(['\r', '\n']).to_owned();
                    self.line.clear();
                    return Some(Ok(text));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Poll tick; any partial line stays buffered in `line`.
                    if self.last_line.elapsed() >= self.shared.limits.idle_timeout {
                        return Some(Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "idle timeout mid-corpus",
                        )));
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// The serve-side [`ShardSource`]: shards fetch lazily through the LRU
/// registry, so a warm shard costs a registry hit and a cold one loads
/// (and may evict elsewhere) — exactly the `DIAG` economics, applied per
/// device. Cones come from the manifest's per-shard records.
struct RegistrySource<'a> {
    name: &'a str,
    reader: Arc<ShardedReader>,
    shared: &'a Arc<Shared>,
}

impl ShardSource for RegistrySource<'_> {
    fn kind(&self) -> DictionaryKind {
        self.reader.manifest().kind
    }
    fn tests(&self) -> usize {
        self.reader.manifest().tests
    }
    fn outputs(&self) -> usize {
        self.reader.manifest().outputs
    }
    fn fault_count(&self) -> usize {
        self.reader.manifest().faults
    }
    fn shard_count(&self) -> usize {
        self.reader.shard_count()
    }
    fn fault_start(&self, shard: usize) -> usize {
        self.reader.manifest().shards[shard].fault_start
    }
    fn fetch(&self, shard: usize) -> Result<Arc<StoredDictionary>, FetchError> {
        fetch_shard(self.name, &self.reader, shard, self.shared).map_err(|e| FetchError::from(&e))
    }
    fn resident(&self, shard: usize) -> Option<Arc<StoredDictionary>> {
        self.shared.registry.resident_shard(self.name, shard)
    }
    fn fault_cone(&self, fault: usize) -> Option<&BitVec> {
        let shards = &self.reader.manifest().shards;
        // Shards tile the fault list in ascending order: the owning shard
        // is the last one starting at or before `fault`.
        let index = shards
            .partition_point(|s| s.fault_start <= fault)
            .checked_sub(1)?;
        Some(&shards[index].cone)
    }
}

/// Serves one `VOLUME` request: reads the counted corpus lines off the
/// connection and streams them through [`sdd_volume::run`] against the
/// named dictionary. The reply is `OK VOLUME <lines>`, one
/// verdict-prefixed JSON record per corpus record, then
/// `OK SUMMARY <json>` — stripping the verdict tokens recovers the exact
/// JSONL report the `sdd volume` CLI writes for the same corpus.
///
/// A request that fails *after* the count is known (unknown dictionary,
/// bad option) still drains its corpus lines before the `ERR` reply, so
/// the line protocol stays in sync for the next request.
/// The usage line both `VOLUME` executors reply with on a malformed header.
pub(crate) const VOLUME_USAGE: &str =
    "usage: VOLUME <dict> <lines> [seed=N] [threshold=F] [budget_ms=N]";

/// The `VOLUME` defaults for this server: the per-device budget (not
/// per-request — a corpus is long-running by design) starts from the
/// configured request deadline.
pub(crate) fn default_volume_options(shared: &Shared) -> VolumeOptions {
    VolumeOptions {
        budget: shared
            .limits
            .request_deadline
            .map_or_else(Budget::unlimited, Budget::deadline),
        ..VolumeOptions::default()
    }
}

/// Applies one `key=value` option token of a `VOLUME` request; `false`
/// means the token is unknown or unparsable (an `ERR bad option` to the
/// caller).
pub(crate) fn apply_volume_option(options: &mut VolumeOptions, token: &str) -> bool {
    match token.split_once('=') {
        Some(("seed", v)) => v.parse().map(|seed| options.seed = seed).is_ok(),
        Some(("threshold", v)) => v.parse().map(|t| options.threshold = t).is_ok(),
        Some(("budget_ms", v)) => v
            .parse()
            .map(|ms| options.budget = Budget::deadline(Duration::from_millis(ms)))
            .is_ok(),
        _ => false,
    }
}

fn volume_reply(
    tokens: &mut std::str::SplitWhitespace<'_>,
    shared: &Arc<Shared>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) -> io::Result<()> {
    let (name, count) = match (tokens.next(), tokens.next().map(str::parse::<usize>)) {
        (Some(name), Some(Ok(count))) => (name, count),
        _ => return writeln!(writer, "{}", err_reply(VOLUME_USAGE)),
    };
    // Drains the already-promised corpus lines, then reports the failure.
    let drain = |reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, reply: String| {
        for line in WireLines::new(reader, shared, count) {
            line?;
        }
        writeln!(writer, "{reply}")
    };
    let mut options = default_volume_options(shared);
    for token in tokens {
        if !apply_volume_option(&mut options, token) {
            return drain(reader, writer, err_reply(&format!("bad option {token:?}")));
        }
    }
    let source: Box<dyn ShardSource + '_> = match shared.registry.get(name) {
        Fetched::Whole(dictionary) => Box::new(WholeSource::from_arc(dictionary)),
        Fetched::WholeCold(image) => match fetch_whole(name, &image, shared) {
            Ok(dictionary) => Box::new(WholeSource::from_arc(dictionary)),
            Err(e) => return drain(reader, writer, err_reply(&e.to_string())),
        },
        Fetched::Sharded(shard_reader) => Box::new(RegistrySource {
            name,
            reader: shard_reader,
            shared,
        }),
        Fetched::Missing => {
            return drain(
                reader,
                writer,
                err_reply(&format!("no dictionary loaded as {name:?}")),
            )
        }
    };
    writeln!(writer, "OK VOLUME {count}")?;
    let mut lines = WireLines::new(reader, shared, count);
    let mut buffered = io::BufWriter::new(&mut *writer);
    let summary = sdd_volume::run(
        source.as_ref(),
        &mut lines,
        &mut WireSink(&mut buffered),
        &options,
    )?;
    buffered.flush()?;
    drop(buffered);
    shared
        .diagnoses
        .fetch_add(summary.devices as u64, Ordering::Relaxed);
    shared
        .partial
        .fetch_add(summary.partial as u64, Ordering::Relaxed);
    Ok(())
}

/// Executes one `VOLUME` request whose corpus lines were already buffered
/// off the wire — the reactor path, where the event loop collects the
/// counted lines and a worker runs the engine — appending the complete
/// framed reply to `out`.
///
/// Wire bytes match the threaded streaming path exactly: a failure after
/// the count was known (bad option, unknown dictionary) has consumed the
/// corpus and yields a single `ERR` line, success yields
/// `OK VOLUME <n>`, the verdict-prefixed records, and `OK SUMMARY`.
pub(crate) fn execute_volume(
    request: &str,
    corpus: Vec<String>,
    shared: &Arc<Shared>,
    out: &mut Vec<u8>,
) {
    let mut tokens = request.split_whitespace();
    let _verb = tokens.next();
    let (name, count) = match (tokens.next(), tokens.next().map(str::parse::<usize>)) {
        (Some(name), Some(Ok(count))) => (name, count),
        // The reactor answers malformed headers inline and never buffers a
        // corpus for them; this arm is a defensive byte-identical fallback.
        _ => return push_line(out, &err_reply(VOLUME_USAGE)),
    };
    let mut options = default_volume_options(shared);
    for token in tokens {
        if !apply_volume_option(&mut options, token) {
            return push_line(out, &err_reply(&format!("bad option {token:?}")));
        }
    }
    let source: Box<dyn ShardSource + '_> = match shared.registry.get(name) {
        Fetched::Whole(dictionary) => Box::new(WholeSource::from_arc(dictionary)),
        Fetched::WholeCold(image) => match fetch_whole(name, &image, shared) {
            Ok(dictionary) => Box::new(WholeSource::from_arc(dictionary)),
            Err(e) => return push_line(out, &err_reply(&e.to_string())),
        },
        Fetched::Sharded(shard_reader) => Box::new(RegistrySource {
            name,
            reader: shard_reader,
            shared,
        }),
        Fetched::Missing => {
            return push_line(
                out,
                &err_reply(&format!("no dictionary loaded as {name:?}")),
            );
        }
    };
    push_line(out, &format!("OK VOLUME {count}"));
    let mut lines = corpus
        .into_iter()
        .map(|line| -> io::Result<String> { Ok(line) });
    // The engine's only I/O is the in-memory corpus and sink, so `run`
    // cannot fail here; the `ERR` arm keeps the contract visible anyway.
    match sdd_volume::run(
        source.as_ref(),
        &mut lines,
        &mut WireSink(&mut *out),
        &options,
    ) {
        Ok(summary) => {
            shared
                .diagnoses
                .fetch_add(summary.devices as u64, Ordering::Relaxed);
            shared
                .partial
                .fetch_add(summary.partial as u64, Ordering::Relaxed);
        }
        Err(e) => push_line(out, &err_reply(&e.to_string())),
    }
}

/// Routes one observation through the masked-diagnosis ladder of the named
/// dictionary kind, reusing the worker's scratch buffers.
fn diagnose(
    dictionary: &StoredDictionary,
    obs: &str,
    scratch: &mut Scratch,
) -> Result<String, SddError> {
    match dictionary {
        StoredDictionary::PassFail(d) => {
            let observed: MaskedBitVec = obs.parse()?;
            let (quality, known) =
                match_signatures_masked_into(d.signatures(), &observed, &mut scratch.ranking)?;
            Ok(format_report(quality, known, &scratch.ranking))
        }
        StoredDictionary::SameDifferent(d) => {
            parse_responses(obs, &mut scratch.responses)?;
            let observed = d.encode_observed_masked(&scratch.responses)?;
            let (quality, known) =
                match_signatures_masked_into(d.signatures(), &observed, &mut scratch.ranking)?;
            Ok(format_report(quality, known, &scratch.ranking))
        }
        StoredDictionary::Full(d) => {
            parse_responses(obs, &mut scratch.responses)?;
            let report = d.diagnose_masked(&scratch.responses)?;
            Ok(format_report(report.quality, report.known, &report.ranking))
        }
    }
}

/// Parses `01X/1X0/...` into the reusable per-test response buffer.
fn parse_responses(obs: &str, responses: &mut Vec<MaskedBitVec>) -> Result<(), SddError> {
    responses.clear();
    for token in obs.split('/') {
        responses.push(token.parse()?);
    }
    Ok(())
}

/// Formats the shared field tail of a diagnosis reply:
/// `quality=<q> known=<b> distance=<d> best=<i,j> top=<f:miss:conf,...>`.
/// The caller prepends the verdict (`OK DIAG` or `PARTIAL DIAG`).
fn report_fields(quality: MatchQuality, known: usize, ranking: &[ScoredCandidate]) -> String {
    let distance = ranking.first().map_or(0, |c| c.mismatches);
    let best: Vec<String> = ranking
        .iter()
        .take_while(|c| c.mismatches == distance)
        .map(|c| c.fault.to_string())
        .collect();
    let top: Vec<String> = ranking
        .iter()
        .take(TOP_CANDIDATES)
        .map(|c| format!("{}:{}:{:.4}", c.fault, c.mismatches, c.confidence))
        .collect();
    format!(
        "quality={} known={known} distance={distance} best={} top={}",
        quality_name(quality),
        best.join(","),
        top.join(","),
    )
}

/// Formats a complete-evidence ranked diagnosis as a single `OK DIAG` line.
fn format_report(quality: MatchQuality, known: usize, ranking: &[ScoredCandidate]) -> String {
    format!("OK DIAG {}", report_fields(quality, known, ranking))
}

/// A minimal blocking client for the line protocol — what the smoke tests,
/// examples, and one-off scripts drive the server with.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        Ok(Self {
            reader: BufReader::new(TcpStream::connect(addr)?),
        })
    }

    fn send(&mut self, request: &str) -> io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(request.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()
    }

    fn receive(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    /// Sends one request line and reads one reply line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, including the server closing mid-reply.
    pub fn request(&mut self, request: &str) -> io::Result<String> {
        self.send(request)?;
        self.receive()
    }

    /// Sends a `BATCH` request and reads the counted multi-line reply,
    /// returning one result line per observation.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a non-`OK BATCH` first line comes back as
    /// [`io::ErrorKind::InvalidData`] carrying the server's reply.
    pub fn batch(&mut self, dictionary: &str, observations: &[&str]) -> io::Result<Vec<String>> {
        self.send(&format!("BATCH {dictionary} {}", observations.join(" ")))?;
        let head = self.receive()?;
        let count: usize = head
            .strip_prefix("OK BATCH ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, head.clone()))?;
        (0..count).map(|_| self.receive()).collect()
    }

    /// Streams `corpus` through the serve `VOLUME` verb and returns the
    /// reply lines: one verdict-prefixed JSON record per corpus record,
    /// closed by the `OK SUMMARY <json>` line (always the last element).
    /// `options` is the raw option tail (e.g. `"seed=7 threshold=0.05"`),
    /// or empty.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a non-`OK VOLUME` header comes back as
    /// [`io::ErrorKind::InvalidData`] carrying the server's reply.
    pub fn volume(
        &mut self,
        dictionary: &str,
        corpus: &[&str],
        options: &str,
    ) -> io::Result<Vec<String>> {
        let mut payload = format!("VOLUME {dictionary} {}", corpus.len());
        if !options.is_empty() {
            payload.push(' ');
            payload.push_str(options);
        }
        payload.push('\n');
        for line in corpus {
            payload.push_str(line);
            payload.push('\n');
        }
        let stream = self.reader.get_mut();
        stream.write_all(payload.as_bytes())?;
        stream.flush()?;
        let head = self.receive()?;
        if head.strip_prefix("OK VOLUME ").is_none() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, head));
        }
        let mut lines = Vec::new();
        loop {
            let line = self.receive()?;
            let done = line.starts_with("OK SUMMARY ");
            lines.push(line);
            if done {
                return Ok(lines);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::PassFailDictionary;

    fn pf() -> StoredDictionary {
        StoredDictionary::PassFail(PassFailDictionary::build(
            &sdd_core::example::paper_example(),
        ))
    }

    fn is_whole(fetched: &Fetched) -> bool {
        matches!(fetched, Fetched::Whole(_))
    }

    #[test]
    fn registry_evicts_least_recently_used_under_cap() {
        let one = pf().approx_bytes();
        let registry = Registry::new(2 * one);
        registry.insert("a", pf(), 11);
        registry.insert("b", pf(), 22);
        assert!(is_whole(&registry.get("a")), "a is now most recently used");
        registry.insert("c", pf(), 33); // over cap: evicts b, the LRU entry
        let stats = registry.stats();
        assert_eq!((stats.dicts, stats.evictions), (2, 1));
        assert!(stats.bytes <= 2 * one);
        let summary: Vec<(&str, usize, u64)> = stats
            .entries
            .iter()
            .map(|e| (e.name.as_str(), e.bytes, e.load_us))
            .collect();
        assert_eq!(
            summary,
            vec![("a", one, 11), ("c", one, 33)],
            "per-dictionary stats are sorted by name and keep load times"
        );
        assert!(
            matches!(registry.get("b"), Fetched::Missing),
            "b was evicted"
        );
        assert!(is_whole(&registry.get("a")) && is_whole(&registry.get("c")));
    }

    #[test]
    fn registry_admits_an_oversized_dictionary_alone() {
        let registry = Registry::new(1); // cap smaller than any dictionary
        registry.insert("big", pf(), 0);
        let stats = registry.stats();
        assert_eq!(
            (stats.dicts, stats.evictions),
            (1, 0),
            "sole entry is never evicted"
        );
        registry.insert("bigger", pf(), 0);
        let stats = registry.stats();
        assert_eq!(
            (stats.dicts, stats.evictions),
            (1, 1),
            "previous entry made room"
        );
    }

    #[test]
    fn replacing_a_dictionary_does_not_leak_accounting() {
        let one = pf().approx_bytes();
        let registry = Registry::new(10 * one);
        registry.insert("a", pf(), 5);
        registry.insert("a", pf(), 7);
        let stats = registry.stats();
        assert_eq!((stats.dicts, stats.bytes, stats.evictions), (1, one, 0));
        assert_eq!(
            stats.entries[0].load_us, 7,
            "reload refreshes the load time"
        );
    }

    #[test]
    fn poisoned_registry_lock_recovers() {
        let registry = Arc::new(Registry::new(64 << 20));
        registry.insert("a", pf(), 1);
        let poisoner = Arc::clone(&registry);
        // Panic while holding the registry lock, the way a crashing worker
        // mid-insert would.
        let result = thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(result.is_err(), "the poisoning thread panicked");
        assert!(registry.inner.is_poisoned(), "the mutex really is poisoned");
        // Every entry point must keep working.
        assert!(is_whole(&registry.get("a")));
        registry.insert("b", pf(), 2);
        let stats = registry.stats();
        assert_eq!(stats.dicts, 2);
    }

    #[test]
    fn shard_slots_evict_at_shard_granularity() {
        let dir = std::env::temp_dir().join(format!("sdd-serve-shard-lru-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest_path = dir.join("paper.sddm");
        sdd_store::write_sharded(&manifest_path, &pf(), &[0..2, 2..4], None).unwrap();
        let reader = Arc::new(ShardedReader::open(&manifest_path).unwrap());
        let b0 = reader.load_shard(0).unwrap().approx_bytes();
        let b1 = reader.load_shard(1).unwrap().approx_bytes();

        // Cap fits one shard but not both.
        let registry = Registry::new(b0.max(b1));
        registry.insert_manifest("paper", ShardedReader::open(&manifest_path).unwrap(), 9);
        let stats = registry.stats();
        assert_eq!((stats.resident_shards, stats.total_shards), (0, 2));
        assert_eq!(stats.bytes, 0, "a cold manifest costs nothing");
        assert_eq!(stats.entries[0].shards[0].status, "cold");

        let d0 = reader.load_shard(0).unwrap();
        registry.insert_shard("paper", &reader, 0, d0, DictBytes::Owned(Vec::new()));
        let stats = registry.stats();
        assert_eq!((stats.resident_shards, stats.evictions), (1, 0));

        // Loading the second shard evicts the first — shard granularity,
        // not the whole entry.
        let d1 = reader.load_shard(1).unwrap();
        registry.insert_shard("paper", &reader, 1, d1, DictBytes::Owned(Vec::new()));
        let stats = registry.stats();
        assert_eq!((stats.resident_shards, stats.total_shards), (1, 2));
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries[0].shards[0].status, "evicted");
        assert_eq!(stats.entries[0].shards[1].status, "resident");
        assert!(registry.resident_shard("paper", 0).is_none());
        assert!(registry.resident_shard("paper", 1).is_some());
        assert!(
            matches!(registry.get("paper"), Fetched::Sharded(_)),
            "the entry itself survives shard eviction"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diagnose_formats_the_ladder() {
        let mut scratch = Scratch::default();
        let d = pf();
        let reply = diagnose(&d, "01", &mut scratch).unwrap();
        assert!(reply.starts_with("OK DIAG quality=exact"), "{reply}");
        assert!(reply.contains("best=0"), "{reply}");
        let reply = diagnose(&d, "0X", &mut scratch).unwrap();
        assert!(reply.contains("quality=consistent"), "{reply}");
        // Width mismatch is an ERR-able typed error, not a panic.
        assert!(diagnose(&d, "011", &mut scratch).is_err());
    }
}
