//! End-to-end pipeline tests on the embedded c17 benchmark: netlist →
//! faults → ATPG → simulation → dictionaries → diagnosis.

use same_different::atpg::AtpgOptions;
use same_different::dict::diagnose::{observed_responses, two_phase_diagnose};
use same_different::dict::{
    replace_baselines, select_baselines, FullDictionary, PassFailDictionary, Procedure1Options,
    SameDifferentDictionary,
};
use same_different::logic::BitVec;
use same_different::Experiment;

fn exhaustive_tests() -> Vec<BitVec> {
    (0u32..32)
        .map(|w| (0..5).map(|i| w >> i & 1 == 1).collect())
        .collect()
}

#[test]
fn c17_dictionaries_on_exhaustive_tests() {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let matrix = exp.simulate(&exhaustive_tests());

    let full = FullDictionary::new(matrix.clone());
    assert_eq!(
        full.indistinguished_pairs(),
        0,
        "collapsed c17 faults are pairwise distinguishable"
    );

    let pf = PassFailDictionary::build(&matrix);
    let selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 10,
            ..Procedure1Options::default()
        },
    );
    let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);
    assert!(sd.indistinguished_pairs() <= pf.indistinguished_pairs());
    assert_eq!(
        sd.indistinguished_pairs(),
        0,
        "32 tests give the s/d dictionary room to reach full resolution"
    );
}

#[test]
fn c17_diagnostic_set_pipeline() {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&AtpgOptions::default());
    let matrix = exp.simulate(&tests.tests);

    // The diagnostic set reaches the exhaustive full-dictionary bound.
    assert_eq!(matrix.full_partition().indistinguished_pairs(), 0);

    // Sizes obey the paper's formulas and ordering.
    let pf = PassFailDictionary::build(&matrix);
    let sd = SameDifferentDictionary::with_fault_free_baselines(&matrix);
    let full = FullDictionary::new(matrix.clone());
    assert!(pf.size_bits() < sd.size_bits());
    assert!(sd.size_bits() < full.size_bits());
    assert_eq!(
        sd.size_bits() - pf.size_bits(),
        matrix.test_count() as u64 * matrix.output_count() as u64
    );
}

#[test]
fn every_injected_fault_is_diagnosed_by_every_dictionary() {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exhaustive_tests();
    let matrix = exp.simulate(&tests);

    let pf = PassFailDictionary::build(&matrix);
    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 5,
            ..Procedure1Options::default()
        },
    );
    replace_baselines(&matrix, &mut selection.baselines);
    let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);
    let full = FullDictionary::new(matrix.clone());

    for (pos, &id) in exp.faults().iter().enumerate() {
        let fault = exp.universe().fault(id);
        let observed = observed_responses(exp.circuit(), exp.view(), fault, &tests);
        let observed_pf: BitVec = observed
            .iter()
            .enumerate()
            .map(|(t, r)| r != matrix.good_response(t))
            .collect();

        assert!(
            pf.diagnose(&observed_pf)
                .unwrap()
                .candidates()
                .contains(&pos),
            "pass/fail misses {}",
            fault.describe(exp.circuit())
        );
        assert!(
            sd.diagnose(&observed).unwrap().candidates().contains(&pos),
            "same/different misses {}",
            fault.describe(exp.circuit())
        );
        let report = full.diagnose(&observed).unwrap();
        assert_eq!(report.exact, vec![pos], "full dictionary is exact on c17");

        let ranked = two_phase_diagnose(
            exp.circuit(),
            exp.view(),
            exp.universe(),
            exp.faults(),
            &tests,
            &observed,
            &sd,
        )
        .unwrap();
        assert_eq!(ranked[0].0, id, "two-phase ranks the culprit first");
        assert_eq!(ranked[0].1, 0);
    }
}

#[test]
fn same_different_diagnosis_is_never_coarser_than_its_partition() {
    // Any fault's diagnosis candidate set under the s/d dictionary is
    // exactly its signature-equality class.
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exhaustive_tests();
    let matrix = exp.simulate(&tests);
    let selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 5,
            ..Procedure1Options::default()
        },
    );
    let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);
    let partition = sd.partition();
    for pos in 0..exp.faults().len() {
        let fault = exp.universe().fault(exp.faults()[pos]);
        let observed = observed_responses(exp.circuit(), exp.view(), fault, &tests);
        let report = sd.diagnose(&observed).unwrap();
        let expected: Vec<usize> = (0..exp.faults().len())
            .filter(|&other| partition.group_of(other) == partition.group_of(pos))
            .collect();
        assert_eq!(report.exact, expected, "fault position {pos}");
    }
}
