//! Determinism of parallel dictionary construction: for a fixed seed,
//! building with `jobs=4` must be *bit-identical* to building with
//! `jobs=1` — same baselines, same figure of merit, and byte-for-byte the
//! same `.sddb` encoding. Parallelism is an implementation detail, never
//! an observable one.

use same_different::dict::{
    replace_baselines, select_baselines, Procedure1Options, SameDifferentDictionary,
};
use same_different::store::{encode, StoredDictionary};
use same_different::Experiment;

/// Selects baselines on `matrix` at the given job count, runs Procedure 2,
/// and returns everything an observer could compare: the selection, its
/// figure of merit, the consumed restarts, and the dictionary's `.sddb`
/// bytes.
fn build(
    matrix: &same_different::sim::ResponseMatrix,
    seed: u64,
    jobs: usize,
) -> (Vec<u32>, u64, usize, Vec<u8>) {
    let selection = select_baselines(
        matrix,
        &Procedure1Options {
            calls1: 5,
            seed,
            jobs,
            ..Procedure1Options::default()
        },
    );
    let mut baselines = selection.baselines.clone();
    replace_baselines(matrix, &mut baselines);
    let bytes = encode(&StoredDictionary::SameDifferent(
        SameDifferentDictionary::build(matrix, &baselines),
    ))
    .unwrap();
    (
        selection.baselines,
        selection.indistinguished_pairs,
        selection.calls,
        bytes,
    )
}

#[test]
fn paper_example_is_identical_serial_and_parallel() {
    let matrix = same_different::dict::example::paper_example();
    for seed in [0, 1, 42] {
        let serial = build(&matrix, seed, 1);
        let parallel = build(&matrix, seed, 4);
        assert_eq!(serial, parallel, "seed {seed}");
    }
}

#[test]
fn generated_circuit_is_identical_serial_and_parallel() {
    let exp = Experiment::iscas89("s298", 7).unwrap();
    let tests = exp.diagnostic_tests(&Default::default());

    // The response matrices themselves must compare equal for any fan-out.
    let matrix = exp.simulate_jobs(&tests.tests, 1);
    for jobs in [2, 4] {
        assert_eq!(exp.simulate_jobs(&tests.tests, jobs), matrix, "jobs {jobs}");
    }

    // And so must everything built on top of them, down to the stored bytes.
    let serial = build(&matrix, 7, 1);
    let parallel = build(&matrix, 7, 4);
    assert_eq!(serial, parallel);
    assert!(!serial.3.is_empty());
}
