//! The ECO patching contract: `patch_dictionary` applied to a built
//! artifact yields files **bit-identical** (modulo the patch-generation
//! provenance counter) to a from-scratch rebuild of the modified netlist
//! with the same baselines — for whole `.sddb` files, sharded `.sddm`
//! sets, and memory-mapped reads — and a patch interrupted between the
//! shard commits and the manifest commit is invisible to readers.

use same_different::dict::{
    replace_baselines, select_baselines, Procedure1Options, SameDifferentDictionary,
};
use same_different::logic::BitVec;
use same_different::netlist::{library, Circuit, Driver};
use same_different::patch::{patch_dictionary, PatchOptions, PatchReport};
use same_different::serve::{serve, Client, ServeConfig};
use same_different::sim::{reference, OutputCones};
use same_different::store::{self, MmapMode, ShardedReader, StoredDictionary};
use same_different::Experiment;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdd-eco-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Rewires `gate`'s pin `pin` to `source`, keeping the gate kind.
fn rewire(
    circuit: &Circuit,
    gate: same_different::netlist::NetId,
    pin: usize,
    source: same_different::netlist::NetId,
) -> Circuit {
    let Driver::Gate { kind, inputs } = circuit.driver(gate) else {
        panic!("not a gate");
    };
    let mut inputs = inputs.clone();
    inputs[pin] = source;
    circuit
        .with_driver(
            gate,
            Driver::Gate {
                kind: *kind,
                inputs,
            },
        )
        .unwrap()
}

/// A patch-compatible ECO on c17: swap which of N11/N16 feeds N19 and
/// N23. Both nets keep fan-out 2, so the branch-fault universe and the
/// structural collapsing are unchanged while the function moves.
fn rewired_c17(old: &Circuit) -> Circuit {
    let step = rewire(old, old.net("N19").unwrap(), 0, old.net("N16").unwrap());
    rewire(&step, old.net("N23").unwrap(), 0, old.net("N11").unwrap())
}

/// Finds a patch-compatible rewire ECO on an arbitrary circuit: a gate
/// pin fed by a fan-out-≥3 net, rewired to a different fan-out-≥2
/// input/flip-flop net. Both nets keep fan-out > 1 on every sink, so the
/// branch-fault universe — and with unchanged gate kinds, the structural
/// collapsing — is preserved while the function changes.
fn find_rewire(circuit: &Circuit) -> Circuit {
    let fanout = circuit.fanout_counts();
    let sources: Vec<_> = circuit
        .nets()
        .filter(|&net| {
            fanout[net.index()] >= 2
                && matches!(circuit.driver(net), Driver::Input | Driver::Dff { .. })
        })
        .collect();
    for gate in circuit.nets() {
        let Driver::Gate { inputs, .. } = circuit.driver(gate) else {
            continue;
        };
        for (pin, &old_source) in inputs.iter().enumerate() {
            if fanout[old_source.index()] < 3 {
                continue;
            }
            if let Some(&new_source) = sources
                .iter()
                .find(|&&s| s != old_source && !inputs.contains(&s))
            {
                return rewire(circuit, gate, pin, new_source);
            }
        }
    }
    panic!("no patch-compatible rewire found");
}

/// The build flow's baseline policy, as `sdd dictionary` runs it.
fn build_sd(exp: &Experiment, tests: &[BitVec]) -> SameDifferentDictionary {
    let matrix = exp.simulate(tests);
    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 2,
            ..Default::default()
        },
    );
    replace_baselines(&matrix, &mut selection.baselines);
    SameDifferentDictionary::build(&matrix, &selection.baselines)
}

/// Reads the same/different dictionary back out of a whole artifact.
fn load_sd(path: &Path, mode: MmapMode) -> SameDifferentDictionary {
    let bytes = store::read_dictionary_bytes(path, mode).unwrap();
    store::read_same_different_auto(&bytes).unwrap()
}

/// Reassembles a sharded artifact into one dictionary, global fault order.
fn load_sharded_sd(manifest: &Path, mode: MmapMode) -> SameDifferentDictionary {
    let reader = ShardedReader::open_with(manifest, mode).unwrap();
    let mut signatures = Vec::new();
    let mut baselines = Vec::new();
    let mut classes = Vec::new();
    for index in 0..reader.shard_count() {
        let StoredDictionary::SameDifferent(shard) = reader.load_shard(index).unwrap() else {
            panic!("wrong shard kind");
        };
        if index == 0 {
            baselines = (0..shard.test_count())
                .map(|t| shard.baseline(t).clone())
                .collect();
            classes = shard.baseline_classes().to_vec();
        }
        for fault in 0..shard.fault_count() {
            signatures.push(shard.signature(fault).clone());
        }
    }
    let outputs = reader.manifest().outputs;
    SameDifferentDictionary::from_parts(signatures, baselines, classes, outputs).unwrap()
}

/// The rebuild the patch claims to match: the new circuit's full matrix
/// under the *patched* artifact's baselines. (Untouched tests keep their
/// original class labels — valid because their columns are invariant —
/// and touched tests carry the labels the budgeted refresh picked.)
fn rebuild_target(
    new: &Circuit,
    tests: &[BitVec],
    patched: &SameDifferentDictionary,
) -> SameDifferentDictionary {
    let matrix = Experiment::new(new.clone()).simulate(tests);
    SameDifferentDictionary::build(&matrix, patched.baseline_classes())
}

fn assert_identical_bytes(patched_path: &Path, target: &SameDifferentDictionary) {
    let patched_bytes = std::fs::read(patched_path).unwrap();
    let rebuilt_bytes = store::encode(&StoredDictionary::SameDifferent(target.clone())).unwrap();
    assert_eq!(
        store::strip_patch_provenance(&patched_bytes).unwrap(),
        store::strip_patch_provenance(&rebuilt_bytes).unwrap(),
        "patched artifact bytes differ from a from-scratch rebuild"
    );
}

fn patch(old: &Circuit, new: &Circuit, tests: &[BitVec], artifact: &Path) -> PatchReport {
    patch_dictionary(old, new, tests, artifact, &PatchOptions::default()).unwrap()
}

#[test]
fn whole_artifact_patch_is_bit_identical_to_a_rebuild() {
    let dir = scratch_dir("whole");
    let old = library::c17();
    let new = rewired_c17(&old);
    let exp = Experiment::new(old.clone());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let path = dir.join("c17.sddb");
    store::save(
        &path,
        &StoredDictionary::SameDifferent(build_sd(&exp, &tests)),
    )
    .unwrap();

    let report = patch(&old, &new, &tests, &path);
    assert!(report.touched_tests > 0, "ECO must move the function");
    assert!(report.stats.changed());
    assert_eq!(report.stats.generation, 1);

    let patched = load_sd(&path, MmapMode::Off);
    let target = rebuild_target(&new, &tests, &patched);
    assert_eq!(patched, target);
    assert_eq!(
        report.indistinguished_pairs,
        Some(target.indistinguished_pairs())
    );
    assert_identical_bytes(&path, &target);
    // The mmap read path sees the same dictionary.
    assert_eq!(load_sd(&path, MmapMode::On), target);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_patch_matches_the_whole_patch_on_s298() {
    let dir = scratch_dir("sharded");
    let exp = Experiment::iscas89("s298", 0).unwrap();
    let old = exp.circuit().clone();
    let new = find_rewire(&old);
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let dictionary = build_sd(&exp, &tests);
    let whole = StoredDictionary::SameDifferent(dictionary);

    let whole_path = dir.join("s298.sddb");
    store::save(&whole_path, &whole).unwrap();
    let manifest_path = dir.join("s298.sddm");
    let cones = OutputCones::compute(&old, exp.view());
    let ranges = cones.shard_ranges(exp.universe(), exp.faults(), 3);
    let shard_cones: Vec<BitVec> = ranges
        .iter()
        .map(|r| cones.shard_cone(exp.universe(), exp.faults(), r.clone()))
        .collect();
    store::write_sharded(&manifest_path, &whole, &ranges, Some(&shard_cones)).unwrap();

    let whole_report = patch(&old, &new, &tests, &whole_path);
    let sharded_report = patch(&old, &new, &tests, &manifest_path);
    assert!(whole_report.touched_tests > 0);
    assert_eq!(sharded_report.touched_tests, whole_report.touched_tests);
    assert_eq!(
        sharded_report.indistinguished_pairs,
        whole_report.indistinguished_pairs
    );

    // Identical dictionaries through every read path, and both equal the
    // from-scratch rebuild.
    let patched = load_sd(&whole_path, MmapMode::Off);
    let target = rebuild_target(&new, &tests, &patched);
    assert_eq!(patched, target);
    assert_identical_bytes(&whole_path, &target);
    for mode in [MmapMode::Off, MmapMode::On] {
        assert_eq!(load_sharded_sd(&manifest_path, mode), target);
    }
    assert!(store::verify_file(&manifest_path).unwrap().healthy());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_reload_after_patch_keeps_clean_shards_and_reranks() {
    let dir = scratch_dir("serve");
    let old = library::c17();
    let new = rewired_c17(&old);
    let exp = Experiment::new(old.clone());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let dictionary = build_sd(&exp, &tests);
    let whole = StoredDictionary::SameDifferent(dictionary);

    let manifest_path = dir.join("c17.sddm");
    let cones = OutputCones::compute(&old, exp.view());
    let ranges = cones.shard_ranges(exp.universe(), exp.faults(), 2);
    store::write_sharded(&manifest_path, &whole, &ranges, None).unwrap();
    let whole_path = dir.join("c17.sddb");
    store::save(&whole_path, &whole).unwrap();

    let handle = serve(&ServeConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client
        .request(&format!("LOAD eco {}", manifest_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED eco "), "{reply}");

    // Warm every shard so RELOAD has resident state to carry over.
    let exp_new = Experiment::new(new.clone());
    let observations: Vec<String> = (0..exp.faults().len())
        .map(|position| {
            let fault = exp_new.universe().fault(exp_new.faults()[position]);
            tests
                .iter()
                .map(|t| {
                    reference::faulty_response(exp_new.circuit(), exp_new.view(), fault, t)
                        .to_string()
                })
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    client
        .request(&format!("DIAG eco {}", observations[0]))
        .unwrap();

    // Patch both artifacts on disk behind the server's back.
    let before: Vec<String> = ShardedReader::open(&manifest_path)
        .unwrap()
        .manifest()
        .shards
        .iter()
        .map(|s| s.file.clone())
        .collect();
    patch(&old, &new, &tests, &manifest_path);
    patch(&old, &new, &tests, &whole_path);
    let after: Vec<String> = ShardedReader::open(&manifest_path)
        .unwrap()
        .manifest()
        .shards
        .iter()
        .map(|s| s.file.clone())
        .collect();
    let unchanged = before.iter().zip(&after).filter(|(b, a)| b == a).count();

    // RELOAD picks up the patched manifest, keeping exactly the shards
    // whose files the patch left alone.
    let reply = client.request("RELOAD eco").unwrap();
    assert!(reply.starts_with("OK RELOADED eco "), "{reply}");
    assert!(reply.contains(" shards=2 "), "{reply}");
    assert!(reply.contains(&format!(" kept={unchanged} ")), "{reply}");

    // After the reload, DIAG against the patched shards is byte-identical
    // to DIAG against the patched whole artifact.
    let reply = client
        .request(&format!("LOAD patched {}", whole_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED patched "), "{reply}");
    for observation in &observations {
        let sharded = client.request(&format!("DIAG eco {observation}")).unwrap();
        let whole = client
            .request(&format!("DIAG patched {observation}"))
            .unwrap();
        assert!(sharded.starts_with("OK DIAG "), "{sharded}");
        assert_eq!(sharded, whole);
    }

    // RELOAD of a never-loaded name is a one-line error, not a hang.
    let reply = client.request("RELOAD ghost").unwrap();
    assert!(reply.starts_with("ERR "), "{reply}");

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_before_the_manifest_commit_is_invisible_to_readers() {
    let dir = scratch_dir("crash");
    let old = library::c17();
    let new = rewired_c17(&old);
    let exp = Experiment::new(old.clone());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let whole = StoredDictionary::SameDifferent(build_sd(&exp, &tests));

    let manifest_path = dir.join("c17.sddm");
    store::write_sharded(&manifest_path, &whole, &[0..10, 10..22], None).unwrap();
    let original = load_sharded_sd(&manifest_path, MmapMode::Off);

    // Run the same patch to completion in a sibling directory to learn
    // what the commit will write.
    let done = dir.join("done");
    std::fs::create_dir_all(&done).unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_file() {
            std::fs::copy(&path, done.join(path.file_name().unwrap())).unwrap();
        }
    }
    let report = patch(&old, &new, &tests, &done.join("c17.sddm"));
    assert!(report.stats.files_rewritten > 0);
    let patched = load_sharded_sd(&done.join("c17.sddm"), MmapMode::Off);

    // Crash state A: new-generation shards landed, manifest commit never
    // happened. The old manifest still names the old files — readers see
    // the original artifact; the `.p1` files are inert orphans.
    for entry in std::fs::read_dir(&done).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if name.contains(".p1.") {
            std::fs::copy(&path, dir.join(&name)).unwrap();
        }
    }
    assert_eq!(load_sharded_sd(&manifest_path, MmapMode::Off), original);
    assert!(store::verify_file(&manifest_path).unwrap().healthy());

    // Crash state B: on top of that, the manifest rewrite tore at any
    // boundary of its staging sibling. Still the original artifact.
    let new_manifest = std::fs::read(done.join("c17.sddm")).unwrap();
    let mut cuts: Vec<usize> = (0..new_manifest.len()).step_by(64).collect();
    cuts.push(new_manifest.len().saturating_sub(1));
    for cut in cuts {
        std::fs::write(store::temp_sibling(&manifest_path), &new_manifest[..cut]).unwrap();
        assert_eq!(
            load_sharded_sd(&manifest_path, MmapMode::Off),
            original,
            "torn manifest temp at {cut} leaked into readers"
        );
    }
    std::fs::remove_file(store::temp_sibling(&manifest_path)).unwrap();

    // Re-running the interrupted patch converges to the committed result.
    patch(&old, &new, &tests, &manifest_path);
    assert_eq!(load_sharded_sd(&manifest_path, MmapMode::Off), patched);
    let _ = std::fs::remove_dir_all(&dir);
}
