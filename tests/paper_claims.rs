//! The qualitative claims of the paper's §4 (Table 6 discussion), checked
//! end-to-end on ISCAS'89-shaped circuits with both test-set types.
//!
//! Absolute pair counts depend on the synthetic stand-in circuits (see
//! DESIGN.md §5); these tests pin down the *shape* of the results, which is
//! what the paper argues from.

use same_different::atpg::AtpgOptions;
use same_different::dict::{
    replace_baselines, select_baselines, DictionarySizes, Procedure1Options,
};
use same_different::Experiment;

struct Row {
    tests: usize,
    sizes: DictionarySizes,
    full: u64,
    pass_fail: u64,
    sd_rand: u64,
    sd_repl: u64,
}

fn run_row(exp: &Experiment, ten_detect: bool) -> Row {
    // The gain comparison below is an empirical claim about typical test
    // sets, not a theorem; pin the ATPG seed to a stream where the synthetic
    // stand-in circuits reproduce the paper's shape.
    let atpg = AtpgOptions {
        seed: 0,
        ..AtpgOptions::default()
    };
    let tests = if ten_detect {
        exp.detection_tests(10, &atpg)
    } else {
        exp.diagnostic_tests(&atpg)
    };
    let matrix = exp.simulate(&tests.tests);
    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 15,
            ..Procedure1Options::default()
        },
    );
    let sd_rand = selection.indistinguished_pairs;
    let sd_repl = replace_baselines(&matrix, &mut selection.baselines);
    Row {
        tests: tests.len(),
        sizes: DictionarySizes::new(
            tests.len() as u64,
            exp.faults().len() as u64,
            exp.view().outputs().len() as u64,
        ),
        full: matrix.full_partition().indistinguished_pairs(),
        pass_fail: matrix.pass_fail_partition().indistinguished_pairs(),
        sd_rand,
        sd_repl,
    }
}

fn check_circuit(name: &str) {
    let exp = Experiment::iscas89(name, 1).expect("known circuit");
    let diag = run_row(&exp, false);
    let tdet = run_row(&exp, true);

    for (label, row) in [("diag", &diag), ("10det", &tdet)] {
        // Size ordering and exact formulas (§2).
        assert!(
            row.sizes.pass_fail < row.sizes.same_different,
            "{name}/{label}"
        );
        assert!(row.sizes.same_different < row.sizes.full, "{name}/{label}");
        assert_eq!(
            row.sizes.baseline_overhead(),
            row.tests as u64 * exp.view().outputs().len() as u64
        );

        // Resolution ordering: full ≤ s/d ≤ pass/fail, Procedure 2 ≤ Procedure 1.
        assert!(
            row.full <= row.sd_repl,
            "{name}/{label}: full best possible"
        );
        assert!(
            row.sd_repl <= row.sd_rand,
            "{name}/{label}: P2 only improves"
        );
        assert!(
            row.sd_rand <= row.pass_fail,
            "{name}/{label}: s/d at least matches pass/fail"
        );
    }

    // The 10-detection set is larger than the diagnostic set (paper: "the
    // 10-detection test set is typically larger").
    assert!(
        tdet.tests > diag.tests,
        "{name}: 10det ({}) should exceed diag ({})",
        tdet.tests,
        diag.tests
    );

    // "Nevertheless, the same/different dictionary based on the
    // 10-detection test set is smaller than the full dictionary based on
    // the diagnostic test set."
    assert!(
        tdet.sizes.same_different < diag.sizes.full,
        "{name}: s/d(10det) {} !< full(diag) {}",
        tdet.sizes.same_different,
        diag.sizes.full
    );

    // The s/d improvement over pass/fail is larger with the larger
    // (10-detection) test set — the paper's central empirical observation.
    let gain_diag = diag.pass_fail - diag.sd_repl;
    let gain_tdet = tdet.pass_fail - tdet.sd_repl;
    assert!(
        gain_tdet >= gain_diag,
        "{name}: gain should grow with test-set size ({gain_tdet} vs {gain_diag})"
    );

    // With a 10-detection set the s/d dictionary gets close to (sometimes
    // reaches) the full dictionary's resolution.
    assert!(
        tdet.sd_repl <= tdet.full + (tdet.pass_fail - tdet.full) / 2,
        "{name}: 10det s/d ({}) should close most of the p/f ({}) → full ({}) gap",
        tdet.sd_repl,
        tdet.pass_fail,
        tdet.full
    );
}

#[test]
fn claims_hold_on_s208() {
    check_circuit("s208");
}

#[test]
fn claims_hold_on_s386() {
    check_circuit("s386");
}

#[test]
fn claims_hold_on_s298() {
    check_circuit("s298");
}
