//! Volume-diagnosis smoke over a sharded s298 fixture: the in-process
//! engine, the `sdd volume` CLI, and the served `VOLUME` verb must produce
//! byte-identical reports for the same seeded corpus; `--jobs` must not
//! change a byte; and the injected systematic faults must come out as the
//! top-ranked clusters, above every random-noise cluster.

use std::path::PathBuf;
use std::process::Command;

use same_different::dict::Procedure1Options;
use same_different::serve::{serve, Client, ServeConfig};
use same_different::store::{self, StoredDictionary};
use same_different::volume::{
    self, JsonlSink, PreloadedShards, SynthSpec, VolumeOptions, VolumeSummary,
};
use same_different::Experiment;
use sdd_logic::BitVec;

/// Diagnoses `fault`'s own clean responses; `(fault, 1)` means the fault is
/// uniquely diagnosable — the right ground truth to inject, because every
/// clean recurrence clusters under its own index.
fn representative(
    stored: &StoredDictionary,
    matrix: &same_different::sim::ResponseMatrix,
    fault: usize,
) -> (usize, usize) {
    use same_different::volume::shard::{diagnose_sharded, ShardObservation};
    let responses: Vec<sdd_logic::MaskedBitVec> = (0..matrix.test_count())
        .map(|t| sdd_logic::MaskedBitVec::from_known(matrix.response(t, matrix.class(t, fault))))
        .collect();
    let report = diagnose_sharded(&[(0, stored)], ShardObservation::Responses(&responses)).unwrap();
    (report.best.first().copied().unwrap_or(0), report.best.len())
}

/// Strips the serve `VOLUME` wire framing back to plain JSONL.
fn strip_frames(lines: &[String]) -> String {
    lines
        .iter()
        .map(|line| {
            let line = line
                .strip_prefix("OK SUMMARY ")
                .or_else(|| line.strip_prefix("OK "))
                .or_else(|| line.strip_prefix("PARTIAL "))
                .or_else(|| line.strip_prefix("ERR "))
                .unwrap_or(line);
            format!("{line}\n")
        })
        .collect()
}

#[test]
fn cli_serve_and_engine_agree_and_rank_systematic_faults_first() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sdd-volume-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Sharded s298 fixture: 3 cone shards behind one manifest.
    let exp = Experiment::iscas89("s298", 1).unwrap();
    let tests = exp.diagnostic_tests(&Default::default());
    let suite = exp.build_dictionaries(
        &tests.tests,
        &Procedure1Options {
            calls1: 2,
            ..Default::default()
        },
    );
    let dictionary = StoredDictionary::SameDifferent(suite.same_different);
    let cones = same_different::sim::OutputCones::compute(exp.circuit(), exp.view());
    let ranges = cones.shard_ranges(exp.universe(), exp.faults(), 3);
    let shard_cones: Vec<BitVec> = ranges
        .iter()
        .map(|r| cones.shard_cone(exp.universe(), exp.faults(), r.clone()))
        .collect();
    let manifest_path = dir.join("s298.sddm");
    store::write_sharded(&manifest_path, &dictionary, &ranges, Some(&shard_cones)).unwrap();

    // An 80-device corpus: two uniquely-diagnosable systematic faults at
    // 25% each, the rest uniform random noise, clean observations.
    let matrix = exp.simulate(&tests.tests);
    let faults = matrix.fault_count();
    let pick = |from: usize, taken: Option<usize>| -> usize {
        (from..faults)
            .chain(0..from)
            .find(|&f| Some(f) != taken && representative(&dictionary, &matrix, f) == (f, 1))
            .expect("s298 has uniquely diagnosable faults")
    };
    let first = pick(faults / 3, None);
    let injected = [first, pick((2 * faults) / 3, Some(first))];
    let spec = SynthSpec {
        devices: 80,
        systematic: injected.iter().map(|&f| (f, 0.25)).collect(),
        mask_rate: 0.0,
        flip_rate: 0.0,
        jsonl_every: 4,
        seed: 11,
    };
    let mut corpus = Vec::new();
    volume::synthesize(&matrix, &spec, &mut corpus).unwrap();
    let corpus_path = dir.join("corpus.txt");
    std::fs::write(&corpus_path, &corpus).unwrap();
    let corpus = String::from_utf8(corpus).unwrap();

    // Surface 1: the in-process engine over the preloaded manifest.
    let source = PreloadedShards::open(&manifest_path).unwrap();
    let options = VolumeOptions {
        seed: 11,
        ..VolumeOptions::default()
    };
    let mut lines = corpus.lines().map(|l| Ok(l.to_owned()));
    let mut engine_report = Vec::new();
    let summary = volume::run(
        &source,
        &mut lines,
        &mut JsonlSink(&mut engine_report),
        &options,
    )
    .unwrap();
    assert_eq!(summary.ok, 80);

    // Surface 2: the real CLI binary, at jobs=1 and jobs=4.
    let cli_report = |jobs: &str, out: &str| -> Vec<u8> {
        let out_path = dir.join(out);
        let status = Command::new(env!("CARGO_BIN_EXE_sdd"))
            .arg("volume")
            .arg(&manifest_path)
            .arg("--corpus")
            .arg(&corpus_path)
            .args(["--jobs", jobs, "--seed", "11"])
            .arg("--report")
            .arg(&out_path)
            .status()
            .expect("run sdd volume");
        assert!(status.success(), "sdd volume --jobs {jobs} failed");
        std::fs::read(&out_path).unwrap()
    };
    let jobs1 = cli_report("1", "report-jobs1.jsonl");
    let jobs4 = cli_report("4", "report-jobs4.jsonl");
    assert_eq!(jobs1, jobs4, "--jobs must not change a report byte");
    assert_eq!(jobs1, engine_report, "CLI and engine reports must agree");

    // Surface 3: the served VOLUME verb, frames stripped.
    let handle = serve(&ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client
        .request(&format!("LOAD vol {}", manifest_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED"), "{reply}");
    let corpus_lines: Vec<&str> = corpus.lines().collect();
    let served = client.volume("vol", &corpus_lines, "seed=11").unwrap();
    assert_eq!(
        strip_frames(&served).into_bytes(),
        engine_report,
        "served VOLUME must equal the CLI report after frame stripping"
    );
    assert_eq!(client.request("SHUTDOWN").unwrap(), "OK BYE");
    handle.wait();

    assert_injected_rank_first(&summary, &injected);
    std::fs::remove_dir_all(&dir).ok();
}

/// The diagnostic claim: both injected faults classify systematic, they are
/// the two top-ranked clusters, and every other cluster sits below them.
fn assert_injected_rank_first(summary: &VolumeSummary, injected: &[usize; 2]) {
    let clusters = &summary.clusters.faults;
    assert!(clusters.len() >= 2, "expected injected + noise clusters");
    let mut top: Vec<usize> = clusters[..2].iter().map(|c| c.fault).collect();
    top.sort_unstable();
    let mut expected = injected.to_vec();
    expected.sort_unstable();
    assert_eq!(
        top, expected,
        "top two clusters must be the injected faults"
    );
    assert!(clusters[0].systematic && clusters[1].systematic);
    for noise in &clusters[2..] {
        assert!(
            noise.count <= clusters[1].count,
            "noise cluster {noise:?} outranks an injected fault"
        );
    }
}
