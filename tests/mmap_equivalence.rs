//! The mmap correctness bar: every verdict byte a server produces with
//! `--mmap on` equals the byte it produces with `--mmap off`, for whole and
//! sharded dictionaries, across `DIAG`, `BATCH`, and `VOLUME` — and
//! `verify` agrees with itself across modes, both in process and through
//! the real `sdd` binary. Residency bookkeeping (`STATS`) is the only
//! thing allowed to differ, and only in the documented `mode=`/`mapped=`
//! tokens.

use std::path::PathBuf;
use std::process::Command;

use same_different::dict::Procedure1Options;
use same_different::serve::{serve, Client, ServeConfig};
use same_different::sim::reference;
use same_different::store::{self, MmapMode, StoredDictionary};
use same_different::volume::{self, SynthSpec};
use same_different::Experiment;

struct Fixture {
    dir: PathBuf,
    exp: Experiment,
    tests: Vec<same_different::logic::BitVec>,
    whole_path: PathBuf,
    manifest_path: PathBuf,
    corpus: String,
}

/// c17 same/different dictionary, saved whole and as a two-shard manifest,
/// plus a small synthesized device corpus.
fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("sdd-mmap-eq-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let suite = exp.build_dictionaries(
        &tests,
        &Procedure1Options {
            calls1: 3,
            ..Default::default()
        },
    );
    let whole = StoredDictionary::SameDifferent(suite.same_different);
    let whole_path = dir.join("c17.sddb");
    store::save(&whole_path, &whole).unwrap();
    let manifest_path = dir.join("c17.sddm");
    let n = whole.fault_count();
    store::write_sharded(&manifest_path, &whole, &[0..n / 2, n / 2..n], None).unwrap();

    let matrix = exp.simulate(&tests);
    let spec = SynthSpec {
        devices: 24,
        systematic: vec![(1, 0.25)],
        mask_rate: 0.1,
        flip_rate: 0.05,
        jsonl_every: 4,
        seed: 5,
    };
    let mut corpus = Vec::new();
    volume::synthesize(&matrix, &spec, &mut corpus).unwrap();
    let corpus = String::from_utf8(corpus).unwrap();

    Fixture {
        dir,
        exp,
        tests,
        whole_path,
        manifest_path,
        corpus,
    }
}

/// The observation a tester would log for `fault`, with every third test's
/// first output bit masked — ternary, slash-separated.
fn observation(f: &Fixture, fault_position: usize) -> String {
    let fault = f.exp.universe().fault(f.exp.faults()[fault_position]);
    let tokens: Vec<String> = f
        .tests
        .iter()
        .enumerate()
        .map(|(t, test)| {
            let response = reference::faulty_response(f.exp.circuit(), f.exp.view(), fault, test);
            let mut token = response.to_string();
            if t % 3 == 0 {
                token.replace_range(0..1, "X");
            }
            token
        })
        .collect();
    tokens.join("/")
}

#[test]
fn served_verdict_bytes_are_identical_across_mmap_modes() {
    if !store::mmap_supported() {
        return; // `--mmap on` is an honest hard error here, not a comparison
    }
    let f = fixture("serve");

    // One live server per mode; each loads the whole file and the manifest.
    let start = |mmap| {
        let handle = serve(&ServeConfig {
            workers: 2,
            mmap,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for (name, path) in [("whole", &f.whole_path), ("sharded", &f.manifest_path)] {
            let reply = client
                .request(&format!("LOAD {name} {}", path.display()))
                .unwrap();
            assert!(reply.starts_with("OK LOADED"), "{reply}");
        }
        (handle, client)
    };
    let (mapped_handle, mut mapped) = start(MmapMode::On);
    let (owned_handle, mut owned) = start(MmapMode::Off);

    // DIAG: every fault's masked observation, against both dictionary
    // shapes, byte for byte.
    for name in ["whole", "sharded"] {
        for fault in 0..f.exp.faults().len() {
            let obs = observation(&f, fault);
            let mapped_reply = mapped.request(&format!("DIAG {name} {obs}")).unwrap();
            let owned_reply = owned.request(&format!("DIAG {name} {obs}")).unwrap();
            assert!(mapped_reply.starts_with("OK DIAG "), "{mapped_reply}");
            assert_eq!(mapped_reply, owned_reply, "{name} fault {fault}");
        }
    }

    // BATCH: counted result lines, byte for byte.
    let obs: Vec<String> = (0..4).map(|fault| observation(&f, fault)).collect();
    let obs_refs: Vec<&str> = obs.iter().map(String::as_str).collect();
    for name in ["whole", "sharded"] {
        assert_eq!(
            mapped.batch(name, &obs_refs).unwrap(),
            owned.batch(name, &obs_refs).unwrap(),
            "{name}"
        );
    }

    // VOLUME: the complete framed reply (records + summary), byte for byte.
    let corpus_lines: Vec<&str> = f.corpus.lines().collect();
    for name in ["whole", "sharded"] {
        assert_eq!(
            mapped.volume(name, &corpus_lines, "seed=5").unwrap(),
            owned.volume(name, &corpus_lines, "seed=5").unwrap(),
            "{name}"
        );
    }

    // Residency is the one permitted difference: the mapped server reports
    // mapped images, the owned server reports none.
    let mapped_stats = mapped.request("STATS").unwrap();
    let owned_stats = owned.request("STATS").unwrap();
    assert!(mapped_stats.contains(" dict=whole:"), "{mapped_stats}");
    assert!(mapped_stats.contains(":mode=mapped:"), "{mapped_stats}");
    assert!(!owned_stats.contains(":mode=mapped:"), "{owned_stats}");
    assert!(owned_stats.contains(" mapped=0 "), "{owned_stats}");

    for (handle, mut client) in [(mapped_handle, mapped), (owned_handle, owned)] {
        assert_eq!(client.request("SHUTDOWN").unwrap(), "OK BYE");
        handle.wait();
    }
    std::fs::remove_dir_all(&f.dir).ok();
}

#[test]
fn verify_and_cli_results_are_identical_across_mmap_modes() {
    let f = fixture("cli");

    // In-process verify: identical reports for whole and sharded artifacts.
    for path in [&f.whole_path, &f.manifest_path] {
        let owned = store::verify_file_with(path, MmapMode::Off).unwrap();
        let mapped = store::verify_file_with(path, MmapMode::Auto).unwrap();
        assert_eq!(owned.healthy(), mapped.healthy());
        assert_eq!(owned.kind, mapped.kind);
        assert_eq!(owned.faults, mapped.faults);
        assert_eq!(owned.covered_faults(), mapped.covered_faults());
        assert!(mapped.healthy(), "{}", path.display());
    }

    // The real binary, both verbs, both modes: stdout of `verify` and the
    // written `volume` report must not differ by a byte.
    let verify_stdout = |mode: &str, path: &PathBuf| -> Vec<u8> {
        let output = Command::new(env!("CARGO_BIN_EXE_sdd"))
            .args(["verify", "--mmap", mode])
            .arg(path)
            .output()
            .expect("run sdd verify");
        assert!(output.status.success(), "sdd verify --mmap {mode} failed");
        output.stdout
    };
    let corpus_path = f.dir.join("corpus.txt");
    std::fs::write(&corpus_path, &f.corpus).unwrap();
    let volume_report = |mode: &str, out: &str| -> Vec<u8> {
        let out_path = f.dir.join(out);
        let status = Command::new(env!("CARGO_BIN_EXE_sdd"))
            .arg("volume")
            .arg(&f.manifest_path)
            .args(["--mmap", mode, "--seed", "5", "--corpus"])
            .arg(&corpus_path)
            .arg("--report")
            .arg(&out_path)
            .status()
            .expect("run sdd volume");
        assert!(status.success(), "sdd volume --mmap {mode} failed");
        std::fs::read(&out_path).unwrap()
    };
    for path in [&f.whole_path, &f.manifest_path] {
        let off = verify_stdout("off", path);
        assert_eq!(off, verify_stdout("auto", path), "{}", path.display());
        if store::mmap_supported() {
            assert_eq!(off, verify_stdout("on", path), "{}", path.display());
        }
    }
    let off = volume_report("off", "report-off.jsonl");
    assert_eq!(off, volume_report("auto", "report-auto.jsonl"));
    if store::mmap_supported() {
        assert_eq!(off, volume_report("on", "report-on.jsonl"));
    }
    std::fs::remove_dir_all(&f.dir).ok();
}
