//! Fault injection for the diagnosis pipeline itself: corrupted tester
//! datalogs must degrade diagnosis gracefully, never crash it.
//!
//! The sweep covers mask rates {0%, 1%, 5%, 20%} on the real c17 benchmark
//! and a generated ISCAS'89-shaped circuit. Because the corruption model
//! draws one uniform per known bit from a fixed seed, the masked bit sets at
//! increasing rates are *nested* — which turns "diagnosis degrades
//! monotonically" from a statistical hope into a deterministic assertion:
//!
//! * the true fault never leaves the candidate set under pure masking or
//!   truncation (lost bits cannot create false mismatches);
//! * the evidence (`known`) never grows as the rate rises;
//! * the candidate set never shrinks as the rate rises.

use std::time::Duration;

use same_different::dict::diagnose::{observed_responses, MatchQuality};
use same_different::dict::{
    replace_baselines, select_baselines, select_baselines_budgeted, Budget, FullDictionary,
    PassFailDictionary, Procedure1Options, SameDifferentDictionary,
};
use same_different::logic::{BitVec, MaskedBitVec};
use same_different::sim::{CorruptionModel, ScanChains};
use same_different::Experiment;

const MASK_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

struct Rig {
    exp: Experiment,
    chains: ScanChains,
    tests: Vec<BitVec>,
    expected: Vec<BitVec>,
    sd: SameDifferentDictionary,
    sd_ff: SameDifferentDictionary,
    pf: PassFailDictionary,
    full: FullDictionary,
}

fn rig(exp: Experiment) -> Rig {
    let chains = ScanChains::balanced(exp.circuit(), 2);
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let matrix = exp.simulate(&tests);
    let expected: Vec<BitVec> = (0..matrix.test_count())
        .map(|t| matrix.good_response(t).clone())
        .collect();
    let mut selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 10,
            ..Procedure1Options::default()
        },
    );
    replace_baselines(&matrix, &mut selection.baselines);
    let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);
    let sd_ff = SameDifferentDictionary::with_fault_free_baselines(&matrix);
    let pf = PassFailDictionary::build(&matrix);
    let full = FullDictionary::new(matrix);
    Rig {
        exp,
        chains,
        tests,
        expected,
        sd,
        sd_ff,
        pf,
        full,
    }
}

fn rigs() -> Vec<Rig> {
    vec![
        rig(Experiment::new(same_different::netlist::library::c17())),
        rig(Experiment::iscas89("s298", 1).expect("known circuit")),
    ]
}

/// A few culprit positions spread over the collapsed fault list.
fn culprits(r: &Rig) -> Vec<usize> {
    let n = r.exp.faults().len();
    vec![0, n / 3, n / 2, n - 1]
}

fn observe(r: &Rig, culprit_pos: usize) -> Vec<BitVec> {
    let fault = r.exp.universe().fault(r.exp.faults()[culprit_pos]);
    observed_responses(r.exp.circuit(), r.exp.view(), fault, &r.tests)
}

/// The ISSUE's core sweep: all three dictionaries, every mask rate, never a
/// panic, the true fault always in the candidate list, monotone degradation.
#[test]
fn masking_sweep_degrades_monotonically_and_keeps_the_culprit() {
    for r in rigs() {
        for culprit_pos in culprits(&r) {
            let observed = observe(&r, culprit_pos);
            let mut prev_sd_best: Vec<usize> = Vec::new();
            let mut prev_sd_known = usize::MAX;
            let mut prev_full_known = usize::MAX;
            let mut prev_full_best: Vec<usize> = Vec::new();
            for rate in MASK_RATES {
                let model = CorruptionModel::clean().with_mask_rate(rate).with_seed(7);
                let masked = model
                    .observe(r.exp.circuit(), &r.chains, &observed, &r.expected)
                    .expect("well-formed inputs");

                // Same/different dictionary.
                let sd_report = r.sd.diagnose_masked(&masked).expect("valid observation");
                assert!(
                    sd_report.candidates().contains(&culprit_pos),
                    "{}: s/d lost the culprit at mask rate {rate}",
                    r.exp.circuit().name()
                );
                assert!(sd_report.known <= prev_sd_known, "evidence grew with noise");
                assert!(
                    prev_sd_best
                        .iter()
                        .all(|c| sd_report.candidates().contains(c)),
                    "candidate set shrank as noise rose"
                );
                prev_sd_known = sd_report.known;
                prev_sd_best = sd_report.candidates().to_vec();

                // Pass/fail dictionary, via the fault-free-baseline encoding.
                let pf_sig = r.sd_ff.encode_observed_masked(&masked).expect("valid");
                let pf_report = r.pf.diagnose_masked(&pf_sig).expect("valid observation");
                assert!(
                    pf_report.candidates().contains(&culprit_pos),
                    "{}: pass/fail lost the culprit at mask rate {rate}",
                    r.exp.circuit().name()
                );

                // Full dictionary.
                let full_report = r.full.diagnose_masked(&masked).expect("valid observation");
                assert!(
                    full_report.candidates().contains(&culprit_pos),
                    "{}: full lost the culprit at mask rate {rate}",
                    r.exp.circuit().name()
                );
                assert!(full_report.known <= prev_full_known);
                assert!(prev_full_best
                    .iter()
                    .all(|c| full_report.candidates().contains(c)));
                prev_full_known = full_report.known;
                prev_full_best = full_report.candidates().to_vec();

                if rate == 0.0 {
                    // Clean data: exact match, distance 0, ranked list led by
                    // the true fault's equivalence class.
                    assert_eq!(sd_report.quality, MatchQuality::Exact);
                    assert_eq!(sd_report.distance(), 0);
                    assert_eq!(full_report.quality, MatchQuality::Exact);
                    assert_eq!(full_report.distance(), 0);
                    assert!(
                        sd_report
                            .ranking
                            .iter()
                            .any(|c| c.fault == culprit_pos && c.mismatches == 0),
                        "true fault missing from the ranked list at 0% noise"
                    );
                }
            }
        }
    }
}

/// Truncated fail memories lose whole tests; what survives is still
/// accurate, so the culprit must stay among the candidates at every cut.
#[test]
fn truncation_sweep_never_evicts_the_culprit() {
    for r in rigs() {
        for culprit_pos in culprits(&r) {
            let observed = observe(&r, culprit_pos);
            let full_len = same_different::sim::FailLog::from_responses(
                r.exp.circuit(),
                &r.chains,
                &observed,
                &r.expected,
            )
            .len();
            for keep in [0, 1, full_len / 2, full_len] {
                let model = CorruptionModel::clean().with_truncation(keep);
                let masked = model
                    .observe(r.exp.circuit(), &r.chains, &observed, &r.expected)
                    .expect("well-formed inputs");
                let report = r.sd.diagnose_masked(&masked).expect("valid observation");
                assert!(
                    report.candidates().contains(&culprit_pos),
                    "{}: culprit lost keeping {keep}/{full_len} fail entries",
                    r.exp.circuit().name()
                );
                let report = r.full.diagnose_masked(&masked).expect("valid observation");
                assert!(report.candidates().contains(&culprit_pos));
            }
        }
    }
}

/// Bit flips can point diagnosis at the wrong fault — but must never crash
/// it, and the report must stay structurally sound.
#[test]
fn flip_sweep_never_panics_and_reports_are_well_formed() {
    for r in rigs() {
        let n = r.exp.faults().len();
        for culprit_pos in culprits(&r) {
            let observed = observe(&r, culprit_pos);
            for rate in MASK_RATES {
                for seed in 0..3 {
                    let model = CorruptionModel::clean()
                        .with_mask_rate(rate / 2.0)
                        .with_flip_rate(rate)
                        .with_truncation(200)
                        .with_seed(seed);
                    let masked = model
                        .observe(r.exp.circuit(), &r.chains, &observed, &r.expected)
                        .expect("well-formed inputs");
                    for report in [
                        r.sd.diagnose_masked(&masked).expect("valid"),
                        r.full.diagnose_masked(&masked).expect("valid"),
                    ] {
                        assert_eq!(report.ranking.len(), n, "ranking covers every fault");
                        assert!(!report.candidates().is_empty());
                        let min = report.distance();
                        assert!(report.ranking.iter().all(|c| c.mismatches >= min));
                        assert!(report
                            .ranking
                            .windows(2)
                            .all(|w| w[0].mismatches <= w[1].mismatches));
                        for c in &report.ranking {
                            assert!(c.confidence > 0.0 && c.confidence < 1.0);
                            assert!(c.mismatches <= c.known);
                        }
                    }
                }
            }
        }
    }
}

/// Malformed observations are errors, not panics, across all entry points.
#[test]
fn misshapen_observations_are_errors_everywhere() {
    let r = rig(Experiment::new(same_different::netlist::library::c17()));
    let wrong_count = vec![MaskedBitVec::unknown(r.expected[0].len())];
    assert!(r.sd.diagnose_masked(&wrong_count).is_err());
    assert!(r.full.diagnose_masked(&wrong_count).is_err());
    let wrong_width: Vec<MaskedBitVec> = r
        .expected
        .iter()
        .map(|e| MaskedBitVec::unknown(e.len() + 1))
        .collect();
    assert!(r.sd.diagnose_masked(&wrong_width).is_err());
    assert!(r.full.diagnose_masked(&wrong_width).is_err());
    let narrow: BitVec = "0".parse().unwrap();
    assert!(r.pf.diagnose(&narrow).is_err());
}

/// The ISSUE's budget acceptance test: Procedure 1 under a zero-duration
/// budget returns a *valid* dictionary — the fault-free-baseline fallback —
/// flagged incomplete.
#[test]
fn zero_budget_procedure1_yields_fault_free_baseline_dictionary() {
    let exp = Experiment::iscas89("s298", 1).expect("known circuit");
    let tests = exp.diagnostic_tests(&Default::default());
    let matrix = exp.simulate(&tests.tests);
    let s = select_baselines_budgeted(
        &matrix,
        &Procedure1Options::default(),
        &Budget::deadline(Duration::ZERO),
    );
    assert!(!s.completed, "a zero budget cannot converge");
    assert_eq!(s.calls, 0);
    assert!(s.baselines.iter().all(|&b| b == 0), "fault-free fallback");
    let sd = SameDifferentDictionary::build(&matrix, &s.baselines);
    let pf = PassFailDictionary::build(&matrix);
    assert_eq!(sd.signatures(), pf.signatures(), "degenerates to pass/fail");
    assert_eq!(s.indistinguished_pairs, pf.indistinguished_pairs());
}

/// Budgets are monotone: more budget never yields a worse dictionary, and
/// an unlimited budget reproduces the unbudgeted procedure exactly.
#[test]
fn budgets_are_monotone_and_unlimited_matches_unbudgeted() {
    let exp = Experiment::iscas89("s298", 1).expect("known circuit");
    let tests = exp.diagnostic_tests(&Default::default());
    let matrix = exp.simulate(&tests.tests);
    let opts = Procedure1Options {
        calls1: 5,
        ..Procedure1Options::default()
    };
    let mut prev = u64::MAX;
    for cap in [0usize, 1, 2, 8] {
        let s = select_baselines_budgeted(&matrix, &opts, &Budget::max_calls(cap));
        assert!(s.calls <= cap);
        assert!(
            s.indistinguished_pairs <= prev,
            "budget {cap} worsened the result"
        );
        prev = s.indistinguished_pairs;
    }
    let unbudgeted = select_baselines(&matrix, &opts);
    let unlimited = select_baselines_budgeted(&matrix, &opts, &Budget::unlimited());
    assert_eq!(unbudgeted, unlimited);
    assert!(unlimited.completed);
}
