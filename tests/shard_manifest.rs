//! Corruption tests for the `.sddm` shard manifest: every damage mode a
//! tester-floor file transfer can inflict surfaces as its distinct typed
//! error, mirroring the `.sddb` coverage in `store_roundtrip.rs`.

use same_different::dict::Procedure1Options;
use same_different::logic::SddError;
use same_different::store::{
    self, format, slice_dictionary, write_sharded, ShardManifest, ShardedReader, StoredDictionary,
    MANIFEST_HEADER_LEN,
};
use same_different::Experiment;

/// Builds the c17 same/different dictionary and writes it as a two-shard
/// manifest in a fresh temp dir; returns the dir, manifest path, and the
/// unsharded dictionary.
fn fixture(tag: &str) -> (std::path::PathBuf, std::path::PathBuf, StoredDictionary) {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&Default::default());
    let suite = exp.build_dictionaries(
        &tests.tests,
        &Procedure1Options {
            calls1: 3,
            ..Default::default()
        },
    );
    let whole = StoredDictionary::SameDifferent(suite.same_different);
    let dir = std::env::temp_dir().join(format!("sdd-manifest-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let manifest_path = dir.join("c17.sddm");
    let n = whole.fault_count();
    write_sharded(&manifest_path, &whole, &[0..n / 2, n / 2..n], None).unwrap();
    (dir, manifest_path, whole)
}

/// Recomputes the header checksum after a deliberate header patch, so the
/// test reaches the validation step it targets instead of tripping the
/// checksum first.
fn reseal_header(bytes: &mut [u8]) {
    let checksum = format::fnv1a64(&bytes[..56]);
    bytes[56..64].copy_from_slice(&checksum.to_le_bytes());
}

#[test]
fn sharded_files_round_trip_through_the_reader() {
    let (dir, manifest_path, whole) = fixture("roundtrip");
    let reader = ShardedReader::open(&manifest_path).unwrap();
    assert_eq!(reader.shard_count(), 2);
    assert_eq!(reader.manifest().faults, whole.fault_count());
    for (index, record) in reader.manifest().shards.iter().enumerate() {
        let shard = reader.load_shard(index).unwrap();
        assert_eq!(
            shard,
            slice_dictionary(&whole, record.fault_range()).unwrap()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_manifest_is_a_typed_truncation_error() {
    let (dir, manifest_path, _) = fixture("truncated");
    let bytes = std::fs::read(&manifest_path).unwrap();
    assert!(matches!(
        ShardManifest::decode(&bytes[..MANIFEST_HEADER_LEN / 2]),
        Err(SddError::Truncated {
            context: "shard manifest header",
            ..
        })
    ));
    // Cut mid-record: the header survives but a shard record does not.
    assert!(matches!(
        ShardManifest::decode(&bytes[..bytes.len() - 3]),
        Err(SddError::ChecksumMismatch { .. } | SddError::Truncated { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_shard_payload_is_a_checksum_error() {
    let (dir, manifest_path, _) = fixture("payload");
    let reader = ShardedReader::open(&manifest_path).unwrap();
    let shard_path = dir.join(&reader.manifest().shards[1].file);
    let mut bytes = std::fs::read(&shard_path).unwrap();
    let mid = bytes.len() - 5;
    bytes[mid] ^= 0x04;
    std::fs::write(&shard_path, &bytes).unwrap();
    assert!(reader.load_shard(0).is_ok(), "shard 0 is untouched");
    assert!(matches!(
        reader.load_shard(1),
        Err(SddError::ChecksumMismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skew_is_an_unsupported_version_error() {
    let (dir, manifest_path, _) = fixture("version");
    let pristine = std::fs::read(&manifest_path).unwrap();

    // A newer manifest layout this build does not know.
    let mut bytes = pristine.clone();
    let bumped = (store::MANIFEST_VERSION + 1).to_le_bytes();
    bytes[4..6].copy_from_slice(&bumped);
    reseal_header(&mut bytes);
    assert!(matches!(
        ShardManifest::decode(&bytes),
        Err(SddError::UnsupportedVersion {
            supported: store::MANIFEST_VERSION,
            ..
        })
    ));

    // Shards written by a newer `.sddb` format than this build reads.
    let mut bytes = pristine;
    let bumped = (store::VERSION + 1).to_le_bytes();
    bytes[8..10].copy_from_slice(&bumped);
    reseal_header(&mut bytes);
    assert!(matches!(
        ShardManifest::decode(&bytes),
        Err(SddError::UnsupportedVersion {
            supported: store::VERSION,
            ..
        })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_shard_count_is_a_typed_empty_error() {
    let (dir, manifest_path, _) = fixture("empty");
    let bytes = std::fs::read(&manifest_path).unwrap();
    let mut bytes = bytes[..MANIFEST_HEADER_LEN].to_vec();
    bytes[40..48].copy_from_slice(&0u64.to_le_bytes());
    reseal_header(&mut bytes);
    assert!(matches!(
        ShardManifest::decode(&bytes),
        Err(SddError::Empty {
            context: "shard manifest"
        })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_corruption_surfaces_identically_under_mmap() {
    use store::MmapMode;

    let (dir, manifest_path, whole) = fixture("mmap");
    let owned = ShardedReader::open_with(&manifest_path, MmapMode::Off).unwrap();
    let mapped = ShardedReader::open_with(&manifest_path, MmapMode::On).unwrap();
    assert!(!owned.mode().wants_map());
    assert_eq!(mapped.mode().wants_map(), store::mmap_supported());

    // Healthy shards load byte-identically through both modes.
    for index in 0..owned.shard_count() {
        if store::mmap_supported() {
            assert_eq!(
                owned.load_shard(index).unwrap(),
                mapped.load_shard(index).unwrap()
            );
        }
        owned.check_shard(index).unwrap();
    }
    assert_eq!(
        owned.load_shard(0).unwrap().fault_count() * 2,
        whole.fault_count()
    );

    // Damage shard 1 three ways; each typed error must match across modes.
    let shard_path = dir.join(&owned.manifest().shards[1].file);
    let pristine = std::fs::read(&shard_path).unwrap();
    let shard_error = |reader: &ShardedReader| reader.load_shard(1).expect_err("damaged shard");

    // Truncation below the header-declared length: refused before mapping.
    std::fs::write(&shard_path, &pristine[..pristine.len() - 3]).unwrap();
    let owned_err = shard_error(&owned);
    assert!(
        matches!(owned_err, SddError::Truncated { .. }),
        "{owned_err}"
    );
    if store::mmap_supported() {
        assert_eq!(owned_err.to_string(), shard_error(&mapped).to_string());
    }

    // Payload flip: both modes checksum the same bytes.
    let mut bytes = pristine.clone();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x10;
    std::fs::write(&shard_path, &bytes).unwrap();
    let owned_err = shard_error(&owned);
    assert!(
        matches!(owned_err, SddError::ChecksumMismatch { .. }),
        "{owned_err}"
    );
    if store::mmap_supported() {
        assert_eq!(owned_err.to_string(), shard_error(&mapped).to_string());
    }

    // Version bump (header resealed): rejected at the pre-map header read.
    let mut bytes = pristine.clone();
    bytes[4..6].copy_from_slice(&(store::VERSION + 1).to_le_bytes());
    reseal_header(&mut bytes);
    std::fs::write(&shard_path, &bytes).unwrap();
    let owned_err = shard_error(&owned);
    assert!(
        matches!(owned_err, SddError::UnsupportedVersion { .. }),
        "{owned_err}"
    );
    if store::mmap_supported() {
        assert_eq!(owned_err.to_string(), shard_error(&mapped).to_string());
        // check_shard (the verify path) sees the same typed error.
        assert!(matches!(
            mapped.check_shard(1),
            Err(SddError::UnsupportedVersion { .. })
        ));
    }

    // Restoring the shard restores both modes.
    std::fs::write(&shard_path, &pristine).unwrap();
    owned.check_shard(1).unwrap();
    mapped.check_shard(1).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_body_byte_is_a_body_checksum_error() {
    let (dir, manifest_path, _) = fixture("body");
    let mut bytes = std::fs::read(&manifest_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    assert!(matches!(
        ShardManifest::decode(&bytes),
        Err(SddError::ChecksumMismatch {
            context: "shard manifest body",
            ..
        })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
