//! End-to-end persistence tests on real c17 dictionaries: every kind
//! round-trips text ↔ binary ↔ memory exactly, and every corruption mode
//! of the binary store surfaces as its typed error.

use same_different::dict::{io as dict_io, Procedure1Options};
use same_different::logic::SddError;
use same_different::store::{
    self, decode, encode, DictionaryKind, SddbReader, StoredDictionary, HEADER_LEN,
};
use same_different::{DictionarySuite, Experiment};

fn c17_suite() -> DictionarySuite {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&Default::default());
    exp.build_dictionaries(
        &tests.tests,
        &Procedure1Options {
            calls1: 3,
            ..Default::default()
        },
    )
}

fn kinds(suite: &DictionarySuite) -> [StoredDictionary; 3] {
    [
        StoredDictionary::PassFail(suite.pass_fail.clone()),
        StoredDictionary::SameDifferent(suite.same_different.clone()),
        StoredDictionary::Full(suite.full.clone()),
    ]
}

#[test]
fn every_kind_round_trips_through_the_binary_store() {
    let suite = c17_suite();
    for dictionary in kinds(&suite) {
        let bytes = encode(&dictionary).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, dictionary, "{:?}", dictionary.kind());
    }
}

#[test]
fn same_different_round_trips_text_to_binary_to_memory() {
    let suite = c17_suite();
    let d = &suite.same_different;

    // memory -> text -> memory
    let text = dict_io::write_same_different(d);
    let from_text = dict_io::read_same_different(&text).unwrap();
    assert_eq!(&from_text, d);

    // memory -> binary -> memory, through the parsed-from-text copy so the
    // whole chain text -> binary -> memory is exercised.
    let bytes = encode(&StoredDictionary::SameDifferent(from_text)).unwrap();
    let from_binary = store::read_same_different_auto(&bytes).unwrap();
    assert_eq!(&from_binary, d);

    // ...and back out to text: the binary store loses nothing the text
    // format records.
    assert_eq!(dict_io::write_same_different(&from_binary), text);

    // The sniffing reader accepts the text bytes unchanged too.
    assert_eq!(
        store::read_same_different_auto(text.as_bytes()).unwrap(),
        *d
    );
}

#[test]
fn lazy_row_loads_agree_with_full_decodes() {
    let suite = c17_suite();
    let bytes = encode(&StoredDictionary::SameDifferent(
        suite.same_different.clone(),
    ))
    .unwrap();
    let reader = SddbReader::open(&bytes).unwrap();
    assert_eq!(reader.kind(), DictionaryKind::SameDifferent);
    for fault in 0..suite.same_different.fault_count() {
        assert_eq!(
            reader.signature(fault).unwrap(),
            *suite.same_different.signature(fault)
        );
    }
    for test in 0..suite.same_different.test_count() {
        assert_eq!(
            reader.baseline(test).unwrap(),
            *suite.same_different.baseline(test)
        );
    }
}

#[test]
fn truncated_file_is_a_typed_truncation_error() {
    let suite = c17_suite();
    for dictionary in kinds(&suite) {
        let bytes = encode(&dictionary).unwrap();
        // Cut mid-payload.
        assert!(
            matches!(
                decode(&bytes[..bytes.len() - 5]),
                Err(SddError::Truncated { .. })
            ),
            "{:?}",
            dictionary.kind()
        );
        // Cut mid-header.
        assert!(matches!(
            decode(&bytes[..HEADER_LEN / 2]),
            Err(SddError::Truncated { .. })
        ));
    }
}

#[test]
fn flipped_header_byte_is_a_checksum_error() {
    let suite = c17_suite();
    let mut bytes = encode(&StoredDictionary::PassFail(suite.pass_fail.clone())).unwrap();
    bytes[9] ^= 0x40; // inside the header, outside the magic
    assert!(matches!(
        decode(&bytes),
        Err(SddError::ChecksumMismatch {
            context: "store header",
            ..
        })
    ));
}

#[test]
fn flipped_payload_byte_is_a_checksum_error() {
    let suite = c17_suite();
    let mut bytes = encode(&StoredDictionary::Full(suite.full.clone())).unwrap();
    let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
    bytes[mid] ^= 0x01;
    assert!(matches!(
        decode(&bytes),
        Err(SddError::ChecksumMismatch {
            context: "store payload",
            ..
        })
    ));
}

/// The typed failure a corrupt on-disk `.sddb` yields under one byte
/// ownership mode — at the pre-validated read if the header is bad, else
/// at decode.
fn load_error(path: &std::path::Path, mode: store::MmapMode) -> SddError {
    match store::read_dictionary_bytes(path, mode) {
        Err(e) => e,
        Ok(bytes) => decode(bytes.as_slice()).expect_err("corrupt bytes decoded cleanly"),
    }
}

/// One labeled way to damage an encoded dictionary image.
type Damage = (&'static str, Box<dyn Fn(&mut Vec<u8>)>);

#[test]
fn corruption_surfaces_identically_under_mmap() {
    use store::MmapMode;

    let suite = c17_suite();
    let pristine = encode(&StoredDictionary::SameDifferent(
        suite.same_different.clone(),
    ))
    .unwrap();
    let dir = std::env::temp_dir().join(format!("sdd-roundtrip-mmap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dict.sddb");

    // Each damage mode, written to disk, must yield the *same* typed error
    // whether the file is mapped or read — the SIGBUS-avoidance guarantee:
    // a truncated file is refused before mapping, never faulted on.
    let damages: [Damage; 4] = [
        (
            "truncated payload",
            Box::new(|b: &mut Vec<u8>| {
                b.truncate(b.len() - 5);
            }),
        ),
        (
            "truncated header",
            Box::new(|b: &mut Vec<u8>| {
                b.truncate(HEADER_LEN / 2);
            }),
        ),
        (
            "flipped header byte",
            Box::new(|b: &mut Vec<u8>| b[9] ^= 0x40),
        ),
        (
            "version bump",
            Box::new(|b: &mut Vec<u8>| {
                b[4..6].copy_from_slice(&(store::VERSION + 1).to_le_bytes());
                let checksum = store::format::fnv1a64(&b[..56]);
                b[56..64].copy_from_slice(&checksum.to_le_bytes());
            }),
        ),
    ];
    for (label, damage) in damages {
        let mut bytes = pristine.clone();
        damage(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let owned = load_error(&path, MmapMode::Off);
        let mapped = load_error(&path, MmapMode::On);
        if !store::mmap_supported() {
            assert!(matches!(mapped, SddError::Io { .. }), "{label}: {mapped}");
            continue;
        }
        assert_eq!(
            owned.to_string(),
            mapped.to_string(),
            "{label}: owned and mapped reads disagree"
        );
        match label {
            "truncated payload" | "truncated header" => {
                assert!(
                    matches!(owned, SddError::Truncated { .. }),
                    "{label}: {owned}"
                );
            }
            "flipped header byte" => {
                assert!(
                    matches!(owned, SddError::ChecksumMismatch { .. }),
                    "{label}: {owned}"
                );
            }
            "version bump" => {
                assert!(
                    matches!(owned, SddError::UnsupportedVersion { .. }),
                    "{label}: {owned}"
                );
            }
            _ => unreachable!(),
        }
    }

    // A payload flip passes the pre-validation in both modes and fails the
    // payload checksum at decode, identically.
    let mut bytes = pristine.clone();
    let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let owned = load_error(&path, MmapMode::Off);
    assert!(matches!(
        owned,
        SddError::ChecksumMismatch {
            context: "store payload",
            ..
        }
    ));
    if store::mmap_supported() {
        assert_eq!(
            owned.to_string(),
            load_error(&path, MmapMode::On).to_string()
        );
    }

    // And the pristine file decodes identically through both modes.
    std::fs::write(&path, &pristine).unwrap();
    let owned = decode(
        store::read_dictionary_bytes(&path, MmapMode::Off)
            .unwrap()
            .as_slice(),
    );
    let mapped = decode(
        store::read_dictionary_bytes(&path, MmapMode::Auto)
            .unwrap()
            .as_slice(),
    );
    assert_eq!(owned.unwrap(), mapped.unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn save_and_load_round_trip_on_disk() {
    let suite = c17_suite();
    let dir = std::env::temp_dir().join(format!("sdd-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for dictionary in kinds(&suite) {
        let path = dir.join(format!("{}.sddb", dictionary.kind().name()));
        store::save(&path, &dictionary).unwrap();
        assert_eq!(store::load(&path).unwrap(), dictionary);
    }
    // The sniffing loader reads both spellings from disk.
    let text_path = dir.join("dict.txt");
    std::fs::write(
        &text_path,
        dict_io::write_same_different(&suite.same_different),
    )
    .unwrap();
    assert_eq!(
        store::load_same_different(&text_path).unwrap(),
        suite.same_different
    );
    let binary_path = dir.join("same-different.sddb");
    assert_eq!(
        store::load_same_different(&binary_path).unwrap(),
        suite.same_different
    );
    let _ = std::fs::remove_dir_all(&dir);
}
