//! End-to-end corrupted-corpus resilience: a datalog corpus with every
//! corruption class interleaved between healthy records must skip exactly
//! the bad lines — each counted under its reason token — while the
//! surviving devices' records and the final clusters come out identical to
//! a clean run of the same corpus.

use same_different::dict::SameDifferentDictionary;
use same_different::store::StoredDictionary;
use same_different::volume::{
    self, JsonlSink, SynthSpec, VolumeOptions, VolumeSummary, WholeSource,
};
use same_different::Experiment;

/// The c17 fixture: a whole same/different source, the simulated response
/// matrix's shape, and a clean 12-device corpus mixing both line shapes.
fn fixture() -> (WholeSource, usize, usize, String) {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let matrix = exp.simulate(&tests);
    let sd = SameDifferentDictionary::with_fault_free_baselines(&matrix);
    let source = WholeSource::new(StoredDictionary::SameDifferent(sd));
    let spec = SynthSpec {
        devices: 12,
        systematic: Vec::new(),
        mask_rate: 0.0,
        flip_rate: 0.0,
        jsonl_every: 3,
        seed: 9,
    };
    let mut corpus = Vec::new();
    volume::synthesize(&matrix, &spec, &mut corpus).unwrap();
    (
        source,
        matrix.test_count(),
        matrix.output_count(),
        String::from_utf8(corpus).unwrap(),
    )
}

fn run_report(source: &WholeSource, corpus: &str) -> (String, VolumeSummary) {
    let mut lines = corpus.lines().map(|l| Ok(l.to_owned()));
    let mut out = Vec::new();
    let summary = volume::run(
        source,
        &mut lines,
        &mut JsonlSink(&mut out),
        &VolumeOptions::default(),
    )
    .unwrap();
    (String::from_utf8(out).unwrap(), summary)
}

/// A device record's line-number-independent body (`"line":N` shifts when
/// garbage lines are interleaved; everything after it must not).
fn body(record: &str) -> &str {
    let at = record
        .find(",\"device\"")
        .expect("record has a device field");
    &record[at..]
}

#[test]
fn corruption_matrix_skips_bad_lines_and_leaves_neighbors_untouched() {
    let (source, tests, outputs, clean) = fixture();
    let (clean_report, clean_summary) = run_report(&source, &clean);
    assert_eq!(clean_summary.ok, 12);
    assert_eq!(clean_summary.skipped, 0);

    // One line per corruption class, interleaved between healthy records:
    // a truncated record, a mangled device id, a wrong response width, a
    // wrong response count, mid-file garbage, and a JSONL line missing its
    // fields.
    let narrow = vec!["0"; tests].join("/");
    let extra = vec!["0".repeat(outputs); tests + 1].join("/");
    let bad = [
        ("dev-truncated".to_owned(), "truncated"),
        ("dev!? 00/00".to_owned(), "bad-device-id"),
        (format!("dev-width {narrow}"), "width"),
        (format!("dev-count {extra}"), "count"),
        ("%%% ??? ###".to_owned(), "bad-observation"),
        ("{\"device\":\"dev-json\"}".to_owned(), "bad-json"),
    ];
    let mut corrupted = String::new();
    for (index, line) in clean.lines().enumerate() {
        if let Some((bad_line, _)) = bad.get(index) {
            corrupted.push_str(bad_line);
            corrupted.push('\n');
        }
        corrupted.push_str(line);
        corrupted.push('\n');
    }
    let (report, summary) = run_report(&source, &corrupted);

    // Every bad line is counted under exactly its reason token.
    assert_eq!(summary.skipped, bad.len());
    for (_, token) in &bad {
        assert_eq!(
            summary.skip_reasons.get(token),
            Some(&1),
            "skip reason {token:?}"
        );
    }
    assert_eq!(report.matches("\"status\":\"skipped\"").count(), bad.len());

    // The healthy devices are untouched: same counts, and every clean
    // record's body reappears verbatim (only the line number may shift).
    assert_eq!(summary.ok, clean_summary.ok);
    assert_eq!(summary.error, 0);
    for record in clean_report
        .lines()
        .filter(|l| l.contains("\"status\":\"ok\""))
    {
        let expected = body(record);
        assert!(
            report.lines().any(|l| l.ends_with(expected)),
            "clean record lost after corruption: {expected}"
        );
    }
    // And the clusters — the output that volume diagnosis exists for —
    // are byte-for-byte the clean ones.
    assert_eq!(summary.clusters, clean_summary.clusters);
}

#[test]
fn an_all_garbage_corpus_degrades_to_counters_not_a_crash() {
    let (source, _, _, _) = fixture();
    let corpus = "!!\n{\"nope\":1}\ndev-1\ndev-2 QQ/QQ\n# comment\n\n";
    let (report, summary) = run_report(&source, corpus);
    assert_eq!(summary.devices, 0);
    assert_eq!(summary.skipped, 4);
    assert_eq!(summary.ignored, 2);
    assert!(summary.clusters.faults.is_empty());
    // The summary line still closes the report.
    assert!(report
        .trim_end()
        .lines()
        .last()
        .unwrap()
        .starts_with("{\"summary\":"));
}
