//! Property-style tests across randomly generated circuits and test sets,
//! driven by the in-tree seeded [`Prng`] so they run without registry access.

use sdd_logic::Prng;

use same_different::atpg::random_patterns;
use same_different::dict::{
    replace_baselines, select_baselines, select_baselines_once, PassFailDictionary,
    Procedure1Options, SameDifferentDictionary,
};
use same_different::netlist::generator::{generate, Profile};
use same_different::sim::reference;
use same_different::Experiment;

const CASES: usize = 24;

/// Draws a small random experiment and its seed from `rng`.
fn random_experiment(rng: &mut Prng) -> (Experiment, u64) {
    let profile = Profile {
        name: "prop",
        inputs: rng.gen_range(2..6),
        outputs: rng.gen_range(1..4),
        dffs: rng.gen_range(0..4),
        gates: rng.gen_range(10..40),
    };
    let seed = rng.next_u64() % 1000;
    (Experiment::new(generate(&profile, seed)), seed)
}

/// The PPSFP engine agrees with the scalar reference simulator on
/// random circuits, faults and patterns.
#[test]
fn response_matrix_matches_reference() {
    let mut outer = Prng::seed_from_u64(0xF0);
    for _ in 0..CASES {
        let (exp, seed) = random_experiment(&mut outer);
        let tests = outer.gen_range(1..20);
        let width = exp.view().inputs().len();
        let mut rng = Prng::seed_from_u64(seed);
        let patterns = random_patterns(width, tests, &mut rng);
        let matrix = exp.simulate(&patterns);
        for (t, pattern) in patterns.iter().enumerate() {
            let good = reference::good_response(exp.circuit(), exp.view(), pattern);
            assert_eq!(matrix.good_response(t), &good);
            for (pos, &id) in exp.faults().iter().enumerate() {
                let fault = exp.universe().fault(id);
                let expected =
                    reference::faulty_response(exp.circuit(), exp.view(), fault, pattern);
                assert_eq!(matrix.response(t, matrix.class(t, pos)), expected);
            }
        }
    }
}

/// A same/different dictionary with fault-free baselines is bit-for-bit
/// a pass/fail dictionary.
#[test]
fn fault_free_baselines_equal_pass_fail() {
    let mut outer = Prng::seed_from_u64(0xF1);
    for _ in 0..CASES {
        let (exp, seed) = random_experiment(&mut outer);
        let width = exp.view().inputs().len();
        let mut rng = Prng::seed_from_u64(seed ^ 1);
        let patterns = random_patterns(width, 12, &mut rng);
        let matrix = exp.simulate(&patterns);
        let sd = SameDifferentDictionary::with_fault_free_baselines(&matrix);
        let pf = PassFailDictionary::build(&matrix);
        assert_eq!(sd.signatures(), pf.signatures());
    }
}

/// Resolution ordering: full ≤ s/d(P2) ≤ s/d(P1) ≤ pass/fail, on any
/// circuit and any random test set.
#[test]
fn resolution_ordering_invariant() {
    let mut outer = Prng::seed_from_u64(0xF2);
    for _ in 0..CASES {
        let (exp, seed) = random_experiment(&mut outer);
        let tests = outer.gen_range(2..24);
        let width = exp.view().inputs().len();
        let mut rng = Prng::seed_from_u64(seed ^ 2);
        let patterns = random_patterns(width, tests, &mut rng);
        let matrix = exp.simulate(&patterns);
        let full = matrix.full_partition().indistinguished_pairs();
        let pf = matrix.pass_fail_partition().indistinguished_pairs();
        let mut selection = select_baselines(
            &matrix,
            &Procedure1Options {
                calls1: 4,
                ..Procedure1Options::default()
            },
        );
        let p1 = selection.indistinguished_pairs;
        let p2 = replace_baselines(&matrix, &mut selection.baselines);
        assert!(full <= p2);
        assert!(p2 <= p1);
        assert!(p1 <= pf);
    }
}

/// The LOWER cutoff can only lose resolution relative to exhaustive
/// candidate scoring under the same test order.
#[test]
fn lower_cutoff_is_conservative() {
    let mut outer = Prng::seed_from_u64(0xF3);
    for _ in 0..CASES {
        let (exp, seed) = random_experiment(&mut outer);
        let width = exp.view().inputs().len();
        let mut rng = Prng::seed_from_u64(seed ^ 3);
        let patterns = random_patterns(width, 10, &mut rng);
        let matrix = exp.simulate(&patterns);
        let order: Vec<usize> = (0..matrix.test_count()).collect();
        let (_, with_cutoff) = select_baselines_once(&matrix, &order, Some(1));
        let (_, exhaustive) = select_baselines_once(&matrix, &order, None);
        // Not a strict inequality in general — the greedy per-test argmax
        // under a cutoff can occasionally luck into a better global result —
        // but per-test the cutoff never scores higher than the max; sanity
        // bound: both are valid dictionaries over the same tests.
        let full = matrix.full_partition().indistinguished_pairs();
        assert!(with_cutoff >= full);
        assert!(exhaustive >= full);
    }
}

/// Serialized dictionaries round-trip exactly, whatever the circuit,
/// test set and baselines.
#[test]
fn dictionary_io_round_trips() {
    use same_different::dict::io;
    let mut outer = Prng::seed_from_u64(0xF5);
    for _ in 0..CASES {
        let (exp, seed) = random_experiment(&mut outer);
        let tests = outer.gen_range(1..16);
        let width = exp.view().inputs().len();
        let mut rng = Prng::seed_from_u64(seed ^ 5);
        let patterns = random_patterns(width, tests, &mut rng);
        let matrix = exp.simulate(&patterns);
        let selection = select_baselines(
            &matrix,
            &Procedure1Options {
                calls1: 2,
                ..Procedure1Options::default()
            },
        );
        let dict = SameDifferentDictionary::build(&matrix, &selection.baselines);
        let text = io::write_same_different(&dict);
        let back = io::read_same_different(&text).unwrap();
        assert_eq!(&back, &dict);
        assert_eq!(back.indistinguished_pairs(), dict.indistinguished_pairs());
    }
}

/// Space compaction never invents detections, and full-dictionary
/// resolution is monotone under it: compacted responses are a function
/// of original responses, so equal signatures stay equal.
///
/// Note the deliberate omission: *pass/fail* resolution is NOT monotone
/// under compaction — masking a detection for only one member of an
/// indistinguished pair can split the pair. Random testing found this; it
/// is a real property of aliasing, not a bug.
#[test]
fn compaction_only_loses_information() {
    use same_different::sim::SpaceCompactor;
    let mut outer = Prng::seed_from_u64(0xF6);
    for _ in 0..CASES {
        let (exp, seed) = random_experiment(&mut outer);
        let groups = outer.gen_range(1..5);
        let width = exp.view().inputs().len();
        let m_out = exp.view().outputs().len();
        let mut rng = Prng::seed_from_u64(seed ^ 6);
        let patterns = random_patterns(width, 10, &mut rng);
        let matrix = exp.simulate(&patterns);
        let compactor = SpaceCompactor::modular(m_out, groups.min(m_out));
        let compacted = compactor.apply(&matrix);
        assert!(
            compacted.full_partition().indistinguished_pairs()
                >= matrix.full_partition().indistinguished_pairs()
        );
        for t in 0..matrix.test_count() {
            for f in 0..matrix.fault_count() {
                if compacted.detects(t, f) {
                    assert!(matrix.detects(t, f));
                }
            }
        }
    }
}

/// SLAT diagnosis of a chip behaving like one modeled fault always
/// explains every failing test.
#[test]
fn slat_is_complete_for_modeled_faults() {
    use same_different::dict::slat::slat_diagnose;
    let mut outer = Prng::seed_from_u64(0xF7);
    for _ in 0..CASES {
        let (exp, seed) = random_experiment(&mut outer);
        let width = exp.view().inputs().len();
        let mut rng = Prng::seed_from_u64(seed ^ 7);
        let patterns = random_patterns(width, 12, &mut rng);
        let matrix = exp.simulate(&patterns);
        for fault in 0..matrix.fault_count().min(10) {
            let observed: Vec<_> = (0..matrix.test_count())
                .map(|t| matrix.response(t, matrix.class(t, fault)))
                .collect();
            let d = slat_diagnose(&matrix, &observed);
            assert!(d.is_complete());
        }
    }
}

/// Fault collapsing only merges truly equivalent faults: representatives
/// and their class members produce identical responses everywhere.
#[test]
fn collapsed_classes_are_equivalent() {
    let mut outer = Prng::seed_from_u64(0xF4);
    for _ in 0..CASES {
        let (exp, seed) = random_experiment(&mut outer);
        let width = exp.view().inputs().len();
        let mut rng = Prng::seed_from_u64(seed ^ 4);
        let patterns = random_patterns(width, 8, &mut rng);
        for (id, fault) in exp.universe().iter() {
            let rep = exp.collapsed().representative(id);
            if rep == id {
                continue;
            }
            let rep_fault = exp.universe().fault(rep);
            for pattern in &patterns {
                let a = reference::faulty_response(exp.circuit(), exp.view(), fault, pattern);
                let b = reference::faulty_response(exp.circuit(), exp.view(), rep_fault, pattern);
                assert_eq!(a, b, "fault {} vs representative {}", id, rep);
            }
        }
    }
}
