//! Integration tests driving the `sdd` binary end to end through its
//! public command-line interface, exactly as a user would.

use std::path::PathBuf;
use std::process::{Command, Output};

fn sdd(dir: &std::path::Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sdd"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("sdd binary runs")
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdd-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn full_flow_generate_atpg_dictionary_inject_diagnose() {
    let dir = workdir("flow");

    let out = sdd(&dir, &["generate", "s208", "--seed", "3", "-o", "c.bench"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = sdd(&dir, &["info", "c.bench"]);
    assert!(out.status.success());
    let info = String::from_utf8_lossy(&out.stdout);
    assert!(info.contains("circuit:          s208"), "{info}");
    assert!(info.contains("collapsed"), "{info}");

    let out = sdd(
        &dir,
        &["atpg", "c.bench", "--ttype", "diag", "-o", "tests.txt"],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = sdd(
        &dir,
        &[
            "dictionary",
            "c.bench",
            "--tests",
            "tests.txt",
            "--calls1",
            "3",
            "-o",
            "dict.txt",
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dict = std::fs::read_to_string(dir.join("dict.txt")).unwrap();
    assert!(dict.starts_with("same-different-dictionary v1"));

    let out = sdd(
        &dir,
        &[
            "inject",
            "c.bench",
            "--tests",
            "tests.txt",
            "--fault",
            "5",
            "-o",
            "obs.txt",
        ],
    );
    assert!(out.status.success());
    let injected = String::from_utf8_lossy(&out.stderr);
    let fault_name = injected
        .trim()
        .split(": ")
        .nth(1)
        .expect("inject reports the fault")
        .to_owned();

    let out = sdd(
        &dir,
        &[
            "diagnose",
            "c.bench",
            "--tests",
            "tests.txt",
            "--dict",
            "dict.txt",
            "--observed",
            "obs.txt",
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let verdict = String::from_utf8_lossy(&out.stdout);
    assert!(
        verdict.contains(&fault_name),
        "diagnosis {verdict:?} must include the injected fault {fault_name:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_are_reported_not_panicked() {
    let dir = workdir("errors");

    let out = sdd(&dir, &["bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = sdd(&dir, &["info", "missing.bench"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing.bench"));

    let out = sdd(&dir, &["generate", "b17"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown circuit"));

    let out = sdd(&dir, &["dictionary", "x.bench"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--tests"));

    // Malformed test file.
    std::fs::write(dir.join("c.bench"), "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
    std::fs::write(dir.join("bad.txt"), "01x\n").unwrap();
    let out = sdd(&dir, &["dictionary", "c.bench", "--tests", "bad.txt"]);
    assert!(!out.status.success());

    // Wrong pattern width.
    std::fs::write(dir.join("wide.txt"), "0101\n").unwrap();
    let out = sdd(&dir, &["dictionary", "c.bench", "--tests", "wide.txt"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected 1"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generate_is_deterministic_and_parseable() {
    let dir = workdir("gen");
    for _ in 0..2 {
        let out = sdd(&dir, &["generate", "s344", "--seed", "42"]);
        assert!(out.status.success());
    }
    let a = sdd(&dir, &["generate", "s344", "--seed", "42"]).stdout;
    let b = sdd(&dir, &["generate", "s344", "--seed", "42"]).stdout;
    assert_eq!(a, b);
    let text = String::from_utf8(a).unwrap();
    let circuit = same_different::netlist::bench::parse(&text).unwrap();
    assert_eq!(circuit.name(), "s344");
    let _ = std::fs::remove_dir_all(&dir);
}
