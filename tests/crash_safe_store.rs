//! Crash-safety of the dictionary store: a writer killed at *any* point
//! must leave the previous artifact byte-for-byte intact and loadable —
//! never a torn file under the target name.
//!
//! A killed `sdd build` leaves exactly one on-disk state: the committed
//! target plus a partial `<name>.tmp` staging sibling (the atomic writer
//! stages everything there and renames only after fsync). These tests
//! reproduce that state at every 64-byte truncation boundary of the staged
//! image and assert the target never degrades.

use same_different::store::{self, StoredDictionary};
use sdd_core::PassFailDictionary;
use std::path::PathBuf;

fn fixture() -> StoredDictionary {
    StoredDictionary::PassFail(PassFailDictionary::build(
        &sdd_core::example::paper_example(),
    ))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdd-crash-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn torn_sddb_write_at_every_boundary_leaves_the_target_loadable() {
    let dir = scratch_dir("sddb");
    let path = dir.join("dict.sddb");
    let dictionary = fixture();
    store::save(&path, &dictionary).unwrap();
    let committed = std::fs::read(&path).unwrap();
    let image = store::encode(&dictionary).unwrap();

    // Every 64-byte boundary of the staged image, plus the empty file and
    // the all-but-one-byte cut: the states a kill mid-write can leave.
    let mut cuts: Vec<usize> = (0..image.len()).step_by(64).collect();
    cuts.push(image.len().saturating_sub(1));
    for cut in cuts {
        let tmp = store::temp_sibling(&path);
        std::fs::write(&tmp, &image[..cut]).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            committed,
            "target bytes changed with a torn temp cut at {cut}"
        );
        let reloaded = store::load(&path)
            .unwrap_or_else(|e| panic!("target unloadable with torn temp at {cut}: {e}"));
        assert_eq!(reloaded, dictionary);
    }

    // The next committed write replaces both the stale temp and the target.
    store::save(&path, &dictionary).unwrap();
    assert!(!store::temp_sibling(&path).exists());
    assert_eq!(store::load(&path).unwrap(), dictionary);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_manifest_and_shard_writes_leave_the_set_loadable() {
    let dir = scratch_dir("sddm");
    let manifest_path = dir.join("dict.sddm");
    let written = store::write_sharded(&manifest_path, &fixture(), &[0..2, 2..4], None).unwrap();
    let manifest_bytes = std::fs::read(&manifest_path).unwrap();
    let shard_path = dir.join(&written.shards[0].file);
    let shard_bytes = std::fs::read(&shard_path).unwrap();

    for (target, image) in [
        (&manifest_path, &manifest_bytes),
        (&shard_path, &shard_bytes),
    ] {
        let mut cuts: Vec<usize> = (0..image.len()).step_by(64).collect();
        cuts.push(image.len().saturating_sub(1));
        for cut in cuts {
            let tmp = store::temp_sibling(target);
            std::fs::write(&tmp, &image[..cut]).unwrap();
            let reader = store::ShardedReader::open(&manifest_path).unwrap_or_else(|e| {
                panic!(
                    "manifest unreadable with torn {} at {cut}: {e}",
                    tmp.display()
                )
            });
            for index in 0..reader.shard_count() {
                reader.load_shard(index).unwrap_or_else(|e| {
                    panic!("shard {index} unloadable with torn temp at {cut}: {e}")
                });
            }
            std::fs::remove_file(&tmp).unwrap();
        }
    }
    // verify_file flags a lingering staging file as stale, nothing more.
    std::fs::write(store::temp_sibling(&manifest_path), b"torn").unwrap();
    let report = store::verify_file(&manifest_path).unwrap();
    assert!(report.healthy());
    assert_eq!(report.stale_temps.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_header_payload_is_rejected_before_buffering() {
    let dir = scratch_dir("guard");
    let path = dir.join("dict.sddb");
    let image = store::encode(&fixture()).unwrap();

    // A valid header whose declared payload outruns the file: the length
    // check must fire on the header alone, before the body is buffered.
    std::fs::write(&path, &image[..image.len() - 8]).unwrap();
    match store::read_dictionary_file(&path) {
        Err(sdd_logic::SddError::Truncated { .. }) => {}
        other => panic!("want Truncated before buffering, got {other:?}"),
    }

    // Trailing garbage past the declared payload is equally typed.
    let mut padded = image.clone();
    padded.extend_from_slice(b"junk past the payload");
    std::fs::write(&path, &padded).unwrap();
    match store::read_dictionary_file(&path) {
        Err(sdd_logic::SddError::Invalid { .. }) => {}
        other => panic!("want Invalid on trailing bytes, got {other:?}"),
    }

    // And the intact image still round-trips through the same guard.
    std::fs::write(&path, &image).unwrap();
    assert_eq!(store::read_dictionary_file(&path).unwrap(), image);
    let _ = std::fs::remove_dir_all(&dir);
}
