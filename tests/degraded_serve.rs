//! Degraded-mode serving: a cone-sharded dictionary with a quarantined
//! shard must answer `PARTIAL` verdicts whose ranking is **bit-identical**
//! to diagnosing against the explicit sub-dictionary of the shards that
//! remain — a missing shard is just another form of masked evidence — and
//! whose `covered=` field reports exact fault coverage.

use same_different::serve::{serve, Client, ServeConfig};
use same_different::shard::{self, ShardObservation};
use same_different::store::{self, ShardedReader, StoredDictionary};
use same_different::Experiment;
use sdd_core::diagnose::{MatchQuality, ScoredCandidate};
use sdd_core::Procedure1Options;
use sdd_logic::{BitVec, MaskedBitVec};
use std::path::PathBuf;

/// Mirrors the server's reply-field formatting (`quality= known= distance=
/// best= top=`), so the test can reconstruct the exact line the server must
/// produce from an in-process diagnosis of the resident shard subset.
fn reply_fields(quality: MatchQuality, known: usize, ranking: &[ScoredCandidate]) -> String {
    let quality = match quality {
        MatchQuality::Exact => "exact",
        MatchQuality::ConsistentUnderMask => "consistent",
        MatchQuality::Ranked => "ranked",
    };
    let distance = ranking.first().map_or(0, |c| c.mismatches);
    let best: Vec<String> = ranking
        .iter()
        .take_while(|c| c.mismatches == distance)
        .map(|c| c.fault.to_string())
        .collect();
    let top: Vec<String> = ranking
        .iter()
        .take(5)
        .map(|c| format!("{}:{}:{:.4}", c.fault, c.mismatches, c.confidence))
        .collect();
    format!(
        "quality={quality} known={known} distance={distance} best={} top={}",
        best.join(","),
        top.join(","),
    )
}

#[test]
fn quarantined_shard_yields_bit_identical_partial_verdicts() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sdd-degraded-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Build an s298-shaped dictionary and cut it into 3 cone shards.
    let exp = Experiment::iscas89("s298", 1).unwrap();
    let tests = exp.diagnostic_tests(&Default::default());
    let suite = exp.build_dictionaries(
        &tests.tests,
        &Procedure1Options {
            calls1: 2,
            ..Default::default()
        },
    );
    let dictionary = StoredDictionary::SameDifferent(suite.same_different);
    let total_faults = dictionary.fault_count();
    let cones = same_different::sim::OutputCones::compute(exp.circuit(), exp.view());
    let ranges = cones.shard_ranges(exp.universe(), exp.faults(), 3);
    let shard_cones: Vec<BitVec> = ranges
        .iter()
        .map(|r| cones.shard_cone(exp.universe(), exp.faults(), r.clone()))
        .collect();
    let manifest_path = dir.join("s298.sddm");
    let manifest =
        store::write_sharded(&manifest_path, &dictionary, &ranges, Some(&shard_cones)).unwrap();
    assert_eq!(manifest.shards.len(), 3);

    // Observations from three injected faults, one per shard region.
    let observations: Vec<Vec<BitVec>> = [0usize, 1, 2]
        .iter()
        .map(|&shard| {
            let position = manifest.shards[shard].fault_start;
            let fault = exp.universe().fault(exp.faults()[position]);
            tests
                .tests
                .iter()
                .map(|t| {
                    same_different::sim::reference::faulty_response(
                        exp.circuit(),
                        exp.view(),
                        fault,
                        t,
                    )
                })
                .collect()
        })
        .collect();

    // Corrupt the middle shard, verify, quarantine: the serving directory
    // now holds a clean two-shard degraded set.
    let victim = 1usize;
    let victim_path = dir.join(&manifest.shards[victim].file);
    let mut bytes = std::fs::read(&victim_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 1;
    std::fs::write(&victim_path, &bytes).unwrap();
    let report = store::verify_file(&manifest_path).unwrap();
    assert!(!report.healthy());
    assert_eq!(report.bad_shards().count(), 1);
    assert_eq!(
        report.covered_faults(),
        total_faults - manifest.shards[victim].fault_count
    );
    let moved = store::quarantine_bad_shards(&report).unwrap();
    assert_eq!(moved.len(), 1);
    assert!(!victim_path.exists(), "corrupt shard moved aside");

    // The explicit sub-dictionary of resident shards, diagnosed in-process:
    // the ground truth every degraded server reply must match bit-for-bit.
    let reader = ShardedReader::open(&manifest_path).unwrap();
    let resident: Vec<(usize, StoredDictionary)> = (0..reader.shard_count())
        .filter(|&i| i != victim)
        .map(|i| {
            (
                manifest.shards[i].fault_start,
                reader.load_shard(i).unwrap(),
            )
        })
        .collect();
    let resident_refs: Vec<(usize, &StoredDictionary)> =
        resident.iter().map(|(s, d)| (*s, d)).collect();

    let handle = serve(&ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client
        .request(&format!("LOAD s298 {}", manifest_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED"), "{reply}");

    let covered = total_faults - manifest.shards[victim].fault_count;
    for (index, responses) in observations.iter().enumerate() {
        let obs: Vec<String> = responses.iter().map(ToString::to_string).collect();
        let reply = client
            .request(&format!("DIAG s298 {}", obs.join("/")))
            .unwrap();

        let masked: Vec<MaskedBitVec> = obs.iter().map(|t| t.parse().unwrap()).collect();
        let expected_report =
            shard::diagnose_sharded(&resident_refs, ShardObservation::Responses(&masked)).unwrap();
        let expected = format!(
            "PARTIAL DIAG {} covered={covered}/{total_faults} degraded={victim}:io",
            reply_fields(
                expected_report.quality,
                expected_report.known,
                &expected_report.ranking
            ),
        );
        assert_eq!(reply, expected, "observation {index}");
    }

    // BATCH result lines carry the same degraded verdicts.
    let obs: Vec<String> = observations[0].iter().map(ToString::to_string).collect();
    let joined = obs.join("/");
    let results = client.batch("s298", &[&joined, &joined]).unwrap();
    assert_eq!(results.len(), 2);
    for line in &results {
        let (_, verdict) = line.split_once(' ').unwrap();
        assert!(verdict.starts_with("PARTIAL DIAG"), "{line}");
        assert!(
            verdict.contains(&format!("covered={covered}/{total_faults}")),
            "{line}"
        );
    }

    // STATS counts the degraded diagnoses.
    let stats = client.request("STATS").unwrap();
    let partial: u64 = stats
        .split_whitespace()
        .find_map(|t| t.strip_prefix("partial="))
        .and_then(|v| v.parse().ok())
        .unwrap();
    assert_eq!(partial, 5, "{stats}");

    client.request("SHUTDOWN").unwrap();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
