//! Pipelining byte-identity: a client that writes a whole burst of
//! requests in one TCP send must read back exactly the bytes a client
//! issuing the same requests one-at-a-time reads — on both transport
//! backends, across `DIAG`, `BATCH`, `VOLUME` (with its inline corpus),
//! a degraded `PARTIAL` diagnosis, and an error reply.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use same_different::dict::Procedure1Options;
use same_different::serve::{serve, Client, ServeBackend, ServeConfig};
use same_different::store::{self, save, StoredDictionary};
use same_different::volume::{self, SynthSpec};
use same_different::Experiment;
use sdd_logic::BitVec;

/// How many reply lines a request owns on the wire.
enum Frame {
    /// One reply line (`DIAG`, errors, `QUIT`).
    Single,
    /// `OK BATCH <n>` header plus `n` result lines.
    Batch(usize),
    /// `OK VOLUME <n>` header plus records until `OK SUMMARY`, or a
    /// single `ERR` line when the header is rejected.
    Volume,
}

/// One scripted request: the exact bytes to send (request line plus any
/// inline corpus) and the reply frame to read back.
struct Step {
    payload: String,
    frame: Frame,
}

impl Step {
    fn line(request: &str, frame: Frame) -> Self {
        Self {
            payload: format!("{request}\n"),
            frame,
        }
    }
}

/// Reads one framed reply off `reader`, returning its raw bytes
/// (newlines included) so runs can be compared byte-for-byte.
fn read_frame(reader: &mut BufReader<TcpStream>, frame: &Frame) -> Vec<u8> {
    let mut take_line = |out: &mut Vec<u8>| -> String {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        out.extend_from_slice(line.as_bytes());
        line.trim_end().to_owned()
    };
    let mut out = Vec::new();
    match frame {
        Frame::Single => {
            take_line(&mut out);
        }
        Frame::Batch(n) => {
            let head = take_line(&mut out);
            assert!(head.starts_with("OK BATCH "), "{head}");
            for _ in 0..*n {
                take_line(&mut out);
            }
        }
        Frame::Volume => {
            let head = take_line(&mut out);
            if head.starts_with("OK VOLUME ") {
                while !take_line(&mut out).starts_with("OK SUMMARY ") {}
            } else {
                assert!(head.starts_with("ERR "), "{head}");
            }
        }
    }
    out
}

/// Runs the script over one connection. Sequential mode writes a request
/// and reads its reply before the next; pipelined mode writes the entire
/// burst in one `write_all`, then reads every reply in order.
fn run_script(addr: std::net::SocketAddr, steps: &[Step], pipelined: bool) -> Vec<u8> {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut replies = Vec::new();
    if pipelined {
        let burst: Vec<u8> = steps.iter().flat_map(|s| s.payload.bytes()).collect();
        (&stream).write_all(&burst).unwrap();
        (&stream).flush().unwrap();
        for step in steps {
            replies.extend_from_slice(&read_frame(&mut reader, &step.frame));
        }
    } else {
        for step in steps {
            (&stream).write_all(step.payload.as_bytes()).unwrap();
            (&stream).flush().unwrap();
            replies.extend_from_slice(&read_frame(&mut reader, &step.frame));
        }
    }
    // Both runs end with QUIT, so the server closes: EOF, no stray bytes.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after QUIT: {rest:?}");
    replies
}

/// The shared fixture: a c17 `.sddb` for the happy-path verbs, a
/// synthesized c17 volume corpus, and a 3-shard s298 manifest with the
/// middle shard quarantined for the degraded `PARTIAL` case.
struct Fixture {
    dir: PathBuf,
    c17_path: PathBuf,
    c17_obs: String,
    corpus: Vec<String>,
    manifest_path: PathBuf,
    degraded_obs: String,
}

fn fixture(tag: &str) -> Fixture {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("sdd-serve-pipeline-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let suite = exp.build_dictionaries(
        &tests,
        &Procedure1Options {
            calls1: 2,
            ..Default::default()
        },
    );
    let matrix = exp.simulate(&tests);
    let c17_path = dir.join("c17.sddb");
    save(
        &c17_path,
        &StoredDictionary::SameDifferent(suite.same_different),
    )
    .unwrap();
    let fault = exp.universe().fault(exp.faults()[3]);
    let c17_obs: Vec<String> = tests
        .iter()
        .map(|t| {
            same_different::sim::reference::faulty_response(exp.circuit(), exp.view(), fault, t)
                .to_string()
        })
        .collect();
    let c17_obs = c17_obs.join("/");
    let spec = SynthSpec {
        devices: 6,
        systematic: vec![(3, 0.5)],
        mask_rate: 0.0,
        flip_rate: 0.0,
        jsonl_every: 2,
        seed: 7,
    };
    let mut corpus_bytes = Vec::new();
    volume::synthesize(&matrix, &spec, &mut corpus_bytes).unwrap();
    let corpus: Vec<String> = String::from_utf8(corpus_bytes)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();

    // Degraded s298: 3 cone shards, middle one corrupted and quarantined.
    let s298 = Experiment::iscas89("s298", 1).unwrap();
    let s298_tests = s298.diagnostic_tests(&Default::default());
    let s298_suite = s298.build_dictionaries(
        &s298_tests.tests,
        &Procedure1Options {
            calls1: 2,
            ..Default::default()
        },
    );
    let dictionary = StoredDictionary::SameDifferent(s298_suite.same_different);
    let cones = same_different::sim::OutputCones::compute(s298.circuit(), s298.view());
    let ranges = cones.shard_ranges(s298.universe(), s298.faults(), 3);
    let shard_cones: Vec<BitVec> = ranges
        .iter()
        .map(|r| cones.shard_cone(s298.universe(), s298.faults(), r.clone()))
        .collect();
    let manifest_path = dir.join("s298.sddm");
    let manifest =
        store::write_sharded(&manifest_path, &dictionary, &ranges, Some(&shard_cones)).unwrap();
    let position = manifest.shards[0].fault_start;
    let s298_fault = s298.universe().fault(s298.faults()[position]);
    let degraded_obs: Vec<String> = s298_tests
        .tests
        .iter()
        .map(|t| {
            same_different::sim::reference::faulty_response(
                s298.circuit(),
                s298.view(),
                s298_fault,
                t,
            )
            .to_string()
        })
        .collect();
    let degraded_obs = degraded_obs.join("/");
    let victim_path = dir.join(&manifest.shards[1].file);
    let mut bytes = std::fs::read(&victim_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 1;
    std::fs::write(&victim_path, &bytes).unwrap();
    let report = store::verify_file(&manifest_path).unwrap();
    assert!(!report.healthy());
    store::quarantine_bad_shards(&report).unwrap();

    Fixture {
        dir,
        c17_path,
        c17_obs,
        corpus,
        manifest_path,
        degraded_obs,
    }
}

/// Builds the request script: every verb family the server frames, plus
/// a degraded `PARTIAL` diagnosis and a guaranteed error reply.
fn script(fx: &Fixture) -> Vec<Step> {
    let corpus_refs: Vec<&str> = fx.corpus.iter().map(String::as_str).collect();
    let mut volume = format!("VOLUME c17 {} seed=7\n", corpus_refs.len());
    for line in &corpus_refs {
        volume.push_str(line);
        volume.push('\n');
    }
    vec![
        Step::line(&format!("DIAG c17 {}", fx.c17_obs), Frame::Single),
        Step::line(
            &format!("BATCH c17 {} {} {}", fx.c17_obs, fx.c17_obs, fx.c17_obs),
            Frame::Batch(3),
        ),
        Step {
            payload: volume,
            frame: Frame::Volume,
        },
        Step::line(&format!("DIAG s298 {}", fx.degraded_obs), Frame::Single),
        Step::line("FROB c17", Frame::Single),
        // A bad option still consumes the declared corpus lines before
        // the single ERR reply — the two dummies ride in the payload.
        Step {
            payload: "VOLUME c17 2 seed=banana\ndummy\ndummy\n".to_owned(),
            frame: Frame::Volume,
        },
        Step::line(&format!("DIAG c17 {}", fx.c17_obs), Frame::Single),
        Step::line("QUIT", Frame::Single),
    ]
}

fn check_backend(fx: &Fixture, backend: ServeBackend, expect_backend: &str) {
    let handle = serve(&ServeConfig {
        workers: 2,
        backend,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut setup = Client::connect(handle.addr()).unwrap();
    let reply = setup
        .request(&format!("LOAD c17 {}", fx.c17_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED"), "{reply}");
    let reply = setup
        .request(&format!("LOAD s298 {}", fx.manifest_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED"), "{reply}");

    let steps = script(fx);
    let sequential = run_script(handle.addr(), &steps, false);
    let pipelined = run_script(handle.addr(), &steps, true);
    assert_eq!(
        String::from_utf8_lossy(&sequential),
        String::from_utf8_lossy(&pipelined),
        "pipelined replies must be byte-identical to sequential ({expect_backend})"
    );
    let text = String::from_utf8(sequential).unwrap();
    assert!(text.contains("OK DIAG "), "{text}");
    assert!(text.contains("OK BATCH 3"), "{text}");
    assert!(text.contains("OK VOLUME "), "{text}");
    assert!(text.contains("OK SUMMARY "), "{text}");
    assert!(text.contains("PARTIAL DIAG "), "{text}");
    assert!(text.contains("ERR unknown command \"FROB\""), "{text}");
    assert!(text.contains("ERR bad option \"seed=banana\""), "{text}");
    assert!(text.ends_with("OK BYE\n"), "{text}");

    let stats = setup.request("STATS").unwrap();
    assert!(
        stats.contains(&format!(" backend={expect_backend} ")),
        "{stats}"
    );
    assert!(stats.contains(" pipelined="), "{stats}");
    assert_eq!(setup.request("SHUTDOWN").unwrap(), "OK BYE");
    handle.wait();
}

#[test]
fn pipelined_bursts_match_sequential_bytes_on_the_threaded_backend() {
    let fx = fixture("threaded");
    check_backend(&fx, ServeBackend::Threaded, "threaded");
    let _ = std::fs::remove_dir_all(&fx.dir);
}

#[test]
fn pipelined_bursts_match_sequential_bytes_on_the_reactor_backend() {
    if !same_different::reactor::supported() {
        eprintln!("skipping: epoll reactor unsupported on this platform");
        return;
    }
    let fx = fixture("reactor");
    check_backend(&fx, ServeBackend::Reactor, "reactor");
    let _ = std::fs::remove_dir_all(&fx.dir);
}
