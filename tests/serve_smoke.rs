//! Client/server smoke test over loopback: a real c17 same/different
//! dictionary served over TCP must return exactly the ranked candidates the
//! in-process masked diagnosis produces, and `BATCH`, `STATS`, and
//! `SHUTDOWN` must behave as the protocol promises.

use same_different::dict::Procedure1Options;
use same_different::logic::MaskedBitVec;
use same_different::serve::{serve, Client, ServeConfig};
use same_different::sim::reference;
use same_different::store::{save, StoredDictionary};
use same_different::Experiment;

/// Builds the c17 fixture: the experiment, its diagnostic tests, and the
/// same/different dictionary saved as a binary `.sddb` file.
fn fixture(
    dir: &std::path::Path,
) -> (
    Experiment,
    Vec<same_different::logic::BitVec>,
    std::path::PathBuf,
) {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let suite = exp.build_dictionaries(
        &tests,
        &Procedure1Options {
            calls1: 3,
            ..Default::default()
        },
    );
    let path = dir.join("c17.sddb");
    save(
        &path,
        &StoredDictionary::SameDifferent(suite.same_different),
    )
    .unwrap();
    (exp, tests, path)
}

/// The observation a tester would log for `fault`, with the output bit of
/// every third test lost to datalog corruption — ternary, slash-separated.
fn masked_observation(
    exp: &Experiment,
    tests: &[same_different::logic::BitVec],
    fault_position: usize,
) -> (String, Vec<MaskedBitVec>) {
    let fault = exp.universe().fault(exp.faults()[fault_position]);
    let mut tokens = Vec::new();
    let mut parsed = Vec::new();
    for (t, test) in tests.iter().enumerate() {
        let response = reference::faulty_response(exp.circuit(), exp.view(), fault, test);
        let mut token = response.to_string();
        if t % 3 == 0 {
            token.replace_range(0..1, "X");
        }
        parsed.push(token.parse().unwrap());
        tokens.push(token);
    }
    (tokens.join("/"), parsed)
}

#[test]
fn served_diagnosis_matches_in_process_diagnosis() {
    let dir = std::env::temp_dir().join(format!("sdd-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (exp, tests, dict_path) = fixture(&dir);
    let dictionary = same_different::store::load_same_different(&dict_path).unwrap();

    let handle = serve(&ServeConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();

    let mut client = Client::connect(addr).unwrap();
    let reply = client
        .request(&format!("LOAD c17 {}", dict_path.display()))
        .unwrap();
    assert!(
        reply.starts_with("OK LOADED c17 kind=same-different"),
        "{reply}"
    );

    // Every fault's masked observation diagnoses identically over the wire
    // and in process.
    for fault in 0..exp.faults().len() {
        let (obs, responses) = masked_observation(&exp, &tests, fault);
        let expected = dictionary.diagnose_masked(&responses).unwrap();
        let reply = client.request(&format!("DIAG c17 {obs}")).unwrap();
        let best: Vec<String> = expected.best.iter().map(usize::to_string).collect();
        assert!(reply.starts_with("OK DIAG "), "{reply}");
        assert!(
            reply.contains(&format!("best={}", best.join(","))),
            "fault {fault}: {reply} vs {:?}",
            expected.best
        );
        assert!(
            reply.contains(&format!("distance={}", expected.distance())),
            "fault {fault}: {reply}"
        );
        assert!(
            reply.contains(&format!("known={}", expected.known)),
            "fault {fault}: {reply}"
        );
        // The injected fault explains every surviving bit of its own
        // datalog, so it must appear among the best candidates.
        assert!(expected.best.contains(&fault), "fault {fault} not best");
    }

    // BATCH returns one counted result line per observation, in order.
    let (obs_a, resp_a) = masked_observation(&exp, &tests, 0);
    let (obs_b, resp_b) = masked_observation(&exp, &tests, 1);
    let results = client.batch("c17", &[&obs_a, &obs_b]).unwrap();
    assert_eq!(results.len(), 2);
    for (index, (line, responses)) in results.iter().zip([&resp_a, &resp_b]).enumerate() {
        let expected = dictionary.diagnose_masked(responses).unwrap();
        assert!(line.starts_with(&format!("{index} OK DIAG ")), "{line}");
        let best: Vec<String> = expected.best.iter().map(usize::to_string).collect();
        assert!(line.contains(&format!("best={}", best.join(","))), "{line}");
    }

    // Errors are replies, not dropped connections.
    let reply = client.request("DIAG nosuch 01/10").unwrap();
    assert!(reply.starts_with("ERR "), "{reply}");
    let reply = client.request("NONSENSE").unwrap();
    assert!(reply.starts_with("ERR "), "{reply}");

    // STATS reflects the provisioning and the traffic this test generated,
    // including the per-dictionary residency entry with its byte-ownership
    // mode: under the default auto mmap mode a binary dictionary serves
    // from a mapped image (decoded bytes counted separately), elsewhere it
    // is an owned in-heap copy.
    let stats = client.request("STATS").unwrap();
    assert!(stats.starts_with("OK STATS workers=2 dicts=1 "), "{stats}");
    assert!(stats.contains("evictions=0"), "{stats}");
    assert!(stats.contains(" mapped="), "{stats}");
    assert!(stats.contains(" dict=c17:"), "{stats}");
    if sdd_store::mmap_supported() {
        assert!(stats.contains(":mode=mapped:"), "{stats}");
        assert!(!stats.contains(":mapped=0"), "{stats}");
    } else {
        assert!(stats.contains(":mode=owned:"), "{stats}");
        assert!(stats.contains(":mapped=0"), "{stats}");
    }

    // SHUTDOWN acknowledges, then the server drains and releases the port.
    let reply = client.request("SHUTDOWN").unwrap();
    assert_eq!(reply, "OK BYE");
    handle.wait();
    assert!(
        std::net::TcpListener::bind(addr).is_ok(),
        "port released after drain"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn protocol_edge_cases_are_typed_errors() {
    let dir = std::env::temp_dir().join(format!("sdd-serve-edge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (exp, tests, dict_path) = fixture(&dir);

    let handle = serve(&ServeConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // LOAD of a nonexistent path reports the I/O failure, keeps serving.
    let reply = client
        .request(&format!(
            "LOAD ghost {}",
            dir.join("missing.sddb").display()
        ))
        .unwrap();
    assert!(reply.starts_with("ERR "), "{reply}");

    let reply = client
        .request(&format!("LOAD c17 {}", dict_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED"), "{reply}");

    // An empty BATCH body is a malformed request, not `OK BATCH 0`.
    let reply = client.request("BATCH c17").unwrap();
    assert!(reply.starts_with("ERR "), "{reply}");
    assert!(reply.contains("empty batch"), "{reply}");

    // Observation shape mismatches come back typed: wrong response count,
    // wrong response width, and a bare signature where responses belong.
    let (good_obs, _) = masked_observation(&exp, &tests, 0);
    let truncated = good_obs.rsplit_once('/').unwrap().0;
    for bad in [truncated, "011/10", "01"] {
        let reply = client.request(&format!("DIAG c17 {bad}")).unwrap();
        assert!(reply.starts_with("ERR "), "{bad:?}: {reply}");
    }

    // The connection survived every error above.
    let reply = client.request(&format!("DIAG c17 {good_obs}")).unwrap();
    assert!(reply.starts_with("OK DIAG "), "{reply}");

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicked_request_does_not_wedge_the_server() {
    // Opt into the deliberate-panic verb for this test binary.
    std::env::set_var("SDD_SERVE_TEST_PANIC", "1");
    let dir = std::env::temp_dir().join(format!("sdd-serve-panic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (exp, tests, dict_path) = fixture(&dir);

    let handle = serve(&ServeConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client
        .request(&format!("LOAD c17 {}", dict_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED"), "{reply}");

    // The panicking request is answered with a typed error...
    let reply = client.request("PANIC").unwrap();
    assert_eq!(reply, "ERR internal error: request panicked");

    // ...and both this connection and fresh ones keep working afterwards.
    let (obs, _) = masked_observation(&exp, &tests, 1);
    let reply = client.request(&format!("DIAG c17 {obs}")).unwrap();
    assert!(reply.starts_with("OK DIAG "), "{reply}");
    let stats = client.request("STATS").unwrap();
    assert!(stats.starts_with("OK STATS "), "{stats}");

    let mut fresh = Client::connect(handle.addr()).unwrap();
    let reply = fresh.request("PANIC").unwrap();
    assert_eq!(reply, "ERR internal error: request panicked");
    let stats = fresh.request("STATS").unwrap();
    assert!(stats.contains(" dict=c17:"), "{stats}");

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let dir = std::env::temp_dir().join(format!("sdd-serve-conc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (exp, tests, dict_path) = fixture(&dir);

    let handle = serve(&ServeConfig {
        workers: 4,
        ..Default::default()
    })
    .unwrap();
    let addr = handle.addr();
    let mut setup = Client::connect(addr).unwrap();
    let reply = setup
        .request(&format!("LOAD c17 {}", dict_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED"), "{reply}");

    let (obs, _) = masked_observation(&exp, &tests, 2);
    let answers: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let obs = obs.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut last = String::new();
                    for _ in 0..16 {
                        last = client.request(&format!("DIAG c17 {obs}")).unwrap();
                    }
                    last
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    assert!(answers.iter().all(|a| a == &answers[0]), "{answers:?}");
    assert!(answers[0].starts_with("OK DIAG "), "{}", answers[0]);

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
