//! Failure-injection tests: diagnosis behaviour when the defect is outside
//! the single stuck-at model the dictionaries were built from.

use same_different::dict::{
    select_baselines, FullDictionary, Procedure1Options, SameDifferentDictionary,
};
use same_different::fault::{BridgeKind, Defect, FaultSite};
use same_different::logic::BitVec;
use same_different::sim::reference;
use same_different::Experiment;

fn exhaustive_tests() -> Vec<BitVec> {
    (0u32..32)
        .map(|w| (0..5).map(|i| w >> i & 1 == 1).collect())
        .collect()
}

fn observed(exp: &Experiment, defect: &Defect, tests: &[BitVec]) -> Vec<BitVec> {
    tests
        .iter()
        .map(|t| reference::defect_response(exp.circuit(), exp.view(), defect, t))
        .collect()
}

fn site_of(exp: &Experiment, pos: usize) -> same_different::netlist::NetId {
    match exp.universe().fault(exp.faults()[pos]).site {
        FaultSite::Stem(net) => net,
        FaultSite::Branch { gate, .. } => gate,
    }
}

#[test]
fn bridges_on_c17_are_localized_by_nearest_match() {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exhaustive_tests();
    let matrix = exp.simulate(&tests);
    let selection = select_baselines(
        &matrix,
        &Procedure1Options {
            calls1: 5,
            ..Procedure1Options::default()
        },
    );
    let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);
    let full = FullDictionary::new(matrix.clone());

    let mut injected = 0;
    let mut sd_hits = 0;
    let mut full_hits = 0;
    let nets: Vec<_> = exp.circuit().nets().collect();
    for (i, &a) in nets.iter().enumerate() {
        for &b in &nets[i + 1..] {
            for kind in [BridgeKind::And, BridgeKind::Or] {
                let defect = Defect::Bridge { a, b, kind };
                let responses = observed(&exp, &defect, &tests);
                if responses
                    .iter()
                    .enumerate()
                    .all(|(t, r)| r == matrix.good_response(t))
                {
                    continue; // benign bridge, nothing to diagnose
                }
                injected += 1;
                let plausible = defect.plausible_sites();
                let hit = |candidates: &[usize]| {
                    candidates
                        .iter()
                        .any(|&pos| plausible.contains(&site_of(&exp, pos)))
                };
                if hit(sd.diagnose(&responses).unwrap().candidates()) {
                    sd_hits += 1;
                }
                if hit(full.diagnose(&responses).unwrap().candidates()) {
                    full_hits += 1;
                }
            }
        }
    }
    assert!(injected > 50, "enough non-benign bridges to be meaningful");
    // Nearest-match localization rates: the full dictionary sees the most
    // information and should localize a solid majority of bridges; the
    // same/different dictionary should be useful too.
    assert!(
        full_hits * 10 >= injected * 6,
        "full dictionary localized only {full_hits}/{injected}"
    );
    assert!(
        sd_hits * 10 >= injected * 4,
        "same/different localized only {sd_hits}/{injected}"
    );
}

#[test]
fn double_faults_diagnose_to_one_component_often() {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exhaustive_tests();
    let matrix = exp.simulate(&tests);
    let full = FullDictionary::new(matrix.clone());

    let n = exp.faults().len();
    let mut injected = 0;
    let mut located = 0;
    for i in (0..n).step_by(3) {
        for j in (i + 1..n).step_by(5) {
            let fa = exp.universe().fault(exp.faults()[i]);
            let fb = exp.universe().fault(exp.faults()[j]);
            let defect = Defect::MultipleStuckAt(vec![fa, fb]);
            let responses = observed(&exp, &defect, &tests);
            if responses
                .iter()
                .enumerate()
                .all(|(t, r)| r == matrix.good_response(t))
            {
                continue;
            }
            injected += 1;
            let plausible = defect.plausible_sites();
            let report = full.diagnose(&responses).unwrap();
            if report
                .candidates()
                .iter()
                .any(|&pos| plausible.contains(&site_of(&exp, pos)))
            {
                located += 1;
            }
        }
    }
    assert!(injected >= 20);
    assert!(
        located * 10 >= injected * 5,
        "located {located}/{injected} double faults"
    );
}

#[test]
fn slat_recovers_double_fault_components() {
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exhaustive_tests();
    let matrix = exp.simulate(&tests);

    let n = exp.faults().len();
    let mut injected = 0;
    let mut component_found = 0;
    let mut complete = 0;
    for i in (0..n).step_by(2) {
        for j in (i + 1..n).step_by(3) {
            let fa = exp.universe().fault(exp.faults()[i]);
            let fb = exp.universe().fault(exp.faults()[j]);
            let defect = Defect::MultipleStuckAt(vec![fa, fb]);
            let responses = observed(&exp, &defect, &tests);
            if responses
                .iter()
                .enumerate()
                .all(|(t, r)| r == matrix.good_response(t))
            {
                continue;
            }
            injected += 1;
            let d = same_different::dict::slat::slat_diagnose(&matrix, &responses);
            if d.multiplet.contains(&i) || d.multiplet.contains(&j) {
                component_found += 1;
            }
            if d.is_complete() {
                complete += 1;
            }
        }
    }
    assert!(injected >= 30);
    // SLAT's per-test matching is designed for exactly this: on a strong
    // test set, most double faults have at least one component recovered.
    assert!(
        component_found * 10 >= injected * 7,
        "SLAT found a true component in only {component_found}/{injected}"
    );
    assert!(complete > 0, "some double faults are fully SLAT-explained");
}

#[test]
fn masked_double_fault_is_silent() {
    // A fault combined with itself at the opposite polarity downstream may
    // mask; at minimum, injecting a fault twice equals injecting it once.
    let exp = Experiment::new(same_different::netlist::library::c17());
    let tests = exhaustive_tests();
    for pos in 0..exp.faults().len() {
        let f = exp.universe().fault(exp.faults()[pos]);
        let single = observed(&exp, &Defect::StuckAt(f), &tests);
        let double = observed(&exp, &Defect::MultipleStuckAt(vec![f, f]), &tests);
        assert_eq!(single, double);
    }
}
