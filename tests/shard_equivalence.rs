//! The sharding contract: diagnosing against a sharded dictionary —
//! single-shard or cross-shard, with or without masked bits — returns
//! candidate rankings bit-identical to the unsharded dictionary, both
//! in-process and over the serve protocol, and `STATS` reports per-shard
//! residency.

use same_different::dict::{PassFailDictionary, Procedure1Options};
use same_different::logic::{BitVec, MaskedBitVec};
use same_different::serve::{serve, Client, ServeConfig};
use same_different::shard::{diagnose_sharded, ShardObservation};
use same_different::sim::{contiguous_ranges, reference, OutputCones};
use same_different::store::{save, slice_dictionary, write_sharded, StoredDictionary};
use same_different::{DictionarySuite, Experiment};

fn build(exp: &Experiment) -> (Vec<BitVec>, DictionarySuite) {
    let tests = exp.diagnostic_tests(&Default::default()).tests;
    let suite = exp.build_dictionaries(
        &tests,
        &Procedure1Options {
            calls1: 2,
            ..Default::default()
        },
    );
    (tests, suite)
}

/// The masked observation of `fault`: its simulated responses with the
/// first output bit of every third test lost.
fn masked_responses(
    exp: &Experiment,
    tests: &[BitVec],
    fault_position: usize,
    masked: bool,
) -> Vec<MaskedBitVec> {
    let fault = exp.universe().fault(exp.faults()[fault_position]);
    tests
        .iter()
        .enumerate()
        .map(|(t, test)| {
            let response = reference::faulty_response(exp.circuit(), exp.view(), fault, test);
            let mut observed = MaskedBitVec::from_known(response);
            if masked && t % 3 == 0 {
                observed.mask(0);
            }
            observed
        })
        .collect()
}

/// Asserts that every sharding of `whole` into `ranges` diagnoses
/// identically to the unsharded dictionary for `observation`.
fn assert_identical(
    whole: &StoredDictionary,
    ranges: &[std::ops::Range<usize>],
    observation: ShardObservation<'_>,
) {
    let unsharded = diagnose_sharded(&[(0, whole)], observation).unwrap();
    let shards: Vec<StoredDictionary> = ranges
        .iter()
        .map(|r| slice_dictionary(whole, r.clone()).unwrap())
        .collect();
    let refs: Vec<(usize, &StoredDictionary)> = ranges
        .iter()
        .zip(&shards)
        .map(|(r, d)| (r.start, d))
        .collect();
    let merged = diagnose_sharded(&refs, observation).unwrap();
    assert_eq!(
        merged,
        unsharded,
        "{} shard(s) over {ranges:?}",
        ranges.len()
    );
}

#[test]
fn paper_example_shards_diagnose_identically() {
    // Contiguous chunks (no netlist, so no cones): every cut count from a
    // single shard to one fault per shard, pass/fail and full kinds.
    let matrix = same_different::dict::example::paper_example();
    let pf = StoredDictionary::PassFail(PassFailDictionary::build(&matrix));
    let full = StoredDictionary::Full(same_different::dict::FullDictionary::new(matrix.clone()));
    let signatures = ["01", "10", "11", "1X", "X1", "XX", "0X"];
    for shards in 1..=4 {
        let ranges = contiguous_ranges(4, shards);
        for sig in signatures {
            let observed: MaskedBitVec = sig.parse().unwrap();
            assert_identical(&pf, &ranges, ShardObservation::Signature(&observed));
        }
        // Full-kind responses: each fault's own row, clean and masked.
        for fault in 0..4 {
            for masked in [false, true] {
                let responses: Vec<MaskedBitVec> = (0..matrix.test_count())
                    .map(|t| {
                        let row = matrix.response(t, matrix.class(t, fault));
                        let mut observed = MaskedBitVec::from_known(row);
                        if masked && t == 0 {
                            observed.mask(0);
                        }
                        observed
                    })
                    .collect();
                assert_identical(&full, &ranges, ShardObservation::Responses(&responses));
            }
        }
    }
}

#[test]
fn cone_partitioned_shards_diagnose_identically() {
    // A generated circuit, partitioned along output-cone boundaries the way
    // `sdd build --shards` does.
    let exp = Experiment::iscas89("s298", 0).unwrap();
    let (tests, suite) = build(&exp);
    let whole = StoredDictionary::SameDifferent(suite.same_different.clone());
    let cones = OutputCones::compute(exp.circuit(), exp.view());
    for shards in [1, 3] {
        let ranges = cones.shard_ranges(exp.universe(), exp.faults(), shards);
        assert_eq!(ranges.len(), shards);
        for fault in 0..exp.faults().len() {
            for masked in [false, true] {
                let responses = masked_responses(&exp, &tests, fault, masked);
                assert_identical(&whole, &ranges, ShardObservation::Responses(&responses));
            }
        }
    }
}

#[test]
fn served_sharded_diagnosis_matches_the_whole_dictionary() {
    let dir = std::env::temp_dir().join(format!("sdd-shard-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let exp = Experiment::new(same_different::netlist::library::c17());
    let (tests, suite) = build(&exp);
    let whole = StoredDictionary::SameDifferent(suite.same_different.clone());

    let whole_path = dir.join("c17.sddb");
    save(&whole_path, &whole).unwrap();
    let manifest_path = dir.join("c17.sddm");
    let cones = OutputCones::compute(exp.circuit(), exp.view());
    let ranges = cones.shard_ranges(exp.universe(), exp.faults(), 2);
    let shard_cones: Vec<BitVec> = ranges
        .iter()
        .map(|r| cones.shard_cone(exp.universe(), exp.faults(), r.clone()))
        .collect();
    write_sharded(&manifest_path, &whole, &ranges, Some(&shard_cones)).unwrap();

    let handle = serve(&ServeConfig {
        workers: 2,
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client
        .request(&format!("LOAD whole {}", whole_path.display()))
        .unwrap();
    assert!(reply.starts_with("OK LOADED whole "), "{reply}");
    let reply = client
        .request(&format!("LOAD sharded {}", manifest_path.display()))
        .unwrap();
    assert!(
        reply.starts_with("OK LOADED sharded kind=same-different"),
        "{reply}"
    );
    assert!(reply.ends_with(" shards=2"), "{reply}");

    // Before any DIAG, the manifest is registered but every shard is cold.
    let stats = client.request("STATS").unwrap();
    assert!(stats.contains(" shards=0/2"), "{stats}");
    assert!(stats.contains(" shard=sharded.0:cold:0"), "{stats}");
    assert!(stats.contains(" shard=sharded.1:cold:0"), "{stats}");

    // Byte-identical DIAG replies, clean and masked, for every fault.
    for fault in 0..exp.faults().len() {
        for masked in [false, true] {
            let obs = masked_responses(&exp, &tests, fault, masked)
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("/");
            let from_whole = client.request(&format!("DIAG whole {obs}")).unwrap();
            let from_shards = client.request(&format!("DIAG sharded {obs}")).unwrap();
            assert!(from_whole.starts_with("OK DIAG "), "{from_whole}");
            assert_eq!(from_shards, from_whole, "fault {fault} masked={masked}");
        }
    }

    // Every shard was scored, so both are now resident.
    let stats = client.request("STATS").unwrap();
    assert!(stats.contains(" shards=2/2"), "{stats}");
    assert!(stats.contains(" shard=sharded.0:resident:"), "{stats}");
    assert!(stats.contains(" shard=sharded.1:resident:"), "{stats}");

    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
