#!/usr/bin/env bash
# Offline CI gate for the workspace. No network access required: the
# workspace has no third-party dependencies.
#
#   ./ci.sh          full gate: build, test, fmt, clippy
#   ./ci.sh quick    build + root-package tests only
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --offline --release --workspace"
cargo build --offline --release --workspace --all-targets

if [ "${1:-}" = "quick" ]; then
    step "cargo test --offline -q (root package)"
    cargo test --offline -q
    step "quick gate passed"
    exit 0
fi

step "cargo test --offline --release --workspace -q"
cargo test --offline --release --workspace -q

step "store round-trip + serve smoke + sharding (c17, s298)"
cargo test --offline --release -q --test store_roundtrip --test serve_smoke \
    --test shard_manifest --test shard_equivalence

step "dictionary load bench (text parse vs binary read + mmap cold start, JSON)"
# BENCH_load.json carries the cold-start comparison between the owned read
# (--mmap off: whole Vec + full decode) and the mapped path (--mmap on:
# map + first row through the lazy reader); the gate fails on a
# missing/malformed report or if the mapped first row differs from the
# decoded one.
cargo run --offline --release -p sdd-bench --bin load_bench -- c17 1 10 --out BENCH_load.json
cargo run --offline --release -p sdd-bench --bin load_bench -- --check BENCH_load.json

step "volume smoke (CLI vs served VOLUME, corrupted-corpus resilience)"
# tests/volume_smoke.rs drives the real binary and a live server and
# asserts byte-identical reports; tests/volume_corpus.rs walks the
# corruption matrix end to end.
cargo test --offline --release -q --test volume_smoke --test volume_corpus

step "chaos smoke (10 injected failure classes against a live server, JSON)"
# Fixed seed + small circuit keeps this a seconds-long gate; the driver
# exits nonzero if any well-formed request fails to come back
# OK/PARTIAL/BUSY/ERR, a verdict is wrong, or the server wedges (watchdog).
cargo run --offline --release -p sdd-bench --bin chaos -- --circuit s298 --seed 7

step "dictionary build bench (serial vs parallel, JSON)"
# Small circuit + low patience keeps CI fast; BENCH_build.json tracks the
# perf trajectory, and the gate fails on a missing/malformed/non-identical
# report (speedup itself is host-dependent and not gated). The ECO patch
# point IS gated: patch_identical must hold and patch_s must beat
# rebuild_s — the incremental path exists to be cheaper than a rebuild.
# --jobs 4 exercises the threaded path even on a single-core runner.
cargo run --offline --release -p sdd-bench --bin build_bench -- \
    --circuit s953 --calls1 3 --jobs 4 --out BENCH_build.json
cargo run --offline --release -p sdd-bench --bin build_bench -- --check BENCH_build.json

step "volume bench (devices/s serial vs parallel + corruption sweep, JSON)"
# BENCH_volume.json carries the determinism claim (jobs=1 == jobs=N bytes)
# and the diagnostic claim (injected systematic faults rank first on the
# clean level); the gate fails on a missing/malformed/claim-failing report.
cargo run --offline --release -p sdd-bench --bin volume_bench -- \
    --circuit s298 --devices 300 --jobs 4 --out BENCH_volume.json
cargo run --offline --release -p sdd-bench --bin volume_bench -- --check BENCH_volume.json

step "serve bench (pipelined DIAG throughput, threaded vs reactor, JSON)"
# BENCH_serve.json tracks the transport trajectory: req/s and p50/p99 per
# backend at three concurrency levels. The gate checks shape and sanity
# (both backends where supported, positive throughput, p99 >= p50) — which
# backend wins is host-dependent and recorded, not gated.
cargo run --offline --release -p sdd-bench --bin serve_bench -- --out BENCH_serve.json
cargo run --offline --release -p sdd-bench --bin serve_bench -- --check BENCH_serve.json

step "cargo fmt --check"
if ! cargo fmt --version >/dev/null 2>&1; then
    echo "rustfmt not installed; skipping"
else
    cargo fmt --all --check
fi

step "cargo clippy -D warnings"
if ! cargo clippy --version >/dev/null 2>&1; then
    echo "clippy not installed; skipping"
else
    cargo clippy --offline --workspace --all-targets -- -D warnings
fi

step "ci gate passed"
