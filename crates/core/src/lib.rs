//! Fault dictionaries for cause-effect defect diagnosis, centered on the
//! **same/different fault dictionary** of Pomeranz & Reddy (DATE 2008).
//!
//! Three dictionary types are provided, all built from a fault-simulation
//! [`ResponseMatrix`](sdd_sim::ResponseMatrix):
//!
//! * [`FullDictionary`] — stores the complete output vector of every fault
//!   under every test (`k·n·m` bits). Highest possible resolution.
//! * [`PassFailDictionary`] — one bit per fault and test: does the faulty
//!   output vector differ from the *fault-free* vector? (`k·n` bits.)
//! * [`SameDifferentDictionary`] — one bit per fault and test, but compared
//!   against a freely chosen per-test *baseline* output vector
//!   (`k·(n+m)` bits including baseline storage). With baselines selected
//!   by [`select_baselines`] (the paper's Procedure 1) and improved by
//!   [`replace_baselines`] (Procedure 2), it approaches — sometimes
//!   reaches — full-dictionary resolution at pass/fail-dictionary size.
//!
//! The [`diagnose`] module turns any of the three into a working
//! cause-effect diagnosis engine, including a two-phase
//! dictionary-plus-simulation mode.
//!
//! # Example
//!
//! ```
//! use sdd_core::{
//!     select_baselines, PassFailDictionary, Procedure1Options, SameDifferentDictionary,
//! };
//!
//! // The paper's own 4-fault worked example (Tables 1–5):
//! let matrix = sdd_core::example::paper_example();
//! let pass_fail = PassFailDictionary::build(&matrix);
//! assert_eq!(pass_fail.indistinguished_pairs(), 1); // f2,f3 left
//!
//! let selection = select_baselines(&matrix, &Procedure1Options::default());
//! let sd = SameDifferentDictionary::build(&matrix, &selection.baselines);
//! assert_eq!(sd.indistinguished_pairs(), 0); // all pairs distinguished
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
pub mod diagnose;
pub mod example;
mod full;
pub mod io;
pub mod multi;
mod ordering;
mod pass_fail;
mod procedure1;
mod procedure2;
mod prune;
pub mod representations;
mod same_different;
mod sizes;
pub mod slat;

pub use budget::Budget;
pub use full::FullDictionary;
pub use ordering::{order_tests_for_resolution, resolution_profile};
pub use pass_fail::PassFailDictionary;
pub use procedure1::{
    score_candidates, score_candidates_into, select_baselines, select_baselines_budgeted,
    select_baselines_once, BaselineSelection, Procedure1Options, ScoreScratch,
};
pub use procedure2::{
    refresh_baselines_budgeted, replace_baselines, replace_baselines_budgeted,
    replace_baselines_pass, ReplacementOutcome,
};
pub use prune::prune_tests;
pub use same_different::SameDifferentDictionary;
pub use sizes::DictionarySizes;
