//! Alternative physical representations of dictionaries.
//!
//! §1 of the paper notes that dictionaries are stored not only as
//! two-dimensional bit arrays but also as *lists of detected faults* or
//! *tree structures*. The information is identical; the storage and lookup
//! profiles differ. This module provides both for pass/fail-shaped data:
//!
//! * [`DetectionListDictionary`] — per test, the sorted list of faults it
//!   detects. Small when detection is sparse (`Σ det · ⌈log₂ n⌉` bits),
//!   which is typical for compact industrial test sets.
//! * [`SignatureTrie`] — a binary trie over fault signatures, giving
//!   O(k)-time exact diagnosis lookups independent of the fault count and
//!   a natural prefix compression of shared signature prefixes.

use std::collections::HashMap;

use sdd_logic::BitVec;
use sdd_sim::ResponseMatrix;

/// A pass/fail dictionary stored as per-test detection lists.
///
/// # Example
///
/// ```
/// use sdd_core::representations::DetectionListDictionary;
///
/// let m = sdd_core::example::paper_example();
/// let d = DetectionListDictionary::build(&m);
/// assert_eq!(d.detected_by(0), &[1, 2, 3]); // t0 detects f1, f2, f3
/// assert_eq!(d.detected_by(1), &[0, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionListDictionary {
    lists: Vec<Vec<u32>>,
    faults: usize,
}

impl DetectionListDictionary {
    /// Builds the detection lists from simulated responses.
    pub fn build(matrix: &ResponseMatrix) -> Self {
        let lists = (0..matrix.test_count())
            .map(|test| {
                (0..matrix.fault_count())
                    .filter(|&f| matrix.detects(test, f))
                    .map(|f| f as u32)
                    .collect()
            })
            .collect();
        Self {
            lists,
            faults: matrix.fault_count(),
        }
    }

    /// Faults detected by `test`, ascending.
    pub fn detected_by(&self, test: usize) -> &[u32] {
        &self.lists[test]
    }

    /// Number of tests.
    pub fn test_count(&self) -> usize {
        self.lists.len()
    }

    /// Total number of `(test, fault)` detections stored.
    pub fn detection_count(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Storage in bits: one fault index (`⌈log₂ n⌉` bits) per detection.
    /// Compare with the flat pass/fail array's `k·n`.
    pub fn size_bits(&self) -> u64 {
        let index_bits = (usize::BITS - (self.faults.max(2) - 1).leading_zeros()) as u64;
        self.detection_count() as u64 * index_bits
    }

    /// Reconstructs the pass/fail signature of one fault.
    pub fn signature(&self, fault: usize) -> BitVec {
        self.lists
            .iter()
            .map(|list| list.binary_search(&(fault as u32)).is_ok())
            .collect()
    }

    /// Diagnoses by intersecting detection lists: faults detected by every
    /// failing test and by no passing test (exact pass/fail match).
    ///
    /// # Panics
    ///
    /// Panics if `failing` contains an out-of-range test.
    pub fn diagnose_exact(&self, failing: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; self.faults];
        for &test in failing {
            for &fault in &self.lists[test] {
                counts[fault as usize] += 1;
            }
        }
        // A fault matches exactly when it is detected by all failing tests
        // and its total detections equal the failing count (no passing test
        // detects it).
        let totals = {
            let mut t = vec![0u32; self.faults];
            for list in &self.lists {
                for &fault in list {
                    t[fault as usize] += 1;
                }
            }
            t
        };
        (0..self.faults as u32)
            .filter(|&f| {
                counts[f as usize] == failing.len() as u32
                    && totals[f as usize] == failing.len() as u32
            })
            .collect()
    }
}

/// A binary trie over fault signatures: the tree-structured dictionary
/// representation.
///
/// Each level corresponds to one test; leaves hold the faults whose
/// signatures share the full root-to-leaf path.
///
/// # Example
///
/// ```
/// use sdd_core::representations::SignatureTrie;
/// use sdd_core::PassFailDictionary;
///
/// let m = sdd_core::example::paper_example();
/// let pf = PassFailDictionary::build(&m);
/// let trie = SignatureTrie::build(pf.signatures());
/// assert_eq!(trie.lookup(&"11".parse()?), &[2, 3]);
/// assert_eq!(trie.lookup(&"00".parse()?), &[] as &[u32]);
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureTrie {
    nodes: Vec<TrieNode>,
    width: usize,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct TrieNode {
    children: [Option<u32>; 2],
    faults: Vec<u32>,
}

impl SignatureTrie {
    /// Builds the trie from per-fault signatures (all the same width).
    ///
    /// # Panics
    ///
    /// Panics if the signatures differ in width.
    pub fn build(signatures: &[BitVec]) -> Self {
        let width = signatures.first().map_or(0, BitVec::len);
        let mut nodes = vec![TrieNode::default()];
        for (fault, signature) in signatures.iter().enumerate() {
            assert_eq!(signature.len(), width, "ragged signatures");
            let mut node = 0usize;
            for bit in signature.iter() {
                let slot = usize::from(bit);
                let next = match nodes[node].children[slot] {
                    Some(next) => next as usize,
                    None => {
                        nodes.push(TrieNode::default());
                        let next = nodes.len() - 1;
                        nodes[node].children[slot] = Some(next as u32);
                        next
                    }
                };
                node = next;
            }
            nodes[node].faults.push(fault as u32);
        }
        Self { nodes, width }
    }

    /// Signature width (number of tests).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of trie nodes — the prefix-compressed footprint.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Faults whose stored signature equals `observed` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `observed` has the wrong width.
    pub fn lookup(&self, observed: &BitVec) -> &[u32] {
        assert_eq!(observed.len(), self.width, "signature width mismatch");
        let mut node = 0usize;
        for bit in observed.iter() {
            match self.nodes[node].children[usize::from(bit)] {
                Some(next) => node = next as usize,
                None => return &[],
            }
        }
        &self.nodes[node].faults
    }

    /// Groups of faults sharing a signature (the indistinguished classes),
    /// as a map from leaf signature count to number of groups of that size.
    pub fn group_size_histogram(&self) -> HashMap<usize, usize> {
        let mut histogram = HashMap::new();
        for node in &self.nodes {
            if !node.faults.is_empty() {
                *histogram.entry(node.faults.len()).or_insert(0) += 1;
            }
        }
        histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::PassFailDictionary;

    #[test]
    fn detection_lists_match_pass_fail_signatures() {
        let m = paper_example();
        let lists = DetectionListDictionary::build(&m);
        let pf = PassFailDictionary::build(&m);
        for fault in 0..m.fault_count() {
            assert_eq!(lists.signature(fault), *pf.signature(fault));
        }
        assert_eq!(lists.test_count(), 2);
        assert_eq!(lists.detection_count(), 6);
        // 6 detections × 2 bits per index (n = 4) = 12 bits.
        assert_eq!(lists.size_bits(), 12);
    }

    #[test]
    fn list_diagnosis_matches_signature_diagnosis() {
        let m = paper_example();
        let lists = DetectionListDictionary::build(&m);
        let pf = PassFailDictionary::build(&m);
        // Fault f0 fails only t1.
        assert_eq!(lists.diagnose_exact(&[1]), vec![0]);
        // f2, f3 fail both tests.
        assert_eq!(lists.diagnose_exact(&[0, 1]), vec![2, 3]);
        let report = pf.diagnose(&"11".parse().unwrap()).unwrap();
        assert_eq!(report.exact, vec![2, 3]);
    }

    #[test]
    fn trie_lookup_matches_linear_scan() {
        let m = paper_example();
        let pf = PassFailDictionary::build(&m);
        let trie = SignatureTrie::build(pf.signatures());
        for fault in 0..m.fault_count() {
            let hits = trie.lookup(pf.signature(fault));
            assert!(hits.contains(&(fault as u32)));
            // Every hit's signature equals the probe.
            for &hit in hits {
                assert_eq!(pf.signature(hit as usize), pf.signature(fault));
            }
        }
    }

    #[test]
    fn trie_histogram_counts_groups() {
        let m = paper_example();
        let pf = PassFailDictionary::build(&m);
        let trie = SignatureTrie::build(pf.signatures());
        let histogram = trie.group_size_histogram();
        // Signatures: 01, 10, 11, 11 → two singletons and one pair.
        assert_eq!(histogram.get(&1), Some(&2));
        assert_eq!(histogram.get(&2), Some(&1));
        assert_eq!(trie.width(), 2);
        assert!(trie.node_count() >= 4);
    }

    #[test]
    fn empty_trie_lookup() {
        let trie = SignatureTrie::build(&[]);
        assert_eq!(trie.lookup(&BitVec::new()), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn trie_rejects_wrong_width_probe() {
        let m = paper_example();
        let pf = PassFailDictionary::build(&m);
        let trie = SignatureTrie::build(pf.signatures());
        trie.lookup(&"101".parse().unwrap());
    }
}
