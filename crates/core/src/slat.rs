//! SLAT diagnosis — the Single Location At-a-Time paradigm (Bartenstein et
//! al., ITC 2001; the paper's reference [23]).
//!
//! Nearest-match diagnosis ranks whole-signature distances, which degrades
//! when a defect involves *several* locations. SLAT instead works per test:
//! a failing test is a *SLAT pattern* when its observed output vector
//! exactly equals the stored response of at least one single fault — on
//! that test, the defect behaved like that single fault. A *multiplet* is a
//! small set of faults that explains (covers) every SLAT pattern. Greedy
//! set cover recovers the components of multiple-fault defects that
//! confuse single-fault matching.

use sdd_sim::ResponseMatrix;

use sdd_logic::BitVec;

/// The result of SLAT analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlatDiagnosis {
    /// Failing tests whose observed response matches no single fault —
    /// evidence of behaviour outside the dictionary's model even per-test.
    pub unexplained_tests: Vec<usize>,
    /// Failing tests explained by at least one fault, with the matching
    /// fault positions.
    pub slat_patterns: Vec<(usize, Vec<usize>)>,
    /// A small fault set covering all SLAT patterns (greedy cover), ordered
    /// by how many patterns each fault newly explained.
    pub multiplet: Vec<usize>,
}

impl SlatDiagnosis {
    /// `true` when every failing test is explained by the multiplet.
    pub fn is_complete(&self) -> bool {
        self.unexplained_tests.is_empty()
    }
}

/// Runs SLAT analysis of `observed` responses against the stored responses
/// in `matrix`.
///
/// # Panics
///
/// Panics if `observed` has the wrong length or widths.
///
/// # Example
///
/// ```
/// use sdd_core::slat::slat_diagnose;
///
/// let m = sdd_core::example::paper_example();
/// // Chip behaves exactly like f2:
/// let observed: Vec<_> = (0..2).map(|t| m.response(t, m.class(t, 2))).collect();
/// let d = slat_diagnose(&m, &observed);
/// assert!(d.is_complete());
/// assert_eq!(d.multiplet, vec![2]);
/// ```
pub fn slat_diagnose(matrix: &ResponseMatrix, observed: &[BitVec]) -> SlatDiagnosis {
    assert_eq!(
        observed.len(),
        matrix.test_count(),
        "one observed response per test"
    );
    let mut slat_patterns: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut unexplained_tests = Vec::new();
    for (test, seen) in observed.iter().enumerate() {
        if seen == matrix.good_response(test) {
            continue; // passing test: no information for SLAT
        }
        // Which response class (if any) equals the observation?
        let matching_class = (1..matrix.class_count(test) as u32)
            .find(|&class| matrix.response(test, class) == *seen);
        match matching_class {
            None => unexplained_tests.push(test),
            Some(class) => {
                let faults: Vec<usize> = (0..matrix.fault_count())
                    .filter(|&f| matrix.class(test, f) == class)
                    .collect();
                slat_patterns.push((test, faults));
            }
        }
    }

    // Greedy cover: repeatedly take the fault explaining the most
    // still-uncovered SLAT patterns.
    let mut uncovered: Vec<usize> = (0..slat_patterns.len()).collect();
    let mut multiplet = Vec::new();
    while !uncovered.is_empty() {
        let mut counts = std::collections::HashMap::new();
        for &p in &uncovered {
            for &fault in &slat_patterns[p].1 {
                *counts.entry(fault).or_insert(0usize) += 1;
            }
        }
        let (&best, _) = counts
            .iter()
            .max_by_key(|&(&fault, &count)| (count, std::cmp::Reverse(fault)))
            .expect("uncovered SLAT patterns always have candidate faults");
        multiplet.push(best);
        uncovered.retain(|&p| !slat_patterns[p].1.contains(&best));
    }

    SlatDiagnosis {
        unexplained_tests,
        slat_patterns,
        multiplet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;

    #[test]
    fn single_fault_behaviour_yields_singleton_multiplet() {
        let m = paper_example();
        for fault in 0..m.fault_count() {
            let observed: Vec<BitVec> = (0..m.test_count())
                .map(|t| m.response(t, m.class(t, fault)))
                .collect();
            let d = slat_diagnose(&m, &observed);
            assert!(d.is_complete());
            assert!(!d.multiplet.is_empty());
            // The true fault explains every SLAT pattern, so the greedy
            // cover is a single fault whose patterns include the truth.
            for (_, candidates) in &d.slat_patterns {
                assert!(candidates.contains(&fault));
            }
        }
    }

    #[test]
    fn composite_behaviour_recovers_both_components() {
        let m = paper_example();
        // A chip that behaves like f0 on t0's... f0 is undetected by t0, so
        // compose: f1's response on t0, f3's response on t1.
        let observed = vec![m.response(0, m.class(0, 1)), m.response(1, m.class(1, 3))];
        let d = slat_diagnose(&m, &observed);
        assert!(d.is_complete());
        assert!(d.multiplet.contains(&1) || d.multiplet.contains(&3));
        assert!(d.multiplet.len() <= 2);
        // Both patterns are SLAT patterns.
        assert_eq!(d.slat_patterns.len(), 2);
    }

    #[test]
    fn out_of_model_response_is_flagged() {
        let m = paper_example();
        // t0 shows 11, which no fault produces under t0 (Z_0 = {00,10,01}).
        let observed = vec!["11".parse().unwrap(), m.good_response(1).clone()];
        let d = slat_diagnose(&m, &observed);
        assert_eq!(d.unexplained_tests, vec![0]);
        assert!(!d.is_complete());
        assert!(d.multiplet.is_empty());
    }

    #[test]
    fn passing_chip_has_empty_diagnosis() {
        let m = paper_example();
        let observed: Vec<BitVec> = (0..m.test_count())
            .map(|t| m.good_response(t).clone())
            .collect();
        let d = slat_diagnose(&m, &observed);
        assert!(d.slat_patterns.is_empty());
        assert!(d.multiplet.is_empty());
        assert!(d.is_complete());
    }

    #[test]
    #[should_panic(expected = "one observed response per test")]
    fn wrong_length_panics() {
        slat_diagnose(&paper_example(), &[]);
    }
}
