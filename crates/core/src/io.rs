//! Plain-text serialization of dictionaries.
//!
//! A dictionary is a *deployment artifact*: it is computed once next to the
//! ATPG flow and consumed later on a tester or in a diagnosis service. This
//! module defines a line-oriented text format that round-trips
//! [`SameDifferentDictionary`] exactly (signatures, baselines, and baseline
//! provenance) and is trivially diffable under version control.
//!
//! ```text
//! same-different-dictionary v1
//! tests 2
//! faults 4
//! outputs 2
//! baseline 0 class 2 vector 01
//! baseline 1 class 1 vector 10
//! fault 0 10
//! fault 1 11
//! fault 2 00
//! fault 3 01
//! ```

use std::error::Error;
use std::fmt;

use sdd_logic::BitVec;

use crate::SameDifferentDictionary;

/// Error produced when parsing a serialized dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDictionaryError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDictionaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dictionary parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDictionaryError {}

impl From<ParseDictionaryError> for sdd_logic::SddError {
    fn from(e: ParseDictionaryError) -> Self {
        sdd_logic::SddError::Parse {
            line: e.line,
            message: e.message,
        }
    }
}

/// Serializes a same/different dictionary to the v1 text format.
///
/// # Example
///
/// ```
/// use sdd_core::{io, SameDifferentDictionary};
///
/// let m = sdd_core::example::paper_example();
/// let d = SameDifferentDictionary::build(&m, &[2, 1]);
/// let text = io::write_same_different(&d);
/// let back = io::read_same_different(&text)?;
/// assert_eq!(back, d);
/// # Ok::<(), sdd_core::io::ParseDictionaryError>(())
/// ```
pub fn write_same_different(dictionary: &SameDifferentDictionary) -> String {
    let mut out = String::new();
    write_same_different_fmt(dictionary, &mut out).expect("writing to a String cannot fail");
    out
}

/// Serializes the v1 text format record-by-record into a [`fmt::Write`]
/// sink — the building block behind [`write_same_different`].
///
/// # Errors
///
/// Propagates the sink's [`fmt::Error`].
pub fn write_same_different_fmt(
    dictionary: &SameDifferentDictionary,
    out: &mut impl fmt::Write,
) -> fmt::Result {
    writeln!(out, "same-different-dictionary v1")?;
    writeln!(out, "tests {}", dictionary.test_count())?;
    writeln!(out, "faults {}", dictionary.fault_count())?;
    writeln!(out, "outputs {}", dictionary.sizes().outputs)?;
    for (test, class) in dictionary.baseline_classes().iter().enumerate() {
        writeln!(
            out,
            "baseline {test} class {class} vector {}",
            dictionary.baseline(test)
        )?;
    }
    for fault in 0..dictionary.fault_count() {
        writeln!(out, "fault {fault} {}", dictionary.signature(fault))?;
    }
    Ok(())
}

/// Streams the v1 text format record-by-record into an [`std::io::Write`]
/// sink (a `BufWriter<File>`, a socket, …) without materializing the whole
/// document in memory — for dictionaries with hundreds of thousands of
/// faults the text blob easily exceeds the dictionary itself.
///
/// # Errors
///
/// Propagates the sink's I/O error.
pub fn write_same_different_to(
    dictionary: &SameDifferentDictionary,
    out: &mut impl std::io::Write,
) -> std::io::Result<()> {
    writeln!(out, "same-different-dictionary v1")?;
    writeln!(out, "tests {}", dictionary.test_count())?;
    writeln!(out, "faults {}", dictionary.fault_count())?;
    writeln!(out, "outputs {}", dictionary.sizes().outputs)?;
    for (test, class) in dictionary.baseline_classes().iter().enumerate() {
        writeln!(
            out,
            "baseline {test} class {class} vector {}",
            dictionary.baseline(test)
        )?;
    }
    for fault in 0..dictionary.fault_count() {
        writeln!(out, "fault {fault} {}", dictionary.signature(fault))?;
    }
    Ok(())
}

/// Parses the v1 text format back into a dictionary.
///
/// # Errors
///
/// Returns [`ParseDictionaryError`] for malformed or inconsistent input
/// (wrong magic, missing records, width mismatches, out-of-order indices).
pub fn read_same_different(text: &str) -> Result<SameDifferentDictionary, ParseDictionaryError> {
    let err = |line: usize, message: &str| ParseDictionaryError {
        line,
        message: message.to_owned(),
    };
    let mut lines = text.lines().enumerate();

    let (line_no, magic) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if magic.trim() != "same-different-dictionary v1" {
        return Err(err(line_no + 1, "bad magic line"));
    }

    let mut read_header = |name: &str| -> Result<usize, ParseDictionaryError> {
        let (idx, line) = lines.next().ok_or_else(|| err(0, "truncated header"))?;
        let rest = line
            .strip_prefix(name)
            .ok_or_else(|| err(idx + 1, &format!("expected `{name} <count>`")))?;
        rest.trim()
            .parse()
            .map_err(|_| err(idx + 1, &format!("bad {name} count")))
    };
    let tests = read_header("tests")?;
    let faults = read_header("faults")?;
    let outputs = read_header("outputs")?;

    let mut baselines: Vec<BitVec> = Vec::with_capacity(tests);
    let mut classes: Vec<u32> = Vec::with_capacity(tests);
    let mut signatures: Vec<BitVec> = Vec::with_capacity(faults);

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("baseline") => {
                let index: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "bad baseline index"))?;
                if index != baselines.len() {
                    return Err(err(line_no, "baseline records out of order"));
                }
                if parts.next() != Some("class") {
                    return Err(err(line_no, "expected `class`"));
                }
                let class: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "bad class"))?;
                if parts.next() != Some("vector") {
                    return Err(err(line_no, "expected `vector`"));
                }
                let vector: BitVec = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "bad baseline vector"))?;
                if vector.len() != outputs {
                    return Err(err(line_no, "baseline width differs from outputs"));
                }
                baselines.push(vector);
                classes.push(class);
            }
            Some("fault") => {
                let index: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "bad fault index"))?;
                if index != signatures.len() {
                    return Err(err(line_no, "fault records out of order"));
                }
                let signature: BitVec = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "bad signature"))?;
                if signature.len() != tests {
                    return Err(err(line_no, "signature width differs from tests"));
                }
                signatures.push(signature);
            }
            Some(other) => return Err(err(line_no, &format!("unknown record {other:?}"))),
            None => unreachable!("empty lines are skipped"),
        }
    }

    if baselines.len() != tests {
        return Err(err(0, "missing baseline records"));
    }
    if signatures.len() != faults {
        return Err(err(0, "missing fault records"));
    }
    SameDifferentDictionary::from_parts(signatures, baselines, classes, outputs)
        .map_err(|e| err(0, &e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::SameDifferentDictionary;

    fn sample() -> SameDifferentDictionary {
        SameDifferentDictionary::build(&paper_example(), &[2, 1])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let d = sample();
        let text = write_same_different(&d);
        let back = read_same_different(&text).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.indistinguished_pairs(), d.indistinguished_pairs());
        assert_eq!(write_same_different(&back), text, "writing is canonical");
    }

    #[test]
    fn format_is_human_readable() {
        let text = write_same_different(&sample());
        assert!(text.starts_with("same-different-dictionary v1\n"));
        assert!(text.contains("baseline 0 class 2 vector 01"));
        assert!(text.contains("fault 3 01"));
    }

    #[test]
    fn streaming_writer_agrees_with_in_memory_writer() {
        let d = sample();
        let text = write_same_different(&d);
        let mut bytes = Vec::new();
        write_same_different_to(&d, &mut bytes).unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), text);
    }

    #[test]
    fn rejects_bad_magic() {
        let e = read_same_different("pass-fail v1\n").unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");
    }

    #[test]
    fn rejects_truncation_and_disorder() {
        let good = write_same_different(&sample());
        // Drop the last fault record.
        let truncated: String = good
            .lines()
            .take(good.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(read_same_different(&truncated).is_err());
        // Swap two fault records.
        let swapped = good
            .replace("fault 0 10", "fault TMP")
            .replace("fault 1 11", "fault 0 10")
            .replace("fault TMP", "fault 1 11");
        assert!(read_same_different(&swapped).is_err());
    }

    #[test]
    fn rejects_width_mismatches() {
        let good = write_same_different(&sample());
        let bad = good.replace("vector 01", "vector 011");
        let e = read_same_different(&bad).unwrap_err();
        assert!(e.message.contains("width"), "{e}");
        let bad = good.replace("fault 2 00", "fault 2 000");
        assert!(read_same_different(&bad).is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_same_different("").is_err());
    }
}
