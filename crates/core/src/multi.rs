//! Multiple baselines per test — the generalization the paper points at
//! ("One can select more than one baseline vector for a test vector. In
//! this work we select only one per test vector.").
//!
//! With `B` baselines per test the dictionary stores `B` bits per
//! (fault, test) — one equality comparison per baseline — at a cost of
//! `Σ_j B_j·(n + m)` bits. Each extra baseline refines the partition
//! induced by its test, so resolution improves monotonically in `B` and
//! reaches full-dictionary resolution once every response class of a test
//! is distinguishable by the chosen baselines.

use sdd_logic::{BitVec, SddError};
use sdd_sim::{Partition, ResponseMatrix};

use crate::score_candidates;

/// A same/different dictionary with (up to) several baseline vectors per
/// test.
///
/// # Example
///
/// ```
/// use sdd_core::multi::MultiBaselineDictionary;
///
/// let matrix = sdd_core::example::paper_example();
/// // Two baselines for t0, none extra for t1.
/// let d = MultiBaselineDictionary::build(&matrix, &[vec![2, 0], vec![1]]);
/// assert_eq!(d.baseline_count(), 3);
/// assert_eq!(d.indistinguished_pairs(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiBaselineDictionary {
    signatures: Vec<BitVec>,
    baselines: Vec<Vec<BitVec>>,
    baseline_classes: Vec<Vec<u32>>,
    faults: usize,
    outputs: usize,
}

impl MultiBaselineDictionary {
    /// Builds the dictionary from one *list* of baseline classes per test.
    ///
    /// # Panics
    ///
    /// Panics if the outer length differs from the test count or any class
    /// is out of range for its test.
    pub fn build(matrix: &ResponseMatrix, baselines: &[Vec<u32>]) -> Self {
        assert_eq!(
            baselines.len(),
            matrix.test_count(),
            "one baseline list per test"
        );
        let baseline_vectors: Vec<Vec<BitVec>> = baselines
            .iter()
            .enumerate()
            .map(|(test, classes)| classes.iter().map(|&c| matrix.response(test, c)).collect())
            .collect();
        let signatures = (0..matrix.fault_count())
            .map(|fault| {
                let mut bits = BitVec::new();
                for (test, classes) in baselines.iter().enumerate() {
                    let class = matrix.class(test, fault);
                    bits.extend(classes.iter().map(|&b| class != b));
                }
                bits
            })
            .collect();
        Self {
            signatures,
            baselines: baseline_vectors,
            baseline_classes: baselines.to_vec(),
            faults: matrix.fault_count(),
            outputs: matrix.output_count(),
        }
    }

    /// Total number of baselines across all tests (`Σ_j B_j`).
    pub fn baseline_count(&self) -> usize {
        self.baselines.iter().map(Vec::len).sum()
    }

    /// The baselines of test `j`.
    pub fn baselines(&self, test: usize) -> &[BitVec] {
        &self.baselines[test]
    }

    /// The signature of fault `i`: `Σ_j B_j` bits, tests concatenated in
    /// order.
    pub fn signature(&self, fault: usize) -> &BitVec {
        &self.signatures[fault]
    }

    /// Dictionary size in bits: `Σ_j B_j·(n + m)` — each baseline costs a
    /// bit column plus its stored vector.
    pub fn size_bits(&self) -> u64 {
        self.baseline_count() as u64 * (self.faults as u64 + self.outputs as u64)
    }

    /// The partition of faults by signature equality.
    pub fn partition(&self) -> Partition {
        let width = self.signatures.first().map_or(0, BitVec::len);
        let mut p = Partition::unit(self.signatures.len());
        for bit in 0..width {
            p.refine_bits(|i| self.signatures[i].bit(bit));
        }
        p
    }

    /// Fault pairs the dictionary cannot distinguish.
    pub fn indistinguished_pairs(&self) -> u64 {
        self.partition().indistinguished_pairs()
    }

    /// Encodes observed per-test responses into a comparable signature.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] when the number of responses
    /// differs from the test count, and [`SddError::WidthMismatch`] when a
    /// response's width differs from its baselines'.
    pub fn encode_observed(&self, responses: &[BitVec]) -> Result<BitVec, SddError> {
        if responses.len() != self.baselines.len() {
            return Err(SddError::CountMismatch {
                context: "responses per test",
                expected: self.baselines.len(),
                actual: responses.len(),
            });
        }
        let mut bits = BitVec::new();
        for (observed, baselines) in responses.iter().zip(&self.baselines) {
            for b in baselines {
                if observed.len() != b.len() {
                    return Err(SddError::WidthMismatch {
                        context: "observed response width",
                        expected: b.len(),
                        actual: observed.len(),
                    });
                }
                bits.push(observed != b);
            }
        }
        Ok(bits)
    }
}

/// Greedily selects up to `per_test` baselines for every test: each test
/// repeatedly takes the candidate with the largest `dist` gain against the
/// current partition, stopping early when no candidate helps.
///
/// `per_test = 1` coincides with one Procedure 1 pass in natural order.
///
/// # Example
///
/// ```
/// use sdd_core::multi::{select_multi_baselines, MultiBaselineDictionary};
///
/// let matrix = sdd_core::example::paper_example();
/// let baselines = select_multi_baselines(&matrix, 2);
/// let d = MultiBaselineDictionary::build(&matrix, &baselines);
/// assert_eq!(d.indistinguished_pairs(), 0);
/// ```
pub fn select_multi_baselines(matrix: &ResponseMatrix, per_test: usize) -> Vec<Vec<u32>> {
    let mut pairs = Partition::unit(matrix.fault_count());
    let mut baselines: Vec<Vec<u32>> = vec![Vec::new(); matrix.test_count()];
    for (test, chosen) in baselines.iter_mut().enumerate() {
        for _ in 0..per_test {
            let gains = score_candidates(matrix, test, &pairs);
            let (best, &gain) = gains
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .expect("at least the fault-free class");
            if gain == 0 {
                break;
            }
            chosen.push(best as u32);
            let classes = matrix.classes(test);
            pairs.refine_bits(|i| classes[i] == best as u32);
        }
        // Every test contributes at least one baseline so the dictionary
        // stays a strict generalization of the single-baseline one.
        if chosen.is_empty() {
            chosen.push(0);
        }
    }
    baselines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::{select_baselines_once, SameDifferentDictionary};

    #[test]
    fn single_baseline_matches_same_different() {
        let m = paper_example();
        let multi = select_multi_baselines(&m, 1);
        let flat: Vec<u32> = multi.iter().map(|b| b[0]).collect();
        let (single, _) = select_baselines_once(&m, &[0, 1], None);
        assert_eq!(flat, single);
        let md = MultiBaselineDictionary::build(&m, &multi);
        let sd = SameDifferentDictionary::build(&m, &single);
        assert_eq!(md.indistinguished_pairs(), sd.indistinguished_pairs());
        assert_eq!(md.size_bits(), sd.size_bits());
    }

    #[test]
    fn more_baselines_never_hurt() {
        let m = paper_example();
        let mut last = u64::MAX;
        for per_test in 1..=3 {
            let baselines = select_multi_baselines(&m, per_test);
            let d = MultiBaselineDictionary::build(&m, &baselines);
            assert!(d.indistinguished_pairs() <= last);
            last = d.indistinguished_pairs();
        }
        assert_eq!(last, 0);
    }

    #[test]
    fn greedy_stops_when_nothing_helps() {
        let m = paper_example();
        let baselines = select_multi_baselines(&m, 10);
        // The example resolves fully with a handful of baselines; greedy
        // must not pile on useless ones.
        let total: usize = baselines.iter().map(Vec::len).sum();
        assert!(total <= 4, "greedy kept {total} baselines");
    }

    #[test]
    fn encode_observed_matches_signature() {
        let m = paper_example();
        let baselines = select_multi_baselines(&m, 2);
        let d = MultiBaselineDictionary::build(&m, &baselines);
        for fault in 0..m.fault_count() {
            let responses: Vec<BitVec> = (0..m.test_count())
                .map(|t| m.response(t, m.class(t, fault)))
                .collect();
            assert_eq!(d.encode_observed(&responses).unwrap(), *d.signature(fault));
        }
    }

    #[test]
    fn size_formula() {
        let m = paper_example();
        let d = MultiBaselineDictionary::build(&m, &[vec![0, 1], vec![2]]);
        // 3 baselines × (4 faults + 2 outputs) = 18 bits.
        assert_eq!(d.size_bits(), 18);
        assert_eq!(d.baseline_count(), 3);
        assert_eq!(d.baselines(0).len(), 2);
        assert_eq!(d.signature(0).len(), 3);
    }

    #[test]
    #[should_panic(expected = "one baseline list per test")]
    fn wrong_outer_length_panics() {
        MultiBaselineDictionary::build(&paper_example(), &[vec![0]]);
    }
}
