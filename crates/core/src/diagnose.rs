//! Cause-effect diagnosis: matching observed tester responses against a
//! dictionary to produce candidate faults.
//!
//! All three dictionary types diagnose the same way — compare the observed
//! behaviour with each stored fault and return the best matches — but they
//! compare different amounts of information:
//!
//! * [`FullDictionary::diagnose`] compares complete output vectors;
//! * [`PassFailDictionary::diagnose`] compares pass/fail signatures;
//! * [`SameDifferentDictionary::diagnose`] compares same/different
//!   signatures computed against the stored baselines.
//!
//! Every entry point also has a `_masked` variant taking ternary
//! [`MaskedBitVec`] observations — the shape corrupted tester datalogs
//! actually produce (see `sdd_sim::CorruptionModel`). Masked diagnosis never
//! panics on partial data: unknown bits are simply excluded from the
//! comparison, and the result reports how much evidence supported it.
//!
//! [`two_phase_diagnose`] combines a cheap dictionary screen with exact
//! fault simulation of the surviving candidates (the hybrid of the
//! paper's references 8, 12 and 14).

use sdd_fault::{FaultId, FaultUniverse};
use sdd_logic::{BitVec, MaskedBitVec, SddError};
use sdd_netlist::{Circuit, CombView};
use sdd_sim::reference;

use crate::{FullDictionary, PassFailDictionary, SameDifferentDictionary};

/// The outcome of matching an observed behaviour against a dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosisReport {
    /// Faults whose stored behaviour matches the observation exactly
    /// (positions into the dictionary's fault list).
    pub exact: Vec<usize>,
    /// Faults at minimum distance from the observation (equals `exact`
    /// when exact matches exist).
    pub nearest: Vec<usize>,
    /// The minimum distance (0 when exact matches exist).
    pub distance: usize,
}

impl DiagnosisReport {
    /// The best candidate set: exact matches if any, else nearest.
    pub fn candidates(&self) -> &[usize] {
        if self.exact.is_empty() {
            &self.nearest
        } else {
            &self.exact
        }
    }
}

/// How much of the observation supported a noisy diagnosis — the
/// degradation ladder masked matching walks down as data gets worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MatchQuality {
    /// Every bit was known and the best candidates match all of them —
    /// as strong as a clean-data exact match.
    Exact,
    /// Some bits were unknown, but the best candidates agree with every
    /// known bit: consistent under the mask.
    ConsistentUnderMask,
    /// No candidate explains all known bits; the report is a best-effort
    /// ranking by known-bit mismatches.
    Ranked,
}

/// One candidate fault in a noisy diagnosis, with the evidence behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredCandidate {
    /// Position in the dictionary's fault list.
    pub fault: usize,
    /// Known observation bits at which the stored behaviour disagrees.
    pub mismatches: usize,
    /// Known observation bits compared.
    pub known: usize,
    /// Smoothed agreement fraction in `(0, 1)`: `(known - mismatches + 1) /
    /// (known + 2)`. A fully-unknown observation scores every fault `0.5`
    /// (no evidence), and confidence grows with both agreement and the
    /// amount of data that survived corruption.
    pub confidence: f64,
}

impl ScoredCandidate {
    fn new(fault: usize, mismatches: usize, known: usize) -> Self {
        Self {
            fault,
            mismatches,
            known,
            confidence: (known - mismatches + 1) as f64 / (known + 2) as f64,
        }
    }
}

/// The outcome of matching a partial/noisy observation against a
/// dictionary: a full ranking instead of a bare candidate set, because with
/// missing data the caller needs to see how steeply confidence falls off.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyDiagnosisReport {
    /// Every fault, ranked by known-bit mismatches (ties in fault order).
    pub ranking: Vec<ScoredCandidate>,
    /// Faults tied at the minimum mismatch count (positions into the
    /// dictionary's fault list) — the noisy analogue of
    /// [`DiagnosisReport::candidates`].
    pub best: Vec<usize>,
    /// Where the result landed on the degradation ladder.
    pub quality: MatchQuality,
    /// Known observation bits compared (identical for every candidate:
    /// the mask is a property of the observation).
    pub known: usize,
}

impl NoisyDiagnosisReport {
    /// The best candidate set, mirroring [`DiagnosisReport::candidates`].
    pub fn candidates(&self) -> &[usize] {
        &self.best
    }

    /// The minimum known-bit mismatch count.
    pub fn distance(&self) -> usize {
        self.ranking.first().map_or(0, |c| c.mismatches)
    }

    fn from_scores(mut scored: Vec<ScoredCandidate>, fully_known: bool) -> Self {
        scored.sort_by(|a, b| a.mismatches.cmp(&b.mismatches).then(a.fault.cmp(&b.fault)));
        let min = scored.first().map_or(0, |c| c.mismatches);
        let best: Vec<usize> = scored
            .iter()
            .take_while(|c| c.mismatches == min)
            .map(|c| c.fault)
            .collect();
        let known = scored.first().map_or(0, |c| c.known);
        let quality = match (min, fully_known) {
            (0, true) => MatchQuality::Exact,
            (0, false) => MatchQuality::ConsistentUnderMask,
            _ => MatchQuality::Ranked,
        };
        Self {
            ranking: scored,
            best,
            quality,
            known,
        }
    }
}

/// Matches an observed signature against stored per-fault signatures by
/// Hamming distance.
///
/// # Errors
///
/// Returns [`SddError::Empty`] when there are no signatures to match, and
/// [`SddError::WidthMismatch`] when `observed`'s width differs from the
/// signatures'.
pub fn match_signatures(
    signatures: &[BitVec],
    observed: &BitVec,
) -> Result<DiagnosisReport, SddError> {
    if signatures.is_empty() {
        return Err(SddError::Empty {
            context: "signature dictionary",
        });
    }
    let mut distance = usize::MAX;
    let mut nearest = Vec::new();
    for (fault, signature) in signatures.iter().enumerate() {
        let d = signature
            .hamming_distance(observed)
            .ok_or(SddError::WidthMismatch {
                context: "observed signature",
                expected: signature.len(),
                actual: observed.len(),
            })?;
        if d < distance {
            distance = d;
            nearest.clear();
        }
        if d == distance {
            nearest.push(fault);
        }
    }
    let exact = if distance == 0 {
        nearest.clone()
    } else {
        Vec::new()
    };
    Ok(DiagnosisReport {
        exact,
        nearest,
        distance,
    })
}

/// Matches a partial observed signature against stored per-fault signatures
/// by masked Hamming distance: only known observation bits count.
///
/// # Errors
///
/// Returns [`SddError::Empty`] when there are no signatures to match, and
/// [`SddError::WidthMismatch`] when `observed`'s width differs from the
/// signatures'.
pub fn match_signatures_masked(
    signatures: &[BitVec],
    observed: &MaskedBitVec,
) -> Result<NoisyDiagnosisReport, SddError> {
    let mut scratch = Vec::new();
    let (quality, known) = match_signatures_masked_into(signatures, observed, &mut scratch)?;
    let min = scratch.first().map_or(0, |c| c.mismatches);
    let best = scratch
        .iter()
        .take_while(|c| c.mismatches == min)
        .map(|c| c.fault)
        .collect();
    Ok(NoisyDiagnosisReport {
        ranking: scratch,
        best,
        quality,
        known,
    })
}

/// [`match_signatures_masked`] with a caller-owned scratch buffer: `scratch`
/// is cleared, filled with every fault's score, and sorted by mismatch count
/// (ties in fault order). Returns the match quality and the known-bit count.
///
/// Long-running services handle thousands of diagnosis queries per loaded
/// dictionary; reusing one ranking buffer per worker keeps the hot path free
/// of per-request allocation (beyond what the report itself would need).
///
/// # Errors
///
/// Returns [`SddError::Empty`] when there are no signatures to match, and
/// [`SddError::WidthMismatch`] when `observed`'s width differs from the
/// signatures'.
pub fn match_signatures_masked_into(
    signatures: &[BitVec],
    observed: &MaskedBitVec,
    scratch: &mut Vec<ScoredCandidate>,
) -> Result<(MatchQuality, usize), SddError> {
    if signatures.is_empty() {
        return Err(SddError::Empty {
            context: "signature dictionary",
        });
    }
    scratch.clear();
    scratch.reserve(signatures.len());
    for (fault, signature) in signatures.iter().enumerate() {
        let d = observed.distance_to(signature)?;
        scratch.push(ScoredCandidate::new(fault, d.mismatches, d.known));
    }
    scratch.sort_by(|a, b| a.mismatches.cmp(&b.mismatches).then(a.fault.cmp(&b.fault)));
    let min = scratch.first().map_or(0, |c| c.mismatches);
    let known = scratch.first().map_or(0, |c| c.known);
    let quality = match (min, observed.is_fully_known()) {
        (0, true) => MatchQuality::Exact,
        (0, false) => MatchQuality::ConsistentUnderMask,
        _ => MatchQuality::Ranked,
    };
    Ok((quality, known))
}

impl PassFailDictionary {
    /// Diagnoses from an observed pass/fail signature (bit `j` = test `t_j`
    /// failed on the tester).
    ///
    /// # Errors
    ///
    /// Returns [`SddError::WidthMismatch`] when the signature width is wrong
    /// and [`SddError::Empty`] for an empty dictionary.
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_core::PassFailDictionary;
    /// let d = PassFailDictionary::build(&sdd_core::example::paper_example());
    /// let report = d.diagnose(&"01".parse()?)?;
    /// assert_eq!(report.candidates(), &[0]); // f0 fails only t1
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn diagnose(&self, observed: &BitVec) -> Result<DiagnosisReport, SddError> {
        match_signatures(self.signatures(), observed)
    }

    /// Diagnoses from a partial pass/fail signature: tests whose outcome was
    /// lost to datalog corruption are unknown bits and do not count against
    /// any candidate.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::WidthMismatch`] when the signature width is wrong
    /// and [`SddError::Empty`] for an empty dictionary.
    pub fn diagnose_masked(
        &self,
        observed: &MaskedBitVec,
    ) -> Result<NoisyDiagnosisReport, SddError> {
        match_signatures_masked(self.signatures(), observed)
    }
}

impl SameDifferentDictionary {
    /// Diagnoses from the observed per-test output vectors: each response is
    /// first compared against the test's stored baseline to form the
    /// observed same/different signature, then matched.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] / [`SddError::WidthMismatch`]
    /// when the responses do not line up with the dictionary and
    /// [`SddError::Empty`] for an empty dictionary.
    pub fn diagnose(&self, responses: &[BitVec]) -> Result<DiagnosisReport, SddError> {
        let observed = self.encode_observed(responses)?;
        match_signatures(self.signatures(), &observed)
    }

    /// Diagnoses from partial per-test observations. A test's signature bit
    /// is *different* as soon as any known bit disagrees with the baseline,
    /// *same* only when the whole response is known and equal, and unknown
    /// otherwise — so lost data can only widen, never corrupt, the match.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] / [`SddError::WidthMismatch`]
    /// when the responses do not line up with the dictionary and
    /// [`SddError::Empty`] for an empty dictionary.
    pub fn diagnose_masked(
        &self,
        responses: &[MaskedBitVec],
    ) -> Result<NoisyDiagnosisReport, SddError> {
        let observed = self.encode_observed_masked(responses)?;
        match_signatures_masked(self.signatures(), &observed)
    }
}

impl FullDictionary {
    /// Diagnoses from the observed per-test output vectors, scoring each
    /// fault by the total number of output bits at which its stored
    /// responses differ from the observation.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] / [`SddError::WidthMismatch`]
    /// when the responses do not line up with the dictionary.
    pub fn diagnose(&self, responses: &[BitVec]) -> Result<DiagnosisReport, SddError> {
        let matrix = self.matrix();
        if responses.len() != matrix.test_count() {
            return Err(SddError::CountMismatch {
                context: "responses per test",
                expected: matrix.test_count(),
                actual: responses.len(),
            });
        }
        // Distance from the observation to each response class, per test.
        let mut per_test: Vec<Vec<usize>> = Vec::with_capacity(matrix.test_count());
        for (test, observed) in responses.iter().enumerate() {
            let mut classes = Vec::with_capacity(matrix.class_count(test));
            for class in 0..matrix.class_count(test) as u32 {
                let stored = matrix.response(test, class);
                let d = stored
                    .hamming_distance(observed)
                    .ok_or(SddError::WidthMismatch {
                        context: "observed response width",
                        expected: stored.len(),
                        actual: observed.len(),
                    })?;
                classes.push(d);
            }
            per_test.push(classes);
        }
        let mut distance = usize::MAX;
        let mut nearest = Vec::new();
        for fault in 0..matrix.fault_count() {
            let d: usize = (0..matrix.test_count())
                .map(|test| per_test[test][matrix.class(test, fault) as usize])
                .sum();
            if d < distance {
                distance = d;
                nearest.clear();
            }
            if d == distance {
                nearest.push(fault);
            }
        }
        let exact = if distance == 0 {
            nearest.clone()
        } else {
            Vec::new()
        };
        Ok(DiagnosisReport {
            exact,
            nearest,
            distance,
        })
    }

    /// Diagnoses from partial per-test observations by masked Hamming
    /// distance: each fault is scored by how many *known* observed output
    /// bits its stored responses contradict.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] / [`SddError::WidthMismatch`]
    /// when the responses do not line up with the dictionary.
    pub fn diagnose_masked(
        &self,
        responses: &[MaskedBitVec],
    ) -> Result<NoisyDiagnosisReport, SddError> {
        let matrix = self.matrix();
        if responses.len() != matrix.test_count() {
            return Err(SddError::CountMismatch {
                context: "responses per test",
                expected: matrix.test_count(),
                actual: responses.len(),
            });
        }
        let mut per_test: Vec<Vec<usize>> = Vec::with_capacity(matrix.test_count());
        let mut known_total = 0usize;
        for (test, observed) in responses.iter().enumerate() {
            let mut classes = Vec::with_capacity(matrix.class_count(test));
            for class in 0..matrix.class_count(test) as u32 {
                let d = observed.distance_to(&matrix.response(test, class))?;
                classes.push(d.mismatches);
            }
            known_total += observed.known_count();
            per_test.push(classes);
        }
        let fully_known = responses.iter().all(MaskedBitVec::is_fully_known);
        let scored = (0..matrix.fault_count())
            .map(|fault| {
                let mismatches: usize = (0..matrix.test_count())
                    .map(|test| per_test[test][matrix.class(test, fault) as usize])
                    .sum();
                ScoredCandidate::new(fault, mismatches, known_total)
            })
            .collect();
        Ok(NoisyDiagnosisReport::from_scores(scored, fully_known))
    }
}

/// Simulates the per-test responses a tester would observe for a defect
/// modeled by `fault` — a convenience for examples and tests.
pub fn observed_responses(
    circuit: &Circuit,
    view: &CombView,
    fault: sdd_fault::Fault,
    tests: &[BitVec],
) -> Vec<BitVec> {
    tests
        .iter()
        .map(|t| reference::faulty_response(circuit, view, fault, t))
        .collect()
}

/// Two-phase diagnosis: a same/different dictionary screens the fault list
/// down to its best matches, then exact fault simulation of only those
/// candidates ranks them by full-response distance.
///
/// Returns `(fault id, full-response distance)` sorted by distance — the
/// same answer a full dictionary would give for the screened candidates, at
/// a fraction of the storage.
///
/// # Errors
///
/// Returns [`SddError::CountMismatch`] / [`SddError::WidthMismatch`] when
/// the observation does not line up with the dictionary or tests.
pub fn two_phase_diagnose(
    circuit: &Circuit,
    view: &CombView,
    universe: &FaultUniverse,
    faults: &[FaultId],
    tests: &[BitVec],
    observed: &[BitVec],
    dictionary: &SameDifferentDictionary,
) -> Result<Vec<(FaultId, usize)>, SddError> {
    let screened = dictionary.diagnose(observed)?;
    let mut ranked = Vec::with_capacity(screened.candidates().len());
    for &pos in screened.candidates() {
        let id = faults[pos];
        let mut distance = 0usize;
        for (test, seen) in tests.iter().zip(observed) {
            let simulated = reference::faulty_response(circuit, view, universe.fault(id), test);
            distance += simulated
                .hamming_distance(seen)
                .ok_or(SddError::WidthMismatch {
                    context: "observed response width",
                    expected: simulated.len(),
                    actual: seen.len(),
                })?;
        }
        ranked.push((id, distance));
    }
    ranked.sort_by_key(|&(id, d)| (d, id));
    Ok(ranked)
}

/// Two-phase diagnosis from partial observations: the masked same/different
/// screen picks candidates, then exact simulation re-ranks them by masked
/// full-response distance (mismatches over known bits only).
///
/// # Errors
///
/// Returns [`SddError::CountMismatch`] / [`SddError::WidthMismatch`] when
/// the observation does not line up with the dictionary or tests.
pub fn two_phase_diagnose_masked(
    circuit: &Circuit,
    view: &CombView,
    universe: &FaultUniverse,
    faults: &[FaultId],
    tests: &[BitVec],
    observed: &[MaskedBitVec],
    dictionary: &SameDifferentDictionary,
) -> Result<Vec<(FaultId, usize)>, SddError> {
    let screened = dictionary.diagnose_masked(observed)?;
    let mut ranked = Vec::with_capacity(screened.candidates().len());
    for &pos in screened.candidates() {
        let id = faults[pos];
        let mut distance = 0usize;
        for (test, seen) in tests.iter().zip(observed) {
            let simulated = reference::faulty_response(circuit, view, universe.fault(id), test);
            distance += seen.distance_to(&simulated)?.mismatches;
        }
        ranked.push((id, distance));
    }
    ranked.sort_by_key(|&(id, d)| (d, id));
    Ok(ranked)
}

/// Merges per-shard masked rankings into one global [`NoisyDiagnosisReport`]
/// that is bit-identical to diagnosing against the unsharded dictionary.
///
/// Each entry pairs a shard's first global fault index with its *sorted*
/// local ranking (as produced by [`match_signatures_masked_into`] or any
/// `diagnose_masked`); local fault positions are rebased by the offset and
/// the rankings are k-way merged on `(mismatches, global fault)` — exactly
/// the unsharded sort key, so for shards that tile the fault list the merged
/// order equals the global stable sort. In particular, candidates from
/// *different* shards with equal mismatches tie-break on global fault
/// index, whatever order the shards appear in `shards`. A shard with an
/// empty ranking (it matched nothing — e.g. it was filtered out upstream)
/// contributes nothing and is otherwise ignored; only *all* shards being
/// empty is an error. `fully_known` is whether the
/// observation had no masked bits (a property of the observation, identical
/// for every shard), and it re-derives the quality ladder the same way a
/// single-dictionary diagnosis would: minimum mismatches of zero means
/// [`MatchQuality::Exact`] on full data, [`MatchQuality::ConsistentUnderMask`]
/// under a mask, anything else is [`MatchQuality::Ranked`].
///
/// # Errors
///
/// Returns [`SddError::Empty`] when no shard contributed any candidate and
/// [`SddError::CountMismatch`] when shards disagree on the known-bit count
/// (they scored different observations).
///
/// # Example
///
/// ```
/// use sdd_core::diagnose::{match_signatures_masked, merge_shard_rankings};
/// use sdd_core::PassFailDictionary;
/// use sdd_logic::MaskedBitVec;
///
/// let d = PassFailDictionary::build(&sdd_core::example::paper_example());
/// let observed = MaskedBitVec::from_known("01".parse()?);
/// let whole = d.diagnose_masked(&observed)?;
/// // Split the 4 faults into two shards and diagnose each independently.
/// let lo = match_signatures_masked(&d.signatures()[..2], &observed)?;
/// let hi = match_signatures_masked(&d.signatures()[2..], &observed)?;
/// let merged = merge_shard_rankings(
///     &[(0, &lo.ranking[..]), (2, &hi.ranking[..])],
///     observed.is_fully_known(),
/// )?;
/// assert_eq!(merged, whole);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn merge_shard_rankings(
    shards: &[(usize, &[ScoredCandidate])],
    fully_known: bool,
) -> Result<NoisyDiagnosisReport, SddError> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let total: usize = shards.iter().map(|(_, r)| r.len()).sum();
    if total == 0 {
        return Err(SddError::Empty {
            context: "shard rankings",
        });
    }
    let known = shards
        .iter()
        .flat_map(|(_, r)| r.first())
        .map(|c| c.known)
        .max()
        .unwrap_or(0);
    // Seed the heap with each shard's best candidate; every pop advances
    // one shard's cursor, so the merge is O(total · log shards).
    let mut heap = BinaryHeap::with_capacity(shards.len());
    for (index, &(offset, ranking)) in shards.iter().enumerate() {
        if let Some(c) = ranking.first() {
            if c.known != known {
                return Err(SddError::CountMismatch {
                    context: "known bits across shard rankings",
                    expected: known,
                    actual: c.known,
                });
            }
            heap.push(Reverse((c.mismatches, offset + c.fault, index, 0usize)));
        }
    }
    let mut ranking = Vec::with_capacity(total);
    while let Some(Reverse((mismatches, fault, index, pos))) = heap.pop() {
        let (offset, shard) = shards[index];
        let local = shard[pos];
        if local.known != known {
            return Err(SddError::CountMismatch {
                context: "known bits across shard rankings",
                expected: known,
                actual: local.known,
            });
        }
        ranking.push(ScoredCandidate { fault, ..local });
        debug_assert_eq!(local.mismatches, mismatches);
        if let Some(next) = shard.get(pos + 1) {
            debug_assert!(
                (next.mismatches, next.fault) > (local.mismatches, local.fault),
                "shard rankings must be sorted by (mismatches, fault)"
            );
            heap.push(Reverse((
                next.mismatches,
                offset + next.fault,
                index,
                pos + 1,
            )));
        }
    }
    let min = ranking[0].mismatches;
    let best = ranking
        .iter()
        .take_while(|c| c.mismatches == min)
        .map(|c| c.fault)
        .collect();
    let quality = match (min, fully_known) {
        (0, true) => MatchQuality::Exact,
        (0, false) => MatchQuality::ConsistentUnderMask,
        _ => MatchQuality::Ranked,
    };
    Ok(NoisyDiagnosisReport {
        ranking,
        best,
        quality,
        known,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::{select_baselines, Procedure1Options};

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    fn mv(s: &str) -> MaskedBitVec {
        s.parse().unwrap()
    }

    #[test]
    fn exact_match_wins() {
        let sigs = vec![bv("00"), bv("01"), bv("11")];
        let r = match_signatures(&sigs, &bv("01")).unwrap();
        assert_eq!(r.exact, vec![1]);
        assert_eq!(r.candidates(), &[1]);
        assert_eq!(r.distance, 0);
    }

    #[test]
    fn nearest_match_reports_all_ties() {
        let sigs = vec![bv("00"), bv("11"), bv("10")];
        let r = match_signatures(&sigs, &bv("01")).unwrap();
        assert!(r.exact.is_empty());
        assert_eq!(r.nearest, vec![0, 1]); // both at distance 1
        assert_eq!(r.distance, 1);
    }

    #[test]
    fn width_mismatch_is_an_error_not_a_panic() {
        let sigs = vec![bv("00")];
        let e = match_signatures(&sigs, &bv("000")).unwrap_err();
        assert!(matches!(
            e,
            SddError::WidthMismatch {
                expected: 2,
                actual: 3,
                ..
            }
        ));
        let e = match_signatures_masked(&sigs, &mv("0X0")).unwrap_err();
        assert!(matches!(e, SddError::WidthMismatch { .. }));
    }

    #[test]
    fn empty_dictionary_is_an_error() {
        assert!(matches!(
            match_signatures(&[], &bv("01")),
            Err(SddError::Empty { .. })
        ));
        assert!(matches!(
            match_signatures_masked(&[], &mv("01")),
            Err(SddError::Empty { .. })
        ));
    }

    #[test]
    fn masked_match_walks_the_degradation_ladder() {
        let sigs = vec![bv("00"), bv("01"), bv("11")];
        // Fully known, exact.
        let r = match_signatures_masked(&sigs, &mv("01")).unwrap();
        assert_eq!(r.quality, MatchQuality::Exact);
        assert_eq!(r.candidates(), &[1]);
        assert_eq!(r.distance(), 0);
        // Unknown bit: both consistent candidates surface.
        let r = match_signatures_masked(&sigs, &mv("0X")).unwrap();
        assert_eq!(r.quality, MatchQuality::ConsistentUnderMask);
        assert_eq!(r.candidates(), &[0, 1]);
        // Nothing consistent: ranked.
        let r = match_signatures_masked(&sigs, &mv("10")).unwrap();
        assert_eq!(r.quality, MatchQuality::Ranked);
        assert_eq!(r.candidates(), &[0, 2]); // one mismatch each
        assert_eq!(r.ranking.len(), 3);
        assert!(r.ranking[0].confidence > r.ranking[2].confidence);
    }

    #[test]
    fn scratch_variant_agrees_and_reuses_the_buffer() {
        let sigs = vec![bv("00"), bv("01"), bv("11")];
        let mut scratch = Vec::new();
        for obs in ["01", "0X", "10", "XX"] {
            let observed = mv(obs);
            let report = match_signatures_masked(&sigs, &observed).unwrap();
            let (quality, known) =
                match_signatures_masked_into(&sigs, &observed, &mut scratch).unwrap();
            assert_eq!(quality, report.quality, "obs {obs}");
            assert_eq!(known, report.known, "obs {obs}");
            assert_eq!(scratch, report.ranking, "obs {obs}");
        }
        let capacity = scratch.capacity();
        let _ = match_signatures_masked_into(&sigs, &mv("11"), &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), capacity, "no reallocation on reuse");
    }

    #[test]
    fn fully_unknown_observation_is_uninformative_not_fatal() {
        let sigs = vec![bv("00"), bv("01")];
        let r = match_signatures_masked(&sigs, &mv("XX")).unwrap();
        assert_eq!(r.candidates(), &[0, 1], "no evidence, all candidates");
        assert_eq!(r.known, 0);
        for c in &r.ranking {
            assert!((c.confidence - 0.5).abs() < 1e-12, "no-evidence prior");
        }
    }

    #[test]
    fn confidence_grows_with_supporting_evidence() {
        let a = ScoredCandidate::new(0, 0, 2);
        let b = ScoredCandidate::new(0, 0, 40);
        assert!(
            b.confidence > a.confidence,
            "more agreeing bits, more confidence"
        );
        let c = ScoredCandidate::new(0, 10, 40);
        assert!(c.confidence < b.confidence, "mismatches cost confidence");
    }

    #[test]
    fn pass_fail_diagnosis_cannot_split_f2_f3() {
        let d = PassFailDictionary::build(&paper_example());
        let r = d.diagnose(&bv("11")).unwrap();
        assert_eq!(r.exact, vec![2, 3], "pass/fail sees f2 and f3 identically");
    }

    #[test]
    fn same_different_diagnosis_splits_f2_f3() {
        let m = paper_example();
        let s = select_baselines(&m, &Procedure1Options::default());
        let d = SameDifferentDictionary::build(&m, &s.baselines);
        // Simulate the tester observing fault f2's actual responses.
        let responses: Vec<BitVec> = (0..m.test_count())
            .map(|t| m.response(t, m.class(t, 2)))
            .collect();
        let r = d.diagnose(&responses).unwrap();
        assert_eq!(r.exact, vec![2], "same/different pinpoints f2");
    }

    #[test]
    fn masked_same_different_agrees_with_clean_on_full_data() {
        let m = paper_example();
        let s = select_baselines(&m, &Procedure1Options::default());
        let d = SameDifferentDictionary::build(&m, &s.baselines);
        for fault in 0..m.fault_count() {
            let responses: Vec<BitVec> = (0..m.test_count())
                .map(|t| m.response(t, m.class(t, fault)))
                .collect();
            let clean = d.diagnose(&responses).unwrap();
            let masked_responses: Vec<MaskedBitVec> = responses
                .into_iter()
                .map(MaskedBitVec::from_known)
                .collect();
            let noisy = d.diagnose_masked(&masked_responses).unwrap();
            assert_eq!(noisy.candidates(), clean.candidates());
            assert_eq!(noisy.quality, MatchQuality::Exact);
        }
    }

    #[test]
    fn masked_same_different_degrades_to_superset() {
        let m = paper_example();
        let s = select_baselines(&m, &Procedure1Options::default());
        let d = SameDifferentDictionary::build(&m, &s.baselines);
        let responses: Vec<BitVec> = (0..m.test_count())
            .map(|t| m.response(t, m.class(t, 2)))
            .collect();
        // Mask the whole first response: candidates can only widen, and the
        // true fault must stay in them.
        let mut masked: Vec<MaskedBitVec> = responses
            .iter()
            .cloned()
            .map(MaskedBitVec::from_known)
            .collect();
        masked[0] = MaskedBitVec::unknown(responses[0].len());
        let noisy = d.diagnose_masked(&masked).unwrap();
        assert!(
            noisy.candidates().contains(&2),
            "true fault survives masking"
        );
        assert!(noisy.quality <= MatchQuality::ConsistentUnderMask);
    }

    #[test]
    fn full_diagnosis_is_exact_for_stored_faults() {
        let m = paper_example();
        let d = FullDictionary::new(m);
        for fault in 0..4 {
            let responses: Vec<BitVec> = (0..2).map(|t| d.response(fault, t)).collect();
            let r = d.diagnose(&responses).unwrap();
            assert!(r.exact.contains(&fault), "fault {fault}");
            assert_eq!(r.distance, 0);
        }
    }

    #[test]
    fn full_diagnosis_nearest_for_out_of_model_behaviour() {
        let m = paper_example();
        let d = FullDictionary::new(m);
        // A behaviour no modeled fault produces: 11 under both tests.
        let r = d.diagnose(&[bv("11"), bv("11")]).unwrap();
        assert!(r.exact.is_empty());
        assert!(!r.nearest.is_empty());
        assert!(r.distance > 0);
    }

    #[test]
    fn full_masked_diagnosis_matches_clean_and_survives_masking() {
        let m = paper_example();
        let d = FullDictionary::new(m);
        for fault in 0..4usize {
            let responses: Vec<BitVec> = (0..2).map(|t| d.response(fault, t)).collect();
            let masked: Vec<MaskedBitVec> = responses
                .iter()
                .cloned()
                .map(MaskedBitVec::from_known)
                .collect();
            let clean = d.diagnose(&responses).unwrap();
            let noisy = d.diagnose_masked(&masked).unwrap();
            assert_eq!(noisy.candidates(), clean.candidates(), "fault {fault}");
            // Drop one whole test: the true fault must still be among the
            // best candidates.
            let mut partial = masked.clone();
            partial[1] = MaskedBitVec::unknown(partial[1].len());
            let degraded = d.diagnose_masked(&partial).unwrap();
            assert!(degraded.candidates().contains(&fault), "fault {fault}");
        }
    }

    #[test]
    fn full_masked_count_mismatch_is_an_error() {
        let d = FullDictionary::new(paper_example());
        assert!(matches!(
            d.diagnose_masked(&[MaskedBitVec::unknown(2)]),
            Err(SddError::CountMismatch { .. })
        ));
        assert!(matches!(
            d.diagnose(&[bv("11")]),
            Err(SddError::CountMismatch { .. })
        ));
    }

    #[test]
    fn merged_shards_reproduce_the_whole_ranking() {
        let d = PassFailDictionary::build(&paper_example());
        // With and without masked bits, over every possible cut point.
        for observed in [mv("01"), mv("1X"), mv("XX")] {
            let whole = d.diagnose_masked(&observed).unwrap();
            for cut in 1..d.fault_count() {
                let lo = match_signatures_masked(&d.signatures()[..cut], &observed).unwrap();
                let hi = match_signatures_masked(&d.signatures()[cut..], &observed).unwrap();
                let merged = merge_shard_rankings(
                    &[(0, &lo.ranking[..]), (cut, &hi.ranking[..])],
                    observed.is_fully_known(),
                )
                .unwrap();
                assert_eq!(merged, whole, "cut at {cut}, observed {observed:?}");
            }
        }
    }

    #[test]
    fn merge_tolerates_an_empty_shard_among_nonempty_ones() {
        let d = PassFailDictionary::build(&paper_example());
        let observed = mv("0X");
        let whole = d.diagnose_masked(&observed).unwrap();
        let lo = match_signatures_masked(&d.signatures()[..2], &observed).unwrap();
        let hi = match_signatures_masked(&d.signatures()[2..], &observed).unwrap();
        // An empty middle shard (matched nothing) must not perturb the merge
        // or trip the known-bits consistency check.
        let merged = merge_shard_rankings(
            &[(0, &lo.ranking[..]), (2, &[][..]), (2, &hi.ranking[..])],
            observed.is_fully_known(),
        )
        .unwrap();
        assert_eq!(merged, whole);
    }

    #[test]
    fn cross_shard_ties_order_by_global_fault_index() {
        // Two shards whose candidates all tie on mismatches; the merged
        // ranking must interleave them in global fault order even when the
        // shards are passed high-offset first.
        let c = |fault, mismatches| ScoredCandidate::new(fault, mismatches, 4);
        let lo = [c(0, 1), c(1, 1)];
        let hi = [c(0, 1), c(1, 1)];
        for shards in [
            [(0usize, &lo[..]), (2, &hi[..])],
            [(2, &hi[..]), (0, &lo[..])],
        ] {
            let merged = merge_shard_rankings(&shards, true).unwrap();
            let order: Vec<usize> = merged.ranking.iter().map(|s| s.fault).collect();
            assert_eq!(order, vec![0, 1, 2, 3]);
            assert_eq!(merged.best, vec![0, 1, 2, 3]);
            assert_eq!(merged.quality, MatchQuality::Ranked);
        }
    }

    #[test]
    fn merge_rejects_empty_and_inconsistent_shards() {
        assert!(matches!(
            merge_shard_rankings(&[], true),
            Err(SddError::Empty { .. })
        ));
        assert!(matches!(
            merge_shard_rankings(&[(0, &[][..])], true),
            Err(SddError::Empty { .. })
        ));
        let d = PassFailDictionary::build(&paper_example());
        let full = match_signatures_masked(d.signatures(), &mv("01")).unwrap();
        let masked = match_signatures_masked(d.signatures(), &mv("0X")).unwrap();
        assert!(matches!(
            merge_shard_rankings(&[(0, &full.ranking[..]), (4, &masked.ranking[..])], false),
            Err(SddError::CountMismatch { .. })
        ));
    }
}
