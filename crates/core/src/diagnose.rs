//! Cause-effect diagnosis: matching observed tester responses against a
//! dictionary to produce candidate faults.
//!
//! All three dictionary types diagnose the same way — compare the observed
//! behaviour with each stored fault and return the best matches — but they
//! compare different amounts of information:
//!
//! * [`FullDictionary::diagnose`] compares complete output vectors;
//! * [`PassFailDictionary::diagnose`] compares pass/fail signatures;
//! * [`SameDifferentDictionary::diagnose`] compares same/different
//!   signatures computed against the stored baselines.
//!
//! [`two_phase_diagnose`] combines a cheap dictionary screen with exact
//! fault simulation of the surviving candidates (the hybrid of the
//! paper's references 8, 12 and 14).

use sdd_fault::{FaultId, FaultUniverse};
use sdd_logic::BitVec;
use sdd_netlist::{Circuit, CombView};
use sdd_sim::reference;

use crate::{FullDictionary, PassFailDictionary, SameDifferentDictionary};

/// The outcome of matching an observed behaviour against a dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagnosisReport {
    /// Faults whose stored behaviour matches the observation exactly
    /// (positions into the dictionary's fault list).
    pub exact: Vec<usize>,
    /// Faults at minimum distance from the observation (equals `exact`
    /// when exact matches exist).
    pub nearest: Vec<usize>,
    /// The minimum distance (0 when exact matches exist).
    pub distance: usize,
}

impl DiagnosisReport {
    /// The best candidate set: exact matches if any, else nearest.
    pub fn candidates(&self) -> &[usize] {
        if self.exact.is_empty() {
            &self.nearest
        } else {
            &self.exact
        }
    }
}

/// Matches an observed signature against stored per-fault signatures by
/// Hamming distance.
///
/// # Panics
///
/// Panics if `observed`'s width differs from the signatures'.
pub fn match_signatures(signatures: &[BitVec], observed: &BitVec) -> DiagnosisReport {
    let mut distance = usize::MAX;
    let mut nearest = Vec::new();
    for (fault, signature) in signatures.iter().enumerate() {
        let d = signature
            .hamming_distance(observed)
            .expect("signature width mismatch");
        if d < distance {
            distance = d;
            nearest.clear();
        }
        if d == distance {
            nearest.push(fault);
        }
    }
    let exact = if distance == 0 { nearest.clone() } else { Vec::new() };
    DiagnosisReport {
        exact,
        nearest,
        distance,
    }
}

impl PassFailDictionary {
    /// Diagnoses from an observed pass/fail signature (bit `j` = test `t_j`
    /// failed on the tester).
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_core::PassFailDictionary;
    /// let d = PassFailDictionary::build(&sdd_core::example::paper_example());
    /// let report = d.diagnose(&"01".parse()?);
    /// assert_eq!(report.candidates(), &[0]); // f0 fails only t1
    /// # Ok::<(), sdd_logic::ParseBitVecError>(())
    /// ```
    pub fn diagnose(&self, observed: &BitVec) -> DiagnosisReport {
        match_signatures(self.signatures(), observed)
    }
}

impl SameDifferentDictionary {
    /// Diagnoses from the observed per-test output vectors: each response is
    /// first compared against the test's stored baseline to form the
    /// observed same/different signature, then matched.
    pub fn diagnose(&self, responses: &[BitVec]) -> DiagnosisReport {
        let observed = self.encode_observed(responses);
        match_signatures(self.signatures(), &observed)
    }
}

impl FullDictionary {
    /// Diagnoses from the observed per-test output vectors, scoring each
    /// fault by the total number of output bits at which its stored
    /// responses differ from the observation.
    ///
    /// # Panics
    ///
    /// Panics if the response count or widths do not match.
    pub fn diagnose(&self, responses: &[BitVec]) -> DiagnosisReport {
        let matrix = self.matrix();
        assert_eq!(
            responses.len(),
            matrix.test_count(),
            "one response per test"
        );
        // Distance from the observation to each response class, per test.
        let per_test: Vec<Vec<usize>> = (0..matrix.test_count())
            .map(|test| {
                (0..matrix.class_count(test) as u32)
                    .map(|class| {
                        matrix
                            .response(test, class)
                            .hamming_distance(&responses[test])
                            .expect("response width mismatch")
                    })
                    .collect()
            })
            .collect();
        let mut distance = usize::MAX;
        let mut nearest = Vec::new();
        for fault in 0..matrix.fault_count() {
            let d: usize = (0..matrix.test_count())
                .map(|test| per_test[test][matrix.class(test, fault) as usize])
                .sum();
            if d < distance {
                distance = d;
                nearest.clear();
            }
            if d == distance {
                nearest.push(fault);
            }
        }
        let exact = if distance == 0 { nearest.clone() } else { Vec::new() };
        DiagnosisReport {
            exact,
            nearest,
            distance,
        }
    }
}

/// Simulates the per-test responses a tester would observe for a defect
/// modeled by `fault` — a convenience for examples and tests.
pub fn observed_responses(
    circuit: &Circuit,
    view: &CombView,
    fault: sdd_fault::Fault,
    tests: &[BitVec],
) -> Vec<BitVec> {
    tests
        .iter()
        .map(|t| reference::faulty_response(circuit, view, fault, t))
        .collect()
}

/// Two-phase diagnosis: a same/different dictionary screens the fault list
/// down to its best matches, then exact fault simulation of only those
/// candidates ranks them by full-response distance.
///
/// Returns `(fault id, full-response distance)` sorted by distance — the
/// same answer a full dictionary would give for the screened candidates, at
/// a fraction of the storage.
pub fn two_phase_diagnose(
    circuit: &Circuit,
    view: &CombView,
    universe: &FaultUniverse,
    faults: &[FaultId],
    tests: &[BitVec],
    observed: &[BitVec],
    dictionary: &SameDifferentDictionary,
) -> Vec<(FaultId, usize)> {
    let screened = dictionary.diagnose(observed);
    let mut ranked: Vec<(FaultId, usize)> = screened
        .candidates()
        .iter()
        .map(|&pos| {
            let id = faults[pos];
            let distance = tests
                .iter()
                .zip(observed)
                .map(|(test, seen)| {
                    reference::faulty_response(circuit, view, universe.fault(id), test)
                        .hamming_distance(seen)
                        .expect("width mismatch")
                })
                .sum();
            (id, distance)
        })
        .collect();
    ranked.sort_by_key(|&(id, d)| (d, id));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::{select_baselines, Procedure1Options};

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn exact_match_wins() {
        let sigs = vec![bv("00"), bv("01"), bv("11")];
        let r = match_signatures(&sigs, &bv("01"));
        assert_eq!(r.exact, vec![1]);
        assert_eq!(r.candidates(), &[1]);
        assert_eq!(r.distance, 0);
    }

    #[test]
    fn nearest_match_reports_all_ties() {
        let sigs = vec![bv("00"), bv("11"), bv("10")];
        let r = match_signatures(&sigs, &bv("01"));
        assert!(r.exact.is_empty());
        assert_eq!(r.nearest, vec![0, 1]); // both at distance 1
        assert_eq!(r.distance, 1);
    }

    #[test]
    fn pass_fail_diagnosis_cannot_split_f2_f3() {
        let d = PassFailDictionary::build(&paper_example());
        let r = d.diagnose(&bv("11"));
        assert_eq!(r.exact, vec![2, 3], "pass/fail sees f2 and f3 identically");
    }

    #[test]
    fn same_different_diagnosis_splits_f2_f3() {
        let m = paper_example();
        let s = select_baselines(&m, &Procedure1Options::default());
        let d = SameDifferentDictionary::build(&m, &s.baselines);
        // Simulate the tester observing fault f2's actual responses.
        let responses: Vec<BitVec> = (0..m.test_count())
            .map(|t| m.response(t, m.class(t, 2)))
            .collect();
        let r = d.diagnose(&responses);
        assert_eq!(r.exact, vec![2], "same/different pinpoints f2");
    }

    #[test]
    fn full_diagnosis_is_exact_for_stored_faults() {
        let m = paper_example();
        let d = FullDictionary::new(m);
        for fault in 0..4 {
            let responses: Vec<BitVec> = (0..2)
                .map(|t| d.response(fault, t))
                .collect();
            let r = d.diagnose(&responses);
            assert!(r.exact.contains(&fault), "fault {fault}");
            assert_eq!(r.distance, 0);
        }
    }

    #[test]
    fn full_diagnosis_nearest_for_out_of_model_behaviour() {
        let m = paper_example();
        let d = FullDictionary::new(m);
        // A behaviour no modeled fault produces: 11 under both tests.
        let r = d.diagnose(&[bv("11"), bv("11")]);
        assert!(r.exact.is_empty());
        assert!(!r.nearest.is_empty());
        assert!(r.distance > 0);
    }
}
