//! Dictionary size accounting, exactly as in §2 of the paper.

/// Storage requirements in bits of the three dictionary types for a circuit
/// with `k` tests, `n` faults and `m` observed outputs.
///
/// Following the paper, the fault-free response (`k·m` bits) is *not*
/// counted in any dictionary: every tester stores it regardless.
///
/// # Example
///
/// ```
/// use sdd_core::DictionarySizes;
///
/// let s = DictionarySizes::new(2, 4, 2); // the paper's worked example
/// assert_eq!(s.full, 16);           // k·n·m
/// assert_eq!(s.pass_fail, 8);       // k·n
/// assert_eq!(s.same_different, 12); // k·(n+m)
/// assert_eq!(s.same_different - s.pass_fail, 4); // the k·m baseline cost
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DictionarySizes {
    /// Tests `k`.
    pub tests: u64,
    /// Faults `n`.
    pub faults: u64,
    /// Observed outputs `m`.
    pub outputs: u64,
    /// Full dictionary: `k·n·m` bits.
    pub full: u64,
    /// Pass/fail dictionary: `k·n` bits.
    pub pass_fail: u64,
    /// Same/different dictionary: `k·(n+m)` bits (bit matrix plus one
    /// baseline output vector per test).
    pub same_different: u64,
}

impl DictionarySizes {
    /// Computes the sizes for `k` tests, `n` faults, `m` outputs.
    pub fn new(k: u64, n: u64, m: u64) -> Self {
        Self {
            tests: k,
            faults: n,
            outputs: m,
            full: k * n * m,
            pass_fail: k * n,
            same_different: k * (n + m),
        }
    }

    /// The extra storage of a same/different dictionary over a pass/fail
    /// dictionary — `k·m` bits, "negligible" in the paper's words because
    /// industrial designs have `m ≪ n`.
    pub fn baseline_overhead(&self) -> u64 {
        self.same_different - self.pass_fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_hold_for_assorted_shapes() {
        for (k, n, m) in [(1, 1, 1), (106, 939, 38), (320, 6475, 250)] {
            let s = DictionarySizes::new(k, n, m);
            assert_eq!(s.full, k * n * m);
            assert_eq!(s.pass_fail, k * n);
            assert_eq!(s.same_different, k * (n + m));
            assert_eq!(s.baseline_overhead(), k * m);
            assert!(s.pass_fail <= s.same_different);
            assert!(s.same_different <= s.full || m == 1);
        }
    }

    #[test]
    fn overhead_is_negligible_when_m_is_small() {
        // The paper's argument: m is one to two orders below n.
        let s = DictionarySizes::new(500, 10_000, 100);
        assert!(s.baseline_overhead() * 100 <= s.pass_fail);
    }
}
