//! The same/different fault dictionary — the paper's contribution.

use sdd_logic::{BitVec, MaskedBitVec, SddError};
use sdd_sim::{Partition, ResponseMatrix};

use crate::DictionarySizes;

/// A same/different fault dictionary: bit `b[i][j]` is `0` when fault
/// `f_i`'s output vector under test `t_j` equals that test's *baseline*
/// output vector `z_bl,j`, and `1` otherwise.
///
/// The baseline of each test is chosen from the vectors the modeled faults
/// can actually produce (the set `Z_j`, which always contains the fault-free
/// vector); choosing well is the whole game — see
/// [`select_baselines`](crate::select_baselines) (Procedure 1) and
/// [`replace_baselines`](crate::replace_baselines) (Procedure 2).
///
/// With every baseline set to the fault-free response (class 0), the
/// dictionary degenerates to exactly a pass/fail dictionary.
///
/// # Example
///
/// ```
/// use sdd_core::SameDifferentDictionary;
///
/// let matrix = sdd_core::example::paper_example();
/// // Table 3 of the paper: baselines z_bl,0 = 01, z_bl,1 = 10.
/// let d = SameDifferentDictionary::build(&matrix, &[2, 1]);
/// assert_eq!(d.baseline(0).to_string(), "01");
/// assert_eq!(d.baseline(1).to_string(), "10");
/// assert_eq!(d.indistinguished_pairs(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SameDifferentDictionary {
    signatures: Vec<BitVec>,
    baselines: Vec<BitVec>,
    baseline_classes: Vec<u32>,
    outputs: usize,
}

impl SameDifferentDictionary {
    /// Builds the dictionary from simulated responses and one baseline
    /// response class per test (as produced by the selection procedures).
    ///
    /// # Panics
    ///
    /// Panics if `baselines.len()` differs from the matrix's test count, or
    /// a class id is not a class of its test.
    pub fn build(matrix: &ResponseMatrix, baselines: &[u32]) -> Self {
        assert_eq!(
            baselines.len(),
            matrix.test_count(),
            "one baseline class per test"
        );
        let baseline_vectors: Vec<BitVec> = baselines
            .iter()
            .enumerate()
            .map(|(test, &class)| matrix.response(test, class))
            .collect();
        let signatures = (0..matrix.fault_count())
            .map(|fault| {
                (0..matrix.test_count())
                    .map(|test| matrix.class(test, fault) != baselines[test])
                    .collect()
            })
            .collect();
        Self {
            signatures,
            baselines: baseline_vectors,
            baseline_classes: baselines.to_vec(),
            outputs: matrix.output_count(),
        }
    }

    /// Reassembles a dictionary from stored parts, as the text format
    /// ([`crate::io`]) and the binary store read them back.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] when `baselines` and
    /// `baseline_classes` disagree in length, and [`SddError::WidthMismatch`]
    /// when a signature's width differs from the test count or a baseline's
    /// width differs from `outputs`.
    pub fn from_parts(
        signatures: Vec<BitVec>,
        baselines: Vec<BitVec>,
        baseline_classes: Vec<u32>,
        outputs: usize,
    ) -> Result<Self, SddError> {
        if baselines.len() != baseline_classes.len() {
            return Err(SddError::CountMismatch {
                context: "baseline classes per baseline vector",
                expected: baselines.len(),
                actual: baseline_classes.len(),
            });
        }
        if let Some(bad) = baselines.iter().find(|b| b.len() != outputs) {
            return Err(SddError::WidthMismatch {
                context: "stored baseline width",
                expected: outputs,
                actual: bad.len(),
            });
        }
        if let Some(bad) = signatures.iter().find(|s| s.len() != baselines.len()) {
            return Err(SddError::WidthMismatch {
                context: "stored same/different signature width",
                expected: baselines.len(),
                actual: bad.len(),
            });
        }
        Ok(Self {
            signatures,
            baselines,
            baseline_classes,
            outputs,
        })
    }

    /// Builds the degenerate dictionary whose baselines are all the
    /// fault-free responses — bit-identical to a pass/fail dictionary.
    pub fn with_fault_free_baselines(matrix: &ResponseMatrix) -> Self {
        Self::build(matrix, &vec![0; matrix.test_count()])
    }

    /// Number of faults `n`.
    pub fn fault_count(&self) -> usize {
        self.signatures.len()
    }

    /// Number of tests `k`.
    pub fn test_count(&self) -> usize {
        self.baselines.len()
    }

    /// The same/different signature of fault `i`: one bit per test.
    pub fn signature(&self, fault: usize) -> &BitVec {
        &self.signatures[fault]
    }

    /// All signatures, indexed by fault.
    pub fn signatures(&self) -> &[BitVec] {
        &self.signatures
    }

    /// The baseline output vector of test `j`.
    pub fn baseline(&self, test: usize) -> &BitVec {
        &self.baselines[test]
    }

    /// The baseline response classes this dictionary was built from.
    pub fn baseline_classes(&self) -> &[u32] {
        &self.baseline_classes
    }

    /// Number of tests whose baseline is *not* the fault-free response —
    /// the tests that actually pay the `m`-bit baseline storage (the paper
    /// notes the fault-free vector can serve for the rest).
    pub fn non_trivial_baselines(&self) -> usize {
        self.baseline_classes.iter().filter(|&&c| c != 0).count()
    }

    /// Storage accounting per the paper.
    pub fn sizes(&self) -> DictionarySizes {
        DictionarySizes::new(
            self.baselines.len() as u64,
            self.signatures.len() as u64,
            self.outputs as u64,
        )
    }

    /// This dictionary's size in bits (`k·(n+m)`).
    pub fn size_bits(&self) -> u64 {
        self.sizes().same_different
    }

    /// Encodes an observed per-test response sequence into a signature
    /// comparable against the stored ones — this is what a tester computes
    /// on-line during diagnosis.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] when the number of responses
    /// differs from the test count, and [`SddError::WidthMismatch`] when a
    /// response's width differs from its baseline's.
    pub fn encode_observed(&self, responses: &[BitVec]) -> Result<BitVec, SddError> {
        if responses.len() != self.baselines.len() {
            return Err(SddError::CountMismatch {
                context: "responses per test",
                expected: self.baselines.len(),
                actual: responses.len(),
            });
        }
        responses
            .iter()
            .zip(&self.baselines)
            .map(|(observed, baseline)| {
                if observed.len() != baseline.len() {
                    return Err(SddError::WidthMismatch {
                        context: "observed response width",
                        expected: baseline.len(),
                        actual: observed.len(),
                    });
                }
                Ok(observed != baseline)
            })
            .collect()
    }

    /// Encodes partial per-test observations into a partial signature. The
    /// bit for test `j` is:
    ///
    /// * known `1` (*different*) when any known observed bit disagrees with
    ///   the baseline — one surviving failing bit is proof enough;
    /// * known `0` (*same*) when the response is fully known and equals the
    ///   baseline — only complete data can prove sameness;
    /// * unknown otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] when the number of responses
    /// differs from the test count, and [`SddError::WidthMismatch`] when a
    /// response's width differs from its baseline's.
    pub fn encode_observed_masked(
        &self,
        responses: &[MaskedBitVec],
    ) -> Result<MaskedBitVec, SddError> {
        if responses.len() != self.baselines.len() {
            return Err(SddError::CountMismatch {
                context: "responses per test",
                expected: self.baselines.len(),
                actual: responses.len(),
            });
        }
        let mut signature = MaskedBitVec::unknown(self.baselines.len());
        for (test, (observed, baseline)) in responses.iter().zip(&self.baselines).enumerate() {
            let d = observed.distance_to(baseline)?;
            if d.mismatches > 0 {
                signature.set_known(test, true);
            } else if observed.is_fully_known() {
                signature.set_known(test, false);
            }
        }
        Ok(signature)
    }

    /// The partition of faults into signature-equal groups.
    pub fn partition(&self) -> Partition {
        let mut p = Partition::unit(self.signatures.len());
        for test in 0..self.baselines.len() {
            p.refine_bits(|i| self.signatures[i].bit(test));
        }
        p
    }

    /// Fault pairs the dictionary cannot distinguish.
    pub fn indistinguished_pairs(&self) -> u64 {
        self.partition().indistinguished_pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::PassFailDictionary;

    #[test]
    fn example_signatures_match_table3() {
        let d = SameDifferentDictionary::build(&paper_example(), &[2, 1]);
        let rows: Vec<String> = d.signatures().iter().map(|s| s.to_string()).collect();
        // Table 3: f0=10, f1=11, f2=00, f3=01.
        assert_eq!(rows, ["10", "11", "00", "01"]);
        assert_eq!(d.indistinguished_pairs(), 0);
        assert_eq!(d.non_trivial_baselines(), 2);
    }

    #[test]
    fn fault_free_baselines_degenerate_to_pass_fail() {
        let matrix = paper_example();
        let sd = SameDifferentDictionary::with_fault_free_baselines(&matrix);
        let pf = PassFailDictionary::build(&matrix);
        assert_eq!(sd.signatures(), pf.signatures());
        assert_eq!(sd.indistinguished_pairs(), pf.indistinguished_pairs());
        assert_eq!(sd.non_trivial_baselines(), 0);
    }

    #[test]
    fn baselines_are_materialized_output_vectors() {
        let matrix = paper_example();
        let d = SameDifferentDictionary::build(&matrix, &[2, 1]);
        assert_eq!(*d.baseline(0), matrix.response(0, 2));
        assert_eq!(*d.baseline(1), matrix.response(1, 1));
        assert_eq!(d.baseline_classes(), &[2, 1]);
    }

    #[test]
    fn sizes_match_formula() {
        let d = SameDifferentDictionary::build(&paper_example(), &[2, 1]);
        assert_eq!(d.size_bits(), 12); // 2·(4+2)
        assert_eq!(d.sizes().baseline_overhead(), 4);
    }

    #[test]
    fn encode_observed_matches_stored_signature() {
        let matrix = paper_example();
        let d = SameDifferentDictionary::build(&matrix, &[2, 1]);
        for fault in 0..matrix.fault_count() {
            let responses: Vec<BitVec> = (0..matrix.test_count())
                .map(|t| matrix.response(t, matrix.class(t, fault)))
                .collect();
            assert_eq!(d.encode_observed(&responses).unwrap(), *d.signature(fault));
        }
    }

    #[test]
    fn encode_observed_rejects_misshapen_input() {
        let matrix = paper_example();
        let d = SameDifferentDictionary::build(&matrix, &[2, 1]);
        assert!(matches!(
            d.encode_observed(&[matrix.response(0, 0)]),
            Err(SddError::CountMismatch { .. })
        ));
        assert!(matches!(
            d.encode_observed(&["0".parse().unwrap(), "10".parse().unwrap()]),
            Err(SddError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn encode_observed_masked_three_way_semantics() {
        let matrix = paper_example();
        let d = SameDifferentDictionary::build(&matrix, &[2, 1]); // baselines 01, 10
                                                                  // Test 0: known bit disagrees with baseline 01 -> different (1).
                                                                  // Test 1: partially known, agrees so far -> unknown.
        let partial: Vec<MaskedBitVec> = vec!["1X".parse().unwrap(), "1X".parse().unwrap()];
        assert_eq!(
            d.encode_observed_masked(&partial).unwrap().to_string(),
            "1X"
        );
        // Fully known and equal to the baseline -> same (0).
        let same: Vec<MaskedBitVec> = vec!["01".parse().unwrap(), "10".parse().unwrap()];
        assert_eq!(d.encode_observed_masked(&same).unwrap().to_string(), "00");
    }

    #[test]
    #[should_panic(expected = "one baseline class per test")]
    fn wrong_baseline_count_panics() {
        SameDifferentDictionary::build(&paper_example(), &[0]);
    }
}
