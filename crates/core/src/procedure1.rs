//! Procedure 1: greedy selection of baseline output vectors.
//!
//! For each test `t_j` (in a given order), every candidate baseline
//! `z ∈ Z_j` is scored by `dist(z)` — the number of still-undistinguished
//! fault pairs the test would distinguish with that baseline — and the best
//! candidate is selected. The paper's `LOWER` cutoff stops scanning
//! candidates after `LOWER` consecutive non-improving ones; the procedure is
//! restarted with random test orders until `CALLS_1` consecutive restarts
//! bring no improvement.
//!
//! This implementation keeps the set `P` of target pairs as a *partition*
//! of faults into undistinguished groups, so scoring all candidates of one
//! test costs a single O(n) sweep (see `DESIGN.md` §3) while computing
//! exactly the paper's `dist` values — the worked-example tests reproduce
//! Tables 4 and 5 digit for digit.
//!
//! Restarts are embarrassingly parallel, and this module exploits that:
//! restart `i`'s test order is derived *independently* from `(seed, i)`
//! (restart 0 is the natural order) rather than from one evolving generator,
//! so any worker can evaluate any restart. With
//! [`jobs`](Procedure1Options::jobs) > 1 restarts are evaluated in waves of
//! `jobs` scoped threads and reduced in restart-index order under the serial
//! stopping rule, with ties broken toward the lowest restart index — making
//! the selection **bit-identical for every `jobs` value** at a fixed seed.
//! Restarts a serial run would never have reached (the tail of a wave after
//! the stopping rule fires) are computed speculatively and discarded.

use std::collections::HashMap;
use std::time::Instant;

use sdd_logic::Prng;

use sdd_sim::{Partition, ResponseMatrix};

use crate::Budget;

/// Knobs for [`select_baselines`]. Defaults are the paper's experimental
/// settings: `LOWER = 10`, `CALLS_1 = 100`, and serial evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure1Options {
    /// The `LOWER` cutoff: stop scanning a test's candidates after this many
    /// consecutive candidates score strictly below the best so far.
    /// `None` scores every candidate (exhaustive ablation).
    pub lower: Option<usize>,
    /// Stop restarting after this many consecutive non-improving calls
    /// (the paper's `CALLS_1`).
    pub calls1: usize,
    /// Hard cap on total calls, guarding pathological cases.
    pub max_calls: usize,
    /// Seed for the random test orders.
    pub seed: u64,
    /// Worker threads evaluating restarts concurrently. The result is
    /// identical for every value (see the module docs); more jobs only buy
    /// wall-clock time. `0` is treated as 1; callers wanting "all the
    /// hardware" pass [`sdd_sim::available_jobs`].
    pub jobs: usize,
}

impl Default for Procedure1Options {
    fn default() -> Self {
        Self {
            lower: Some(10),
            calls1: 100,
            max_calls: 5_000,
            seed: 1,
            jobs: 1,
        }
    }
}

/// Reusable buffers for [`score_candidates_into`]: the group-size table, the
/// `(group, class)` occurrence counts, and the output gains. One scratch per
/// worker thread amortizes all scoring allocations across an entire
/// Procedure 1 restart (or Procedure 2 pass), where scoring runs once per
/// test.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    sizes: Vec<usize>,
    counts: HashMap<(u32, u32), u64>,
    gains: Vec<u64>,
}

/// The result of baseline selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineSelection {
    /// The selected baseline response class per test (index into each
    /// test's `Z_j`; class 0 is the fault-free vector).
    pub baselines: Vec<u32>,
    /// Fault pairs left indistinguished by the resulting dictionary.
    pub indistinguished_pairs: u64,
    /// Number of Procedure 1 calls performed.
    pub calls: usize,
    /// `true` when the procedure stopped on its own convergence criteria;
    /// `false` when a [`Budget`] cut the search short. The baselines are a
    /// valid (best-so-far) assignment either way.
    pub completed: bool,
}

/// Scores every candidate baseline of `test` against the current target
/// pairs: `dist(z)` for each response class `z` of the test, indexed by
/// class id (which is `Z_j` in the paper's column order).
///
/// # Example
///
/// ```
/// use sdd_core::score_candidates;
/// use sdd_sim::Partition;
///
/// let m = sdd_core::example::paper_example();
/// // Table 4: dist over Z_0 = {00, 10, 01} is 3, 3, 4.
/// assert_eq!(score_candidates(&m, 0, &Partition::unit(4)), vec![3, 3, 4]);
/// ```
pub fn score_candidates(matrix: &ResponseMatrix, test: usize, pairs: &Partition) -> Vec<u64> {
    score_candidates_into(matrix, test, pairs, &mut ScoreScratch::default()).to_vec()
}

/// [`score_candidates`] into a caller-owned [`ScoreScratch`], allocating
/// nothing once the scratch has warmed up. Returns the gains indexed by
/// class id, borrowed from the scratch.
pub fn score_candidates_into<'s>(
    matrix: &ResponseMatrix,
    test: usize,
    pairs: &Partition,
    scratch: &'s mut ScoreScratch,
) -> &'s [u64] {
    let classes = matrix.classes(test);
    pairs.group_sizes_into(&mut scratch.sizes);
    scratch.counts.clear();
    for (fault, &class) in classes.iter().enumerate() {
        let group = pairs.group_of(fault);
        if scratch.sizes[group as usize] >= 2 {
            *scratch.counts.entry((group, class)).or_insert(0) += 1;
        }
    }
    scratch.gains.clear();
    scratch.gains.resize(matrix.class_count(test), 0);
    for (&(group, class), &count) in &scratch.counts {
        scratch.gains[class as usize] += count * (scratch.sizes[group as usize] as u64 - count);
    }
    &scratch.gains
}

/// One Procedure 1 pass over the tests in `order`, with the `LOWER` cutoff
/// (or exhaustive candidate scoring when `lower` is `None`).
///
/// Returns the baseline class per test (indexed by test id, not order
/// position) and the number of fault pairs left indistinguished.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..matrix.test_count()`.
pub fn select_baselines_once(
    matrix: &ResponseMatrix,
    order: &[usize],
    lower: Option<usize>,
) -> (Vec<u32>, u64) {
    select_baselines_once_with(matrix, order, lower, &mut ScoreScratch::default())
}

/// [`select_baselines_once`] reusing a caller-owned scoring scratch — the
/// form the restart workers drive.
fn select_baselines_once_with(
    matrix: &ResponseMatrix,
    order: &[usize],
    lower: Option<usize>,
    scratch: &mut ScoreScratch,
) -> (Vec<u32>, u64) {
    assert_eq!(
        order.len(),
        matrix.test_count(),
        "order must cover all tests"
    );
    let mut pairs = Partition::unit(matrix.fault_count());
    let mut baselines = vec![0u32; matrix.test_count()];
    for &test in order {
        let gains = score_candidates_into(matrix, test, &pairs, scratch);
        let best = pick_with_lower(gains, lower);
        baselines[test] = best;
        let classes = matrix.classes(test);
        pairs.refine_bits(|i| classes[i] == best);
    }
    (baselines, pairs.indistinguished_pairs())
}

/// Walks candidates in `Z_j` order applying the paper's `LOWER` rule:
/// stop after `lower` consecutive candidates scoring strictly below the
/// best seen, and return the first best among those scored.
fn pick_with_lower(gains: &[u64], lower: Option<usize>) -> u32 {
    let mut best = 0usize;
    let mut below = 0usize;
    for (candidate, &gain) in gains.iter().enumerate() {
        if gain > gains[best] {
            best = candidate;
            below = 0;
        } else if gain < gains[best] {
            below += 1;
            if Some(below) == lower {
                break;
            }
        }
    }
    best as u32
}

/// Procedure 1 with random restarts: repeats [`select_baselines_once`] with
/// shuffled test orders until `CALLS_1` consecutive calls fail to improve
/// the number of distinguished pairs (or a full-dictionary-optimal result
/// is reached, which no further call can beat).
///
/// # Example
///
/// ```
/// use sdd_core::{select_baselines, Procedure1Options};
///
/// let m = sdd_core::example::paper_example();
/// let s = select_baselines(&m, &Procedure1Options::default());
/// assert_eq!(s.indistinguished_pairs, 0);
/// ```
pub fn select_baselines(matrix: &ResponseMatrix, options: &Procedure1Options) -> BaselineSelection {
    select_baselines_budgeted(matrix, options, &Budget::unlimited())
}

/// [`select_baselines`] under an explicit [`Budget`].
///
/// The budget is checked before each Procedure 1 call; when it runs out the
/// best assignment found so far is returned with
/// [`completed`](BaselineSelection::completed) set to `false`. Because the
/// all-fault-free guard candidate is scored before any call, even a
/// zero-duration budget yields a valid selection — the pass/fail-equivalent
/// dictionary — rather than an error.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use sdd_core::{select_baselines_budgeted, Budget, Procedure1Options};
///
/// let m = sdd_core::example::paper_example();
/// let s = select_baselines_budgeted(
///     &m,
///     &Procedure1Options::default(),
///     &Budget::deadline(Duration::ZERO),
/// );
/// assert!(!s.completed);
/// assert!(s.baselines.iter().all(|&b| b == 0)); // fault-free fallback
/// ```
pub fn select_baselines_budgeted(
    matrix: &ResponseMatrix,
    options: &Procedure1Options,
    budget: &Budget,
) -> BaselineSelection {
    let start = Instant::now();
    let jobs = options.jobs.max(1);
    let bound = matrix.full_partition().indistinguished_pairs();

    // Guard candidate: the all-fault-free assignment (a pass/fail
    // dictionary). Greedy selection beats it in practice, but keeping it in
    // the pool makes "a same/different dictionary never resolves worse than
    // a pass/fail dictionary of the same tests" a guarantee, not a trend —
    // and gives budgeted construction a valid zero-cost fallback.
    let fault_free = vec![0u32; matrix.test_count()];
    let mut best_pairs = crate::procedure2::indistinguished_with(matrix, &fault_free);
    let mut best_baselines = fault_free;

    let mut calls = 0;
    let mut stale = 0;
    let mut completed = true;
    let mut scratches: Vec<ScoreScratch> = (0..jobs).map(|_| ScoreScratch::default()).collect();

    // Waves of up to `jobs` restarts; the reduce below walks each wave in
    // restart-index order applying exactly the serial stopping rule, so a
    // wave's speculative tail (evaluated after the rule would have stopped)
    // is discarded and the outcome is independent of `jobs`.
    'search: while stale < options.calls1 && calls < options.max_calls && best_pairs > bound {
        let wave = jobs.min(options.max_calls - calls);
        let results = evaluate_wave(matrix, options, budget, start, calls, wave, &mut scratches);
        for result in results {
            let Some((baselines, pairs)) = result else {
                completed = false; // budget ran out before this restart
                break 'search;
            };
            calls += 1;
            if pairs < best_pairs {
                best_pairs = pairs;
                best_baselines = baselines;
                stale = 0;
            } else {
                stale += 1;
            }
            if stale >= options.calls1 || calls >= options.max_calls || best_pairs <= bound {
                break 'search;
            }
        }
    }

    BaselineSelection {
        baselines: best_baselines,
        indistinguished_pairs: best_pairs,
        calls,
        completed,
    }
}

/// Evaluates restarts `first..first + wave` — on scoped worker threads when
/// the wave has more than one member — returning their results in restart
/// order. `None` marks a restart the [`Budget`] refused.
fn evaluate_wave(
    matrix: &ResponseMatrix,
    options: &Procedure1Options,
    budget: &Budget,
    start: Instant,
    first: usize,
    wave: usize,
    scratches: &mut [ScoreScratch],
) -> Vec<Option<(Vec<u32>, u64)>> {
    let mut results: Vec<Option<(Vec<u32>, u64)>> = (0..wave).map(|_| None).collect();
    if wave == 1 {
        results[0] = evaluate_restart(matrix, options, budget, start, first, &mut scratches[0]);
        return results;
    }
    std::thread::scope(|scope| {
        for ((offset, slot), scratch) in results.iter_mut().enumerate().zip(scratches) {
            scope.spawn(move || {
                *slot = evaluate_restart(matrix, options, budget, start, first + offset, scratch);
            });
        }
    });
    results
}

/// One restart: check the budget (each worker honors the shared deadline and
/// call cap), derive the restart's own test order, run one pass.
fn evaluate_restart(
    matrix: &ResponseMatrix,
    options: &Procedure1Options,
    budget: &Budget,
    start: Instant,
    restart: usize,
    scratch: &mut ScoreScratch,
) -> Option<(Vec<u32>, u64)> {
    if !budget.allows(restart, start.elapsed()) {
        return None;
    }
    let order = restart_order(matrix.test_count(), options.seed, restart);
    Some(select_baselines_once_with(
        matrix,
        &order,
        options.lower,
        scratch,
    ))
}

/// The test order of restart `restart`: the natural order for restart 0 (the
/// paper's first call), then an independent seeded shuffle per restart —
/// derivable by any worker without replaying earlier restarts, which is what
/// makes concurrent evaluation bit-compatible with serial.
fn restart_order(test_count: usize, seed: u64, restart: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..test_count).collect();
    if restart > 0 {
        // Golden-ratio mixing keeps per-restart streams disjoint even for
        // adjacent seeds.
        let stream = seed ^ (restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Prng::seed_from_u64(stream).shuffle(&mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::{PassFailDictionary, SameDifferentDictionary};

    #[test]
    fn lower_rule_matches_paper_semantics() {
        // best=5 at index 1; then 4,4,4: equal-to-lower values count,
        // ties with best do not.
        assert_eq!(pick_with_lower(&[3, 5, 4, 4, 4], Some(3)), 1);
        // Cutoff can hide a later maximum:
        assert_eq!(pick_with_lower(&[5, 1, 1, 9], Some(2)), 0);
        // Exhaustive scan finds it:
        assert_eq!(pick_with_lower(&[5, 1, 1, 9], None), 3);
        // Ties keep the first best:
        assert_eq!(pick_with_lower(&[7, 7, 7], Some(1)), 0);
        // Empty gains (no candidates) defaults to class 0:
        assert_eq!(pick_with_lower(&[], Some(10)), 0);
    }

    #[test]
    fn restarts_never_worsen_the_result() {
        let m = paper_example();
        let single = select_baselines_once(&m, &[0, 1], Some(10)).1;
        let restarted = select_baselines(&m, &Procedure1Options::default());
        assert!(restarted.indistinguished_pairs <= single);
        assert_eq!(restarted.indistinguished_pairs, 0);
    }

    #[test]
    fn early_exit_at_full_dictionary_bound() {
        let m = paper_example();
        let s = select_baselines(&m, &Procedure1Options::default());
        // The first (natural-order) call already reaches the bound of 0, so
        // no restarts are spent.
        assert_eq!(s.calls, 1);
    }

    #[test]
    fn selection_beats_pass_fail_on_the_example() {
        let m = paper_example();
        let s = select_baselines(&m, &Procedure1Options::default());
        let sd = SameDifferentDictionary::build(&m, &s.baselines);
        let pf = PassFailDictionary::build(&m);
        assert!(sd.indistinguished_pairs() < pf.indistinguished_pairs());
        assert_eq!(
            sd.indistinguished_pairs(),
            s.indistinguished_pairs,
            "selection's count must match the built dictionary"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = paper_example();
        let opts = Procedure1Options::default();
        assert_eq!(select_baselines(&m, &opts), select_baselines(&m, &opts));
    }

    #[test]
    fn parallel_restarts_match_serial_exactly() {
        let m = paper_example();
        for seed in 0..8 {
            // calls1 = 0 forces the wave/reduce machinery to stop on the
            // guard candidate; larger values exercise real restart waves.
            for calls1 in [1usize, 3, 25] {
                let base = Procedure1Options {
                    calls1,
                    seed,
                    ..Procedure1Options::default()
                };
                let serial = select_baselines(&m, &base);
                for jobs in [2usize, 4, 9] {
                    let parallel = select_baselines(
                        &m,
                        &Procedure1Options {
                            jobs,
                            ..base.clone()
                        },
                    );
                    assert_eq!(serial, parallel, "seed {seed} calls1 {calls1} jobs {jobs}");
                }
            }
        }
    }

    #[test]
    fn restart_orders_are_permutations_and_independent() {
        let natural: Vec<usize> = (0..20).collect();
        assert_eq!(restart_order(20, 42, 0), natural, "restart 0 is natural");
        for restart in 1..10 {
            let order = restart_order(20, 42, restart);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, natural, "restart {restart} permutes all tests");
            assert_eq!(
                order,
                restart_order(20, 42, restart),
                "derivation is a pure function of (seed, restart)"
            );
        }
    }

    #[test]
    fn call_cap_budget_is_jobs_invariant() {
        // A call-cap budget is deterministic (unlike a wall-clock deadline),
        // so capped parallel runs must equal capped serial runs bit for bit.
        let m = paper_example();
        for cap in [0usize, 1, 2, 5] {
            let serial = select_baselines_budgeted(
                &m,
                &Procedure1Options::default(),
                &Budget::max_calls(cap),
            );
            let parallel = select_baselines_budgeted(
                &m,
                &Procedure1Options {
                    jobs: 4,
                    ..Procedure1Options::default()
                },
                &Budget::max_calls(cap),
            );
            assert_eq!(serial, parallel, "cap {cap}");
        }
    }

    #[test]
    #[should_panic(expected = "cover all tests")]
    fn bad_order_panics() {
        select_baselines_once(&paper_example(), &[0], Some(10));
    }

    #[test]
    fn zero_budget_returns_fault_free_fallback() {
        let m = paper_example();
        let s = select_baselines_budgeted(
            &m,
            &Procedure1Options::default(),
            &Budget::deadline(std::time::Duration::ZERO),
        );
        assert!(!s.completed);
        assert_eq!(s.calls, 0);
        assert_eq!(s.baselines, vec![0, 0], "pass/fail-equivalent fallback");
        let pf = PassFailDictionary::build(&m);
        assert_eq!(s.indistinguished_pairs, pf.indistinguished_pairs());
        // The fallback is a real dictionary, not a stub.
        let sd = SameDifferentDictionary::build(&m, &s.baselines);
        assert_eq!(sd.indistinguished_pairs(), s.indistinguished_pairs);
    }

    #[test]
    fn call_capped_budget_reports_incomplete() {
        let m = paper_example();
        // Force a situation where convergence needs more than 0 calls but
        // the budget allows exactly 1.
        let s = select_baselines_budgeted(&m, &Procedure1Options::default(), &Budget::max_calls(1));
        assert_eq!(s.calls, 1);
        // On the example one call reaches the bound, so the stop is natural.
        assert!(s.completed);
        assert_eq!(s.indistinguished_pairs, 0);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted() {
        let m = paper_example();
        let opts = Procedure1Options::default();
        let a = select_baselines(&m, &opts);
        let b = select_baselines_budgeted(&m, &opts, &Budget::unlimited());
        assert_eq!(a, b);
        assert!(a.completed);
    }
}
