//! Procedure 1: greedy selection of baseline output vectors.
//!
//! For each test `t_j` (in a given order), every candidate baseline
//! `z ∈ Z_j` is scored by `dist(z)` — the number of still-undistinguished
//! fault pairs the test would distinguish with that baseline — and the best
//! candidate is selected. The paper's `LOWER` cutoff stops scanning
//! candidates after `LOWER` consecutive non-improving ones; the procedure is
//! restarted with random test orders until `CALLS_1` consecutive restarts
//! bring no improvement.
//!
//! This implementation keeps the set `P` of target pairs as a *partition*
//! of faults into undistinguished groups, so scoring all candidates of one
//! test costs a single O(n) sweep (see `DESIGN.md` §3) while computing
//! exactly the paper's `dist` values — the worked-example tests reproduce
//! Tables 4 and 5 digit for digit.

use std::collections::HashMap;
use std::time::Instant;

use sdd_logic::Prng;

use sdd_sim::{Partition, ResponseMatrix};

use crate::Budget;

/// Knobs for [`select_baselines`]. Defaults are the paper's experimental
/// settings: `LOWER = 10`, `CALLS_1 = 100`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure1Options {
    /// The `LOWER` cutoff: stop scanning a test's candidates after this many
    /// consecutive candidates score strictly below the best so far.
    /// `None` scores every candidate (exhaustive ablation).
    pub lower: Option<usize>,
    /// Stop restarting after this many consecutive non-improving calls
    /// (the paper's `CALLS_1`).
    pub calls1: usize,
    /// Hard cap on total calls, guarding pathological cases.
    pub max_calls: usize,
    /// Seed for the random test orders.
    pub seed: u64,
}

impl Default for Procedure1Options {
    fn default() -> Self {
        Self {
            lower: Some(10),
            calls1: 100,
            max_calls: 5_000,
            seed: 1,
        }
    }
}

/// The result of baseline selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineSelection {
    /// The selected baseline response class per test (index into each
    /// test's `Z_j`; class 0 is the fault-free vector).
    pub baselines: Vec<u32>,
    /// Fault pairs left indistinguished by the resulting dictionary.
    pub indistinguished_pairs: u64,
    /// Number of Procedure 1 calls performed.
    pub calls: usize,
    /// `true` when the procedure stopped on its own convergence criteria;
    /// `false` when a [`Budget`] cut the search short. The baselines are a
    /// valid (best-so-far) assignment either way.
    pub completed: bool,
}

/// Scores every candidate baseline of `test` against the current target
/// pairs: `dist(z)` for each response class `z` of the test, indexed by
/// class id (which is `Z_j` in the paper's column order).
///
/// # Example
///
/// ```
/// use sdd_core::score_candidates;
/// use sdd_sim::Partition;
///
/// let m = sdd_core::example::paper_example();
/// // Table 4: dist over Z_0 = {00, 10, 01} is 3, 3, 4.
/// assert_eq!(score_candidates(&m, 0, &Partition::unit(4)), vec![3, 3, 4]);
/// ```
pub fn score_candidates(matrix: &ResponseMatrix, test: usize, pairs: &Partition) -> Vec<u64> {
    let classes = matrix.classes(test);
    let sizes = pairs.group_sizes();
    let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
    for (fault, &class) in classes.iter().enumerate() {
        let group = pairs.group_of(fault);
        if sizes[group as usize] >= 2 {
            *counts.entry((group, class)).or_insert(0) += 1;
        }
    }
    let mut gains = vec![0u64; matrix.class_count(test)];
    for (&(group, class), &count) in &counts {
        gains[class as usize] += count * (sizes[group as usize] as u64 - count);
    }
    gains
}

/// One Procedure 1 pass over the tests in `order`, with the `LOWER` cutoff
/// (or exhaustive candidate scoring when `lower` is `None`).
///
/// Returns the baseline class per test (indexed by test id, not order
/// position) and the number of fault pairs left indistinguished.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..matrix.test_count()`.
pub fn select_baselines_once(
    matrix: &ResponseMatrix,
    order: &[usize],
    lower: Option<usize>,
) -> (Vec<u32>, u64) {
    assert_eq!(
        order.len(),
        matrix.test_count(),
        "order must cover all tests"
    );
    let mut pairs = Partition::unit(matrix.fault_count());
    let mut baselines = vec![0u32; matrix.test_count()];
    for &test in order {
        let gains = score_candidates(matrix, test, &pairs);
        let best = pick_with_lower(&gains, lower);
        baselines[test] = best;
        let classes = matrix.classes(test);
        pairs.refine_bits(|i| classes[i] == best);
    }
    (baselines, pairs.indistinguished_pairs())
}

/// Walks candidates in `Z_j` order applying the paper's `LOWER` rule:
/// stop after `lower` consecutive candidates scoring strictly below the
/// best seen, and return the first best among those scored.
fn pick_with_lower(gains: &[u64], lower: Option<usize>) -> u32 {
    let mut best = 0usize;
    let mut below = 0usize;
    for (candidate, &gain) in gains.iter().enumerate() {
        if gain > gains[best] {
            best = candidate;
            below = 0;
        } else if gain < gains[best] {
            below += 1;
            if Some(below) == lower {
                break;
            }
        }
    }
    best as u32
}

/// Procedure 1 with random restarts: repeats [`select_baselines_once`] with
/// shuffled test orders until `CALLS_1` consecutive calls fail to improve
/// the number of distinguished pairs (or a full-dictionary-optimal result
/// is reached, which no further call can beat).
///
/// # Example
///
/// ```
/// use sdd_core::{select_baselines, Procedure1Options};
///
/// let m = sdd_core::example::paper_example();
/// let s = select_baselines(&m, &Procedure1Options::default());
/// assert_eq!(s.indistinguished_pairs, 0);
/// ```
pub fn select_baselines(matrix: &ResponseMatrix, options: &Procedure1Options) -> BaselineSelection {
    select_baselines_budgeted(matrix, options, &Budget::unlimited())
}

/// [`select_baselines`] under an explicit [`Budget`].
///
/// The budget is checked before each Procedure 1 call; when it runs out the
/// best assignment found so far is returned with
/// [`completed`](BaselineSelection::completed) set to `false`. Because the
/// all-fault-free guard candidate is scored before any call, even a
/// zero-duration budget yields a valid selection — the pass/fail-equivalent
/// dictionary — rather than an error.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use sdd_core::{select_baselines_budgeted, Budget, Procedure1Options};
///
/// let m = sdd_core::example::paper_example();
/// let s = select_baselines_budgeted(
///     &m,
///     &Procedure1Options::default(),
///     &Budget::deadline(Duration::ZERO),
/// );
/// assert!(!s.completed);
/// assert!(s.baselines.iter().all(|&b| b == 0)); // fault-free fallback
/// ```
pub fn select_baselines_budgeted(
    matrix: &ResponseMatrix,
    options: &Procedure1Options,
    budget: &Budget,
) -> BaselineSelection {
    let start = Instant::now();
    let mut rng = Prng::seed_from_u64(options.seed);
    let bound = matrix.full_partition().indistinguished_pairs();

    // Guard candidate: the all-fault-free assignment (a pass/fail
    // dictionary). Greedy selection beats it in practice, but keeping it in
    // the pool makes "a same/different dictionary never resolves worse than
    // a pass/fail dictionary of the same tests" a guarantee, not a trend —
    // and gives budgeted construction a valid zero-cost fallback.
    let fault_free = vec![0u32; matrix.test_count()];
    let mut best_pairs = crate::procedure2::indistinguished_with(matrix, &fault_free);
    let mut best_baselines = fault_free;

    let mut calls = 0;
    let mut stale = 0;
    let mut completed = true;

    // First call uses the natural test order, restarts use random orders.
    let mut order: Vec<usize> = (0..matrix.test_count()).collect();
    while stale < options.calls1 && calls < options.max_calls && best_pairs > bound {
        if !budget.allows(calls, start.elapsed()) {
            completed = false;
            break;
        }
        if calls > 0 {
            rng.shuffle(&mut order);
        }
        let (baselines, pairs) = select_baselines_once(matrix, &order, options.lower);
        calls += 1;
        if pairs < best_pairs {
            best_pairs = pairs;
            best_baselines = baselines;
            stale = 0;
        } else {
            stale += 1;
        }
    }

    BaselineSelection {
        baselines: best_baselines,
        indistinguished_pairs: best_pairs,
        calls,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::{PassFailDictionary, SameDifferentDictionary};

    #[test]
    fn lower_rule_matches_paper_semantics() {
        // best=5 at index 1; then 4,4,4: equal-to-lower values count,
        // ties with best do not.
        assert_eq!(pick_with_lower(&[3, 5, 4, 4, 4], Some(3)), 1);
        // Cutoff can hide a later maximum:
        assert_eq!(pick_with_lower(&[5, 1, 1, 9], Some(2)), 0);
        // Exhaustive scan finds it:
        assert_eq!(pick_with_lower(&[5, 1, 1, 9], None), 3);
        // Ties keep the first best:
        assert_eq!(pick_with_lower(&[7, 7, 7], Some(1)), 0);
        // Empty gains (no candidates) defaults to class 0:
        assert_eq!(pick_with_lower(&[], Some(10)), 0);
    }

    #[test]
    fn restarts_never_worsen_the_result() {
        let m = paper_example();
        let single = select_baselines_once(&m, &[0, 1], Some(10)).1;
        let restarted = select_baselines(&m, &Procedure1Options::default());
        assert!(restarted.indistinguished_pairs <= single);
        assert_eq!(restarted.indistinguished_pairs, 0);
    }

    #[test]
    fn early_exit_at_full_dictionary_bound() {
        let m = paper_example();
        let s = select_baselines(&m, &Procedure1Options::default());
        // The first (natural-order) call already reaches the bound of 0, so
        // no restarts are spent.
        assert_eq!(s.calls, 1);
    }

    #[test]
    fn selection_beats_pass_fail_on_the_example() {
        let m = paper_example();
        let s = select_baselines(&m, &Procedure1Options::default());
        let sd = SameDifferentDictionary::build(&m, &s.baselines);
        let pf = PassFailDictionary::build(&m);
        assert!(sd.indistinguished_pairs() < pf.indistinguished_pairs());
        assert_eq!(
            sd.indistinguished_pairs(),
            s.indistinguished_pairs,
            "selection's count must match the built dictionary"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = paper_example();
        let opts = Procedure1Options::default();
        assert_eq!(select_baselines(&m, &opts), select_baselines(&m, &opts));
    }

    #[test]
    #[should_panic(expected = "cover all tests")]
    fn bad_order_panics() {
        select_baselines_once(&paper_example(), &[0], Some(10));
    }

    #[test]
    fn zero_budget_returns_fault_free_fallback() {
        let m = paper_example();
        let s = select_baselines_budgeted(
            &m,
            &Procedure1Options::default(),
            &Budget::deadline(std::time::Duration::ZERO),
        );
        assert!(!s.completed);
        assert_eq!(s.calls, 0);
        assert_eq!(s.baselines, vec![0, 0], "pass/fail-equivalent fallback");
        let pf = PassFailDictionary::build(&m);
        assert_eq!(s.indistinguished_pairs, pf.indistinguished_pairs());
        // The fallback is a real dictionary, not a stub.
        let sd = SameDifferentDictionary::build(&m, &s.baselines);
        assert_eq!(sd.indistinguished_pairs(), s.indistinguished_pairs);
    }

    #[test]
    fn call_capped_budget_reports_incomplete() {
        let m = paper_example();
        // Force a situation where convergence needs more than 0 calls but
        // the budget allows exactly 1.
        let s = select_baselines_budgeted(&m, &Procedure1Options::default(), &Budget::max_calls(1));
        assert_eq!(s.calls, 1);
        // On the example one call reaches the bound, so the stop is natural.
        assert!(s.completed);
        assert_eq!(s.indistinguished_pairs, 0);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted() {
        let m = paper_example();
        let opts = Procedure1Options::default();
        let a = select_baselines(&m, &opts);
        let b = select_baselines_budgeted(&m, &opts, &Budget::unlimited());
        assert_eq!(a, b);
        assert!(a.completed);
    }
}
