//! Dictionary column pruning: dropping tests that add no resolution.
//!
//! Classic small-dictionary work (the paper's refs [2], [9], [12]) shrinks
//! dictionaries by removing redundant information. For a same/different
//! dictionary a test's *column* is redundant when the partition induced by
//! all other kept columns already refines everything this column would
//! split. Pruning the matrix columns shrinks the stored dictionary below
//! `k·(n+m)` without losing a single distinguished pair.

use sdd_sim::{Partition, ResponseMatrix};

use crate::score_candidates;

/// Returns the tests whose columns carry resolution, preserving exactly the
/// partition of the unpruned dictionary with these `baselines`.
///
/// The scan is sequential, so mutually redundant duplicate columns keep one
/// representative.
///
/// # Panics
///
/// Panics if `baselines.len()` differs from the test count.
///
/// # Example
///
/// ```
/// use sdd_core::prune_tests;
///
/// let m = sdd_core::example::paper_example();
/// // Both of the example's tests carry resolution with the paper baselines:
/// assert_eq!(prune_tests(&m, &[2, 1]), vec![0, 1]);
/// ```
pub fn prune_tests(matrix: &ResponseMatrix, baselines: &[u32]) -> Vec<usize> {
    let k = matrix.test_count();
    let n = matrix.fault_count();
    assert_eq!(baselines.len(), k, "one baseline class per test");

    // suffix[j] = partition of tests j..k (all still candidates).
    let mut suffix: Vec<Partition> = Vec::with_capacity(k + 1);
    suffix.push(Partition::unit(n));
    for j in (0..k).rev() {
        let mut p = suffix.last().expect("nonempty").clone();
        let classes = matrix.classes(j);
        let baseline = baselines[j];
        p.refine_bits(|i| classes[i] == baseline);
        suffix.push(p);
    }
    suffix.reverse();

    let mut kept = Vec::new();
    let mut prefix = Partition::unit(n);
    for j in 0..k {
        let without_j = prefix.intersect(&suffix[j + 1]);
        let gains = score_candidates(matrix, j, &without_j);
        if gains[baselines[j] as usize] > 0 {
            kept.push(j);
            let classes = matrix.classes(j);
            let baseline = baselines[j];
            prefix.refine_bits(|i| classes[i] == baseline);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;
    use crate::procedure2::indistinguished_with;

    fn partition_of(matrix: &ResponseMatrix, baselines: &[u32], tests: &[usize]) -> Partition {
        let mut p = Partition::unit(matrix.fault_count());
        for &j in tests {
            let classes = matrix.classes(j);
            let baseline = baselines[j];
            p.refine_bits(|i| classes[i] == baseline);
        }
        p
    }

    #[test]
    fn pruning_preserves_resolution_on_example() {
        let m = paper_example();
        for baselines in [[0u32, 0], [2, 1], [1, 2], [2, 0]] {
            let kept = prune_tests(&m, &baselines);
            let full = indistinguished_with(&m, &baselines);
            let pruned = partition_of(&m, &baselines, &kept).indistinguished_pairs();
            assert_eq!(full, pruned, "baselines {baselines:?}");
        }
    }

    #[test]
    fn duplicate_columns_keep_one_representative() {
        // Build a matrix with two identical tests: one must go.
        use sdd_logic::BitVec;
        let bv = |s: &str| s.parse::<BitVec>().unwrap();
        let m = sdd_sim::ResponseMatrix::from_responses(
            vec![bv("00"), bv("00"), bv("11")],
            &[
                vec![bv("00"), bv("10")],
                vec![bv("00"), bv("10")], // identical to test 0
                vec![bv("11"), bv("11")], // detects nothing extra
            ],
        );
        let kept = prune_tests(&m, &[0, 0, 0]);
        // The forward scan sees test 0's information still present in the
        // suffix, so the *last* duplicate survives; either way exactly one
        // informative column remains.
        assert_eq!(kept, vec![1]);
        let full = indistinguished_with(&m, &[0, 0, 0]);
        assert_eq!(
            partition_of(&m, &[0, 0, 0], &kept).indistinguished_pairs(),
            full
        );
    }

    #[test]
    fn useless_dictionary_prunes_to_nothing() {
        use sdd_logic::BitVec;
        let bv = |s: &str| s.parse::<BitVec>().unwrap();
        // One test where every fault responds identically: no resolution.
        let m = sdd_sim::ResponseMatrix::from_responses(
            vec![bv("0")],
            &[vec![bv("1"), bv("1"), bv("1")]],
        );
        assert!(prune_tests(&m, &[0]).is_empty());
    }
}
