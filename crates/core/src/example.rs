//! The paper's worked example (Tables 1–5), reconstructed exactly.
//!
//! Four faults `f0..f3` under two tests `t0, t1` in a two-output circuit.
//! The responses below are the unique assignment consistent with every
//! statement in §2–§3 of the paper:
//!
//! | row | `t0` | `t1` |
//! |-----|------|------|
//! | ff  | 00   | 11   |
//! | f0  | 00   | 10   |
//! | f1  | 10   | 11   |
//! | f2  | 01   | 10   |
//! | f3  | 01   | 01   |
//!
//! With these, the pass/fail dictionary (Table 2) distinguishes everything
//! but `f2,f3`; candidate scoring for `z_bl,0` yields `dist = 3, 3, 4` over
//! `00, 10, 01` (Table 4) and for `z_bl,1` yields `dist = 1, 2, 1` over
//! `11, 10, 01` (Table 5); the selected baselines `01, 10` give the
//! same/different dictionary of Table 3, which distinguishes all pairs.

use sdd_logic::BitVec;
use sdd_sim::ResponseMatrix;

/// Builds the paper's worked example as a [`ResponseMatrix`].
///
/// # Example
///
/// ```
/// let m = sdd_core::example::paper_example();
/// assert_eq!(m.test_count(), 2);
/// assert_eq!(m.fault_count(), 4);
/// assert_eq!(m.good_response(0).to_string(), "00");
/// ```
pub fn paper_example() -> ResponseMatrix {
    let bv = |s: &str| s.parse::<BitVec>().expect("valid bits");
    ResponseMatrix::from_responses(
        vec![bv("00"), bv("11")],
        &[
            // t0: f0, f1, f2, f3
            vec![bv("00"), bv("10"), bv("01"), bv("01")],
            // t1
            vec![bv("10"), bv("11"), bv("10"), bv("01")],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{score_candidates, select_baselines_once};
    use sdd_sim::Partition;

    #[test]
    fn z_sets_match_section3() {
        let m = paper_example();
        // Z_0 = {00, 10, 01}: three distinct vectors under t0.
        assert_eq!(m.class_count(0), 3);
        // Z_1 = {11, 10, 01}.
        assert_eq!(m.class_count(1), 3);
        // Class 0 is the fault-free vector in both.
        assert_eq!(m.response(0, 0).to_string(), "00");
        assert_eq!(m.response(1, 0).to_string(), "11");
    }

    #[test]
    fn table4_candidate_scores() {
        let m = paper_example();
        let p = Partition::unit(4);
        let scores = score_candidates(&m, 0, &p);
        // Candidates in Z_0 column order 00, 10, 01 → dist 3, 3, 4.
        assert_eq!(scores, vec![3, 3, 4]);
        // The candidate vectors, in order:
        assert_eq!(m.response(0, 0).to_string(), "00");
        assert_eq!(m.response(0, 1).to_string(), "10");
        assert_eq!(m.response(0, 2).to_string(), "01");
    }

    #[test]
    fn table5_candidate_scores() {
        let m = paper_example();
        // After selecting z_bl,0 = 01 the remaining pairs are
        // {f0,f1} and {f2,f3}: partition {f0,f1 | f2,f3}.
        let p = Partition::from_labels(&[0, 0, 1, 1]);
        let scores = score_candidates(&m, 1, &p);
        // Candidates in Z_1 column order 11, 10, 01 → dist 1, 2, 1.
        assert_eq!(scores, vec![1, 2, 1]);
        assert_eq!(m.response(1, 0).to_string(), "11");
        assert_eq!(m.response(1, 1).to_string(), "10");
        assert_eq!(m.response(1, 2).to_string(), "01");
    }

    #[test]
    fn procedure1_selects_the_papers_baselines() {
        let m = paper_example();
        let (baselines, indistinguished) = select_baselines_once(&m, &[0, 1], Some(10));
        // z_bl,0 = 01 is class 2 of t0; z_bl,1 = 10 is class 1 of t1.
        assert_eq!(baselines, vec![2, 1]);
        assert_eq!(indistinguished, 0);
        assert_eq!(m.response(0, 2).to_string(), "01");
        assert_eq!(m.response(1, 1).to_string(), "10");
    }

    #[test]
    fn a_baseline_outside_z_distinguishes_nothing() {
        // §3: z_bl,0 = 11 ∉ Z_0 would give b = 1 for every fault. Our class
        // encoding only admits members of Z_j, which encodes the same
        // insight: the paper proves vectors outside Z_j are never useful.
        let m = paper_example();
        // With baseline = class of f1 (10), t0 only separates f1 from the rest.
        let mut p = Partition::unit(4);
        p.refine_bits(|i| m.class(0, i) == 1);
        assert_eq!(p.group_count(), 2);
    }
}
