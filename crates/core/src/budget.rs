//! Construction budgets: bounded-effort dictionary building.
//!
//! Procedures 1 and 2 are anytime algorithms — every intermediate state is a
//! valid baseline assignment, and more calls only improve it. A [`Budget`]
//! makes that explicit: the budgeted entry points
//! ([`select_baselines_budgeted`](crate::select_baselines_budgeted),
//! [`replace_baselines_budgeted`](crate::replace_baselines_budgeted)) stop
//! when the wall-clock deadline or call cap is hit and return the best
//! result found so far, flagging `completed = false` so the caller knows the
//! search was cut short rather than converged.

use std::time::Duration;

/// An effort bound for dictionary construction: a wall-clock deadline, a cap
/// on procedure calls, both, or neither.
///
/// The default budget is unlimited. A zero-duration deadline is legal and
/// means "do no optimization work at all": the budgeted procedures still
/// return a valid (fault-free-baseline) result, marked incomplete.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use sdd_core::Budget;
///
/// let b = Budget::deadline(Duration::from_millis(50)).and_max_calls(10);
/// assert!(b.allows(0, Duration::ZERO));
/// assert!(!b.allows(10, Duration::ZERO)); // call cap hit
/// assert!(!b.allows(0, Duration::from_millis(50))); // deadline hit
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    deadline: Option<Duration>,
    max_calls: Option<usize>,
}

impl Budget {
    /// No limits: procedures run to their own convergence criteria.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limit construction to `deadline` of wall-clock time.
    pub fn deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
            max_calls: None,
        }
    }

    /// Limit construction to `max_calls` procedure calls (Procedure 1
    /// passes, or Procedure 2 replacement passes).
    pub fn max_calls(max_calls: usize) -> Self {
        Self {
            deadline: None,
            max_calls: Some(max_calls),
        }
    }

    /// Adds a wall-clock deadline to this budget.
    pub fn and_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a call cap to this budget.
    pub fn and_max_calls(mut self, max_calls: usize) -> Self {
        self.max_calls = Some(max_calls);
        self
    }

    /// Whether another unit of work may start after `calls` completed calls
    /// and `elapsed` wall-clock time.
    pub fn allows(&self, calls: usize, elapsed: Duration) -> bool {
        if self.max_calls.is_some_and(|cap| calls >= cap) {
            return false;
        }
        if self.deadline.is_some_and(|d| elapsed >= d) {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_allows() {
        let b = Budget::unlimited();
        assert!(b.allows(usize::MAX - 1, Duration::from_secs(1 << 40)));
    }

    #[test]
    fn zero_deadline_allows_nothing() {
        let b = Budget::deadline(Duration::ZERO);
        assert!(!b.allows(0, Duration::ZERO));
    }

    #[test]
    fn caps_compose() {
        let b = Budget::max_calls(3).and_deadline(Duration::from_secs(1));
        assert!(b.allows(2, Duration::from_millis(999)));
        assert!(!b.allows(3, Duration::ZERO));
        assert!(!b.allows(0, Duration::from_secs(1)));
    }
}
