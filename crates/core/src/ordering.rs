//! Test-pattern ordering for early diagnosis.
//!
//! The paper's reference [13] (Bernardi et al., VTS 2006) orders patterns
//! so that dictionaries shrink/diagnose faster. This module implements the
//! diagnosis-oriented variant: reorder the tests so that the partition of
//! faults refines as early as possible, letting an on-tester flow stop
//! applying patterns once the observed signature is already unique.
//!
//! The greedy objective at each step is the same `dist` quantity Procedure
//! 1 maximizes, so the machinery is shared.

use sdd_sim::{Partition, ResponseMatrix};

/// Greedily orders tests so each next test distinguishes the most remaining
/// fault pairs under the given same/different `baselines` (use all zeros
/// for a pass/fail dictionary).
///
/// Returns the test order; tests contributing nothing come last, in their
/// original relative order.
///
/// # Panics
///
/// Panics if `baselines.len()` differs from the test count.
///
/// # Example
///
/// ```
/// use sdd_core::order_tests_for_resolution;
///
/// let m = sdd_core::example::paper_example();
/// let order = order_tests_for_resolution(&m, &[2, 1]);
/// assert_eq!(order.len(), 2);
/// assert_eq!(order[0], 0, "t0 distinguishes 4 pairs, t1 only 2");
/// ```
pub fn order_tests_for_resolution(matrix: &ResponseMatrix, baselines: &[u32]) -> Vec<usize> {
    let k = matrix.test_count();
    assert_eq!(baselines.len(), k, "one baseline class per test");
    let mut remaining: Vec<usize> = (0..k).collect();
    let mut order = Vec::with_capacity(k);
    let mut pairs = Partition::unit(matrix.fault_count());

    while !remaining.is_empty() {
        let mut best_pos = 0;
        let mut best_gain = 0u64;
        for (pos, &test) in remaining.iter().enumerate() {
            let gain = split_gain(matrix, test, baselines[test], &pairs);
            if gain > best_gain {
                best_gain = gain;
                best_pos = pos;
            }
        }
        if best_gain == 0 {
            // Nothing left to distinguish: append the rest in original order.
            order.append(&mut remaining);
            break;
        }
        let test = remaining.remove(best_pos);
        let classes = matrix.classes(test);
        let baseline = baselines[test];
        pairs.refine_bits(|i| classes[i] == baseline);
        order.push(test);
    }
    order
}

/// Pairs newly distinguished if `test` (with `baseline`) refines `pairs`.
fn split_gain(matrix: &ResponseMatrix, test: usize, baseline: u32, pairs: &Partition) -> u64 {
    let before = pairs.indistinguished_pairs();
    let mut refined = pairs.clone();
    let classes = matrix.classes(test);
    refined.refine_bits(|i| classes[i] == baseline);
    before - refined.indistinguished_pairs()
}

/// The *resolution profile* of a test order: after each prefix of tests,
/// how many fault pairs remain indistinguished. A good order drops fast.
///
/// # Example
///
/// ```
/// use sdd_core::{order_tests_for_resolution, resolution_profile};
///
/// let m = sdd_core::example::paper_example();
/// let profile = resolution_profile(&m, &[2, 1], &[0, 1]);
/// assert_eq!(profile, vec![6, 2, 0]); // C(4,2) → after t0 → after t1
/// ```
pub fn resolution_profile(matrix: &ResponseMatrix, baselines: &[u32], order: &[usize]) -> Vec<u64> {
    let mut pairs = Partition::unit(matrix.fault_count());
    let mut profile = vec![pairs.indistinguished_pairs()];
    for &test in order {
        let classes = matrix.classes(test);
        let baseline = baselines[test];
        pairs.refine_bits(|i| classes[i] == baseline);
        profile.push(pairs.indistinguished_pairs());
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;

    #[test]
    fn ordering_is_a_permutation() {
        let m = paper_example();
        let order = order_tests_for_resolution(&m, &[0, 0]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn greedy_order_dominates_reverse_order_early() {
        let m = paper_example();
        let baselines = [2u32, 1];
        let greedy = order_tests_for_resolution(&m, &baselines);
        let reversed: Vec<usize> = greedy.iter().rev().copied().collect();
        let pg = resolution_profile(&m, &baselines, &greedy);
        let pr = resolution_profile(&m, &baselines, &reversed);
        // Same final resolution…
        assert_eq!(pg.last(), pr.last());
        // …but the greedy prefix is never behind.
        for (a, b) in pg.iter().zip(&pr) {
            assert!(a <= b, "greedy {pg:?} vs reversed {pr:?}");
        }
    }

    #[test]
    fn profile_is_monotone_nonincreasing() {
        let m = paper_example();
        for baselines in [[0u32, 0], [2, 1]] {
            let profile = resolution_profile(&m, &baselines, &[0, 1]);
            for pair in profile.windows(2) {
                assert!(pair[1] <= pair[0]);
            }
        }
    }

    #[test]
    fn useless_tests_sink_to_the_end() {
        use sdd_logic::BitVec;
        let bv = |s: &str| s.parse::<BitVec>().unwrap();
        // Test 0 is useless (all faults alike); test 1 splits.
        let m = sdd_sim::ResponseMatrix::from_responses(
            vec![bv("0"), bv("0")],
            &[vec![bv("1"), bv("1")], vec![bv("1"), bv("0")]],
        );
        let order = order_tests_for_resolution(&m, &[0, 0]);
        assert_eq!(order, vec![1, 0]);
    }
}
