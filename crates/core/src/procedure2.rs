//! Procedure 2: baseline replacement.
//!
//! Starting from selected baselines, each test's baseline is tentatively
//! replaced by every other candidate in its `Z_j`; a replacement is accepted
//! when it strictly increases the number of distinguished fault pairs. The
//! pass repeats while it keeps improving.
//!
//! The paper evaluates each candidate by recounting distinguished pairs from
//! scratch. This implementation gets the identical accept/reject decisions
//! in O(k·n) per pass: the partition induced by *all tests except `t_j`* is
//! the intersection of an incrementally-maintained prefix partition with a
//! precomputed suffix partition, and every candidate of `t_j` is then scored
//! with the same O(n) sweep Procedure 1 uses. Within a pass, tests after
//! `t_j` have not been touched yet, so the precomputed suffixes stay valid
//! even as replacements are accepted — matching the paper's sequential
//! semantics exactly.

use std::time::Instant;

use sdd_sim::{Partition, ResponseMatrix};

use crate::{score_candidates_into, Budget, ScoreScratch};

/// One replacement pass over all tests. Returns `true` if any baseline was
/// replaced.
///
/// # Panics
///
/// Panics if `baselines.len()` differs from the matrix's test count.
pub fn replace_baselines_pass(matrix: &ResponseMatrix, baselines: &mut [u32]) -> bool {
    replace_baselines_pass_with(matrix, baselines, &mut ScoreScratch::default())
}

/// [`replace_baselines_pass`] reusing a caller-owned scoring scratch across
/// the pass's per-test candidate scans (and, via
/// [`replace_baselines_budgeted`], across passes).
fn replace_baselines_pass_with(
    matrix: &ResponseMatrix,
    baselines: &mut [u32],
    scratch: &mut ScoreScratch,
) -> bool {
    let fixed = Partition::unit(matrix.fault_count());
    replace_baselines_pass_fixed(matrix, &fixed, baselines, scratch)
}

/// One replacement pass where `matrix` holds only the tests whose baselines
/// may move, and `fixed` is the partition already induced by every test
/// held constant (interning is per-test, so a test subset's matrix is an
/// exact restriction of the full one). Seeding the suffix chain with
/// `fixed` makes every candidate score count distinguished pairs of the
/// *whole* dictionary — the accept/reject decisions equal a full-matrix
/// pass restricted to these tests. This is what lets an ECO patch refresh
/// only the touched tests' baselines under a budget.
fn replace_baselines_pass_fixed(
    matrix: &ResponseMatrix,
    fixed: &Partition,
    baselines: &mut [u32],
    scratch: &mut ScoreScratch,
) -> bool {
    let k = matrix.test_count();
    let n = matrix.fault_count();
    assert_eq!(baselines.len(), k, "one baseline class per test");
    assert_eq!(fixed.len(), n, "fixed partition covers every fault");

    // suffix[j] = partition induced by `fixed` plus tests j..k with
    // current baselines.
    let mut suffix: Vec<Partition> = Vec::with_capacity(k + 1);
    suffix.push(fixed.clone());
    for j in (0..k).rev() {
        let mut p = suffix.last().expect("nonempty").clone();
        let classes = matrix.classes(j);
        let baseline = baselines[j];
        p.refine_bits(|i| classes[i] == baseline);
        suffix.push(p);
    }
    suffix.reverse(); // suffix[j] now covers tests j..k; suffix[k] = unit.

    let mut improved = false;
    let mut prefix = Partition::unit(n);
    for j in 0..k {
        let without_j = prefix.intersect(&suffix[j + 1]);
        let gains = score_candidates_into(matrix, j, &without_j, scratch);
        let current = gains[baselines[j] as usize];
        let (best_class, best_gain) = gains
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))) // first max
            .expect("every test has at least the fault-free class");
        if best_gain > current {
            baselines[j] = best_class as u32;
            improved = true;
        }
        let classes = matrix.classes(j);
        let baseline = baselines[j];
        prefix.refine_bits(|i| classes[i] == baseline);
    }
    improved
}

/// Procedure 2: repeats [`replace_baselines_pass`] while it improves, then
/// returns the number of fault pairs left indistinguished.
///
/// # Example
///
/// ```
/// use sdd_core::{replace_baselines, select_baselines, Procedure1Options};
///
/// let m = sdd_core::example::paper_example();
/// let mut baselines = select_baselines(&m, &Procedure1Options::default()).baselines;
/// let left = replace_baselines(&m, &mut baselines);
/// assert_eq!(left, 0);
/// ```
pub fn replace_baselines(matrix: &ResponseMatrix, baselines: &mut [u32]) -> u64 {
    replace_baselines_budgeted(matrix, baselines, &Budget::unlimited()).indistinguished_pairs
}

/// The result of (budgeted) baseline replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplacementOutcome {
    /// Fault pairs the dictionary with the final baselines leaves
    /// indistinguished.
    pub indistinguished_pairs: u64,
    /// Replacement passes performed.
    pub passes: usize,
    /// `true` when replacement reached a local optimum; `false` when the
    /// [`Budget`] stopped it while passes were still improving. The
    /// baselines are valid — and no worse than the starting point — either
    /// way, because accepted replacements only ever help.
    pub completed: bool,
}

/// [`replace_baselines`] under an explicit [`Budget`].
///
/// The budget is checked before each pass; `baselines` always holds the best
/// assignment reached when the function returns.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use sdd_core::{replace_baselines_budgeted, Budget};
///
/// let m = sdd_core::example::paper_example();
/// let mut baselines = vec![2u32, 0];
/// let out = replace_baselines_budgeted(&m, &mut baselines, &Budget::deadline(Duration::ZERO));
/// assert!(!out.completed);
/// assert_eq!(baselines, vec![2, 0], "untouched under a zero budget");
/// ```
pub fn replace_baselines_budgeted(
    matrix: &ResponseMatrix,
    baselines: &mut [u32],
    budget: &Budget,
) -> ReplacementOutcome {
    let start = Instant::now();
    let mut passes = 0;
    let mut completed = true;
    let mut scratch = ScoreScratch::default();
    loop {
        if !budget.allows(passes, start.elapsed()) {
            completed = false;
            break;
        }
        passes += 1;
        if !replace_baselines_pass_with(matrix, baselines, &mut scratch) {
            break;
        }
    }
    ReplacementOutcome {
        indistinguished_pairs: indistinguished_with(matrix, baselines),
        passes,
        completed,
    }
}

/// Budgeted Procedure 2 restricted to a test subset: `matrix` holds only
/// the tests whose baselines may be replaced, and `fixed` carries the
/// partition already induced by every other test's (frozen) baseline.
/// Accept/reject decisions — and the returned pair count — are those of the
/// full dictionary; only the subset's baselines can move. Best-so-far
/// semantics: the budget is checked before each pass and `baselines` always
/// holds the best assignment reached.
///
/// This is the ECO-patch refresh: after a netlist change re-simulates the
/// touched tests, their baselines get replacement passes without paying for
/// a full-dictionary Procedure 2 (let alone Procedure 1).
///
/// # Panics
///
/// Panics if `baselines.len()` differs from the matrix's test count or
/// `fixed.len()` from its fault count.
pub fn refresh_baselines_budgeted(
    matrix: &ResponseMatrix,
    fixed: &Partition,
    baselines: &mut [u32],
    budget: &Budget,
) -> ReplacementOutcome {
    let start = Instant::now();
    let mut passes = 0;
    let mut completed = true;
    let mut scratch = ScoreScratch::default();
    loop {
        if !budget.allows(passes, start.elapsed()) {
            completed = false;
            break;
        }
        passes += 1;
        if !replace_baselines_pass_fixed(matrix, fixed, baselines, &mut scratch) {
            break;
        }
    }
    ReplacementOutcome {
        indistinguished_pairs: indistinguished_with_fixed(matrix, fixed, baselines),
        passes,
        completed,
    }
}

/// Counts the fault pairs a same/different dictionary with these baselines
/// leaves indistinguished.
pub(crate) fn indistinguished_with(matrix: &ResponseMatrix, baselines: &[u32]) -> u64 {
    indistinguished_with_fixed(matrix, &Partition::unit(matrix.fault_count()), baselines)
}

/// [`indistinguished_with`] over `fixed` pre-refined by held-constant tests.
pub(crate) fn indistinguished_with_fixed(
    matrix: &ResponseMatrix,
    fixed: &Partition,
    baselines: &[u32],
) -> u64 {
    let mut p = fixed.clone();
    for (j, &baseline) in baselines.iter().enumerate() {
        let classes = matrix.classes(j);
        p.refine_bits(|i| classes[i] == baseline);
    }
    p.indistinguished_pairs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;

    #[test]
    fn improves_a_partially_good_starting_point() {
        let m = paper_example();
        // Procedure 1 picked z_bl,0 = 01 (class 2) but suppose t1 kept the
        // fault-free baseline: f2,f3 remain indistinguished.
        let mut baselines = vec![2u32, 0];
        assert_eq!(indistinguished_with(&m, &baselines), 1);
        let left = replace_baselines(&m, &mut baselines);
        assert_eq!(left, 0, "replacing z_bl,1 with 10 fixes the f2,f3 pair");
        assert_eq!(baselines, vec![2, 1], "the paper's Table 3 baselines");
    }

    #[test]
    fn pass_fail_start_is_a_local_optimum() {
        // From all-fault-free baselines no *single* replacement helps on the
        // worked example — Procedure 2 is a local improver, which is why the
        // paper runs it after Procedure 1 rather than from scratch.
        let m = paper_example();
        let mut baselines = vec![0u32, 0];
        let left = replace_baselines(&m, &mut baselines);
        assert_eq!(left, 1);
        assert_eq!(baselines, vec![0, 0]);
    }

    #[test]
    fn pass_reports_no_improvement_at_optimum() {
        let m = paper_example();
        let mut baselines = vec![2u32, 1]; // the paper's optimal choice
        assert!(!replace_baselines_pass(&m, &mut baselines));
        assert_eq!(baselines, vec![2, 1], "optimal baselines are kept");
    }

    #[test]
    fn replacement_never_hurts() {
        let m = paper_example();
        for start in [[0u32, 0], [1, 0], [2, 0], [0, 2], [1, 2], [2, 2]] {
            let mut baselines = start.to_vec();
            let before = indistinguished_with(&m, &baselines);
            let after = replace_baselines(&m, &mut baselines);
            assert!(after <= before, "start {start:?}: {after} > {before}");
            assert_eq!(after, indistinguished_with(&m, &baselines));
        }
    }

    #[test]
    fn zero_budget_leaves_baselines_untouched() {
        let m = paper_example();
        let mut baselines = vec![2u32, 0];
        let before = indistinguished_with(&m, &baselines);
        let out = replace_baselines_budgeted(
            &m,
            &mut baselines,
            &Budget::deadline(std::time::Duration::ZERO),
        );
        assert!(!out.completed);
        assert_eq!(out.passes, 0);
        assert_eq!(out.indistinguished_pairs, before);
        assert_eq!(baselines, vec![2, 0]);
    }

    #[test]
    fn budgeted_replacement_is_best_so_far() {
        let m = paper_example();
        let mut capped = vec![2u32, 0];
        let out = replace_baselines_budgeted(&m, &mut capped, &Budget::max_calls(1));
        // One pass suffices on the example; a second (confirming) pass is
        // cut off, so the search is not *proven* converged.
        assert_eq!(out.indistinguished_pairs, 0);
        assert_eq!(out.passes, 1);
        assert!(!out.completed);
        let mut full = vec![2u32, 0];
        let unlimited = replace_baselines_budgeted(&m, &mut full, &Budget::unlimited());
        assert!(unlimited.completed);
        assert_eq!(capped, full, "the capped run already found the optimum");
    }

    #[test]
    fn restricted_refresh_matches_the_full_dictionary_decision() {
        let m = paper_example();
        // Freeze test 0 at the paper's class-2 baseline; refresh test 1
        // alone against the frozen partition.
        let mut fixed = Partition::unit(m.fault_count());
        let classes = m.classes(0);
        fixed.refine_bits(|i| classes[i] == 2);
        let touched = sdd_sim::ResponseMatrix::from_class_parts(
            vec![m.good_response(1).clone()],
            m.fault_count(),
            m.output_count(),
            m.classes(1).to_vec(),
            vec![(0..m.class_count(1) as u32)
                .map(|c| m.class_diffs(1, c).to_vec())
                .collect()],
        )
        .unwrap();
        let mut baselines = vec![0u32];
        let out =
            refresh_baselines_budgeted(&touched, &fixed, &mut baselines, &Budget::unlimited());
        assert!(out.completed);
        assert_eq!(out.indistinguished_pairs, 0);
        assert_eq!(baselines, vec![1], "the full pass's choice for t1");
        // A zero budget leaves the starting point untouched (best-so-far)
        // and still reports the whole dictionary's pair count.
        let mut frozen = vec![0u32];
        let out = refresh_baselines_budgeted(
            &touched,
            &fixed,
            &mut frozen,
            &Budget::deadline(std::time::Duration::ZERO),
        );
        assert!(!out.completed);
        assert_eq!(frozen, vec![0]);
        assert_eq!(out.indistinguished_pairs, 1);
    }

    #[test]
    fn accepted_decisions_match_brute_force() {
        // Verify the prefix/suffix acceleration against literal recounting
        // for every starting baseline combination of the example.
        let m = paper_example();
        for b0 in 0..3u32 {
            for b1 in 0..3u32 {
                let mut fast = vec![b0, b1];
                replace_baselines_pass(&m, &mut fast);
                let mut slow = vec![b0, b1];
                brute_force_pass(&m, &mut slow);
                assert_eq!(fast, slow, "start [{b0},{b1}]");
            }
        }
    }

    /// Literal Procedure 2 pass: recount everything per candidate.
    fn brute_force_pass(matrix: &ResponseMatrix, baselines: &mut [u32]) {
        for j in 0..matrix.test_count() {
            let mut best_dist = total_distinguished(matrix, baselines);
            let saved = baselines[j];
            let mut best = saved;
            for candidate in 0..matrix.class_count(j) as u32 {
                baselines[j] = candidate;
                let dist = total_distinguished(matrix, baselines);
                if dist > best_dist {
                    best_dist = dist;
                    best = candidate;
                }
            }
            baselines[j] = best;
        }
    }

    fn total_distinguished(matrix: &ResponseMatrix, baselines: &[u32]) -> u64 {
        let n = matrix.fault_count() as u64;
        n * (n - 1) / 2 - indistinguished_with(matrix, baselines)
    }
}
