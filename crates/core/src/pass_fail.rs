//! The classic pass/fail fault dictionary.

use sdd_logic::{BitVec, SddError};
use sdd_sim::{Partition, ResponseMatrix};

use crate::DictionarySizes;

/// A pass/fail fault dictionary: bit `b[i][j]` is `1` when test `t_j`
/// detects fault `f_i` (its output vector differs from the fault-free
/// vector).
///
/// # Example
///
/// ```
/// use sdd_core::PassFailDictionary;
///
/// let matrix = sdd_core::example::paper_example();
/// let d = PassFailDictionary::build(&matrix);
/// // Table 2 of the paper: signatures by fault, tests left-to-right.
/// assert_eq!(d.signature(0).to_string(), "01");
/// assert_eq!(d.signature(1).to_string(), "10");
/// assert_eq!(d.signature(2).to_string(), "11");
/// assert_eq!(d.signature(3).to_string(), "11");
/// assert_eq!(d.indistinguished_pairs(), 1); // only f2,f3 collide
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassFailDictionary {
    signatures: Vec<BitVec>,
    tests: usize,
    outputs: usize,
}

impl PassFailDictionary {
    /// Builds the dictionary from simulated responses.
    pub fn build(matrix: &ResponseMatrix) -> Self {
        let signatures = (0..matrix.fault_count())
            .map(|fault| {
                (0..matrix.test_count())
                    .map(|test| matrix.detects(test, fault))
                    .collect()
            })
            .collect();
        Self {
            signatures,
            tests: matrix.test_count(),
            outputs: matrix.output_count(),
        }
    }

    /// Reassembles a dictionary from stored signature rows, as the binary
    /// store reads them back.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::WidthMismatch`] when any signature's width
    /// differs from `tests`.
    pub fn from_parts(
        signatures: Vec<BitVec>,
        tests: usize,
        outputs: usize,
    ) -> Result<Self, SddError> {
        if let Some(bad) = signatures.iter().find(|s| s.len() != tests) {
            return Err(SddError::WidthMismatch {
                context: "stored pass/fail signature width",
                expected: tests,
                actual: bad.len(),
            });
        }
        Ok(Self {
            signatures,
            tests,
            outputs,
        })
    }

    /// Number of faults `n`.
    pub fn fault_count(&self) -> usize {
        self.signatures.len()
    }

    /// Number of tests `k`.
    pub fn test_count(&self) -> usize {
        self.tests
    }

    /// The detection signature of fault `i`: one bit per test.
    pub fn signature(&self, fault: usize) -> &BitVec {
        &self.signatures[fault]
    }

    /// All signatures, indexed by fault.
    pub fn signatures(&self) -> &[BitVec] {
        &self.signatures
    }

    /// Storage accounting per the paper.
    pub fn sizes(&self) -> DictionarySizes {
        DictionarySizes::new(
            self.tests as u64,
            self.signatures.len() as u64,
            self.outputs as u64,
        )
    }

    /// This dictionary's size in bits (`k·n`).
    pub fn size_bits(&self) -> u64 {
        self.sizes().pass_fail
    }

    /// The partition of faults into signature-equal groups.
    pub fn partition(&self) -> Partition {
        let mut p = Partition::unit(self.signatures.len());
        for test in 0..self.tests {
            p.refine_bits(|i| self.signatures[i].bit(test));
        }
        p
    }

    /// Fault pairs the dictionary cannot distinguish.
    pub fn indistinguished_pairs(&self) -> u64 {
        self.partition().indistinguished_pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;

    #[test]
    fn example_signatures_match_table2() {
        let d = PassFailDictionary::build(&paper_example());
        let rows: Vec<String> = d.signatures().iter().map(|s| s.to_string()).collect();
        assert_eq!(rows, ["01", "10", "11", "11"]);
        assert_eq!(d.fault_count(), 4);
        assert_eq!(d.test_count(), 2);
    }

    #[test]
    fn partition_groups_f2_f3() {
        let d = PassFailDictionary::build(&paper_example());
        let p = d.partition();
        assert_eq!(p.group_count(), 3);
        assert_eq!(p.group_of(2), p.group_of(3));
        assert_ne!(p.group_of(0), p.group_of(1));
        assert_eq!(d.indistinguished_pairs(), 1);
    }

    #[test]
    fn sizes_match_formula() {
        let d = PassFailDictionary::build(&paper_example());
        assert_eq!(d.size_bits(), 8);
        assert_eq!(d.sizes().full, 16);
    }

    #[test]
    fn pass_fail_partition_matches_matrix_shortcut() {
        let matrix = paper_example();
        let d = PassFailDictionary::build(&matrix);
        assert_eq!(
            d.partition().indistinguished_pairs(),
            matrix.pass_fail_partition().indistinguished_pairs()
        );
    }
}
