//! The full fault dictionary.

use sdd_logic::BitVec;
use sdd_sim::{Partition, ResponseMatrix};

use crate::DictionarySizes;

/// A full fault dictionary: the complete output vector of every fault under
/// every test.
///
/// Internally the vectors are stored as response classes plus distinct-vector
/// tables (information-lossless and far smaller), but
/// [`size_bits`](FullDictionary::size_bits) reports the paper's `k·n·m`
/// figure — the cost of the naive two-dimensional array a tester would
/// store.
///
/// # Example
///
/// ```
/// use sdd_core::FullDictionary;
///
/// let matrix = sdd_core::example::paper_example();
/// let d = FullDictionary::new(matrix);
/// // Table 1 of the paper:
/// assert_eq!(d.response(0, 0).to_string(), "00"); // z_0,0
/// assert_eq!(d.response(2, 0).to_string(), "01"); // z_2,0
/// assert_eq!(d.indistinguished_pairs(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullDictionary {
    matrix: ResponseMatrix,
}

impl FullDictionary {
    /// Wraps a simulated response matrix as a full dictionary.
    pub fn new(matrix: ResponseMatrix) -> Self {
        Self { matrix }
    }

    /// The underlying response matrix.
    pub fn matrix(&self) -> &ResponseMatrix {
        &self.matrix
    }

    /// Number of faults `n`.
    pub fn fault_count(&self) -> usize {
        self.matrix.fault_count()
    }

    /// Number of tests `k`.
    pub fn test_count(&self) -> usize {
        self.matrix.test_count()
    }

    /// The stored output vector `z_i,j` of fault `fault` under test `test`.
    pub fn response(&self, fault: usize, test: usize) -> BitVec {
        self.matrix.response(test, self.matrix.class(test, fault))
    }

    /// Storage accounting per the paper.
    pub fn sizes(&self) -> DictionarySizes {
        DictionarySizes::new(
            self.matrix.test_count() as u64,
            self.matrix.fault_count() as u64,
            self.matrix.output_count() as u64,
        )
    }

    /// This dictionary's size in bits (`k·n·m`).
    pub fn size_bits(&self) -> u64 {
        self.sizes().full
    }

    /// The partition of faults by complete response signature — the best
    /// resolution achievable with this test set by *any* dictionary.
    pub fn partition(&self) -> Partition {
        self.matrix.full_partition()
    }

    /// Fault pairs even the full dictionary cannot distinguish.
    pub fn indistinguished_pairs(&self) -> u64 {
        self.partition().indistinguished_pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example;

    #[test]
    fn responses_match_table1() {
        let d = FullDictionary::new(paper_example());
        let expected = [
            ["00", "10"], // f0
            ["10", "11"], // f1
            ["01", "10"], // f2
            ["01", "01"], // f3
        ];
        for (fault, row) in expected.iter().enumerate() {
            for (test, want) in row.iter().enumerate() {
                assert_eq!(
                    d.response(fault, test).to_string(),
                    *want,
                    "z_{fault},{test}"
                );
            }
        }
    }

    #[test]
    fn full_dictionary_distinguishes_everything_in_example() {
        let d = FullDictionary::new(paper_example());
        assert_eq!(d.indistinguished_pairs(), 0);
        assert_eq!(d.partition().group_count(), 4);
    }

    #[test]
    fn sizes_match_formula() {
        let d = FullDictionary::new(paper_example());
        assert_eq!(d.size_bits(), 16); // 2·4·2
        assert_eq!(d.fault_count(), 4);
        assert_eq!(d.test_count(), 2);
    }
}
