//! A miniature DPLL SAT solver.
//!
//! Test generation is a satisfiability question: "is there an input
//! assignment under which the faulty circuit's output differs from the
//! fault-free one?" The [`sdd-atpg`] crate encodes that *miter* as CNF and
//! asks this solver. Keeping the solver tiny and dependency-free is
//! deliberate — ATPG instances from the benchmark sizes in this workspace
//! are easy for plain DPLL with watched literals.
//!
//! # Example
//!
//! ```
//! use sdd_sat::{Cnf, Lit, Outcome, Solver};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.fresh();
//! let b = cnf.fresh();
//! cnf.clause([a.positive(), b.positive()]); // a ∨ b
//! cnf.clause([a.negative()]);               // ¬a
//! match Solver::new(cnf).solve() {
//!     Outcome::Sat(model) => {
//!         assert!(!model[a.index()]);
//!         assert!(model[b.index()]);
//!     }
//!     Outcome::Unsat => unreachable!(),
//! }
//! ```
//!
//! [`sdd-atpg`]: https://example.invalid/same-different

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod solver;

pub use solver::{Cnf, Lit, Outcome, Solver, Var};
