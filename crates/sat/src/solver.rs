//! DPLL with two-watched-literal unit propagation.

use std::fmt;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given phase.
    pub fn lit(self, phase: bool) -> Lit {
        if phase {
            self.positive()
        } else {
            self.negative()
        }
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a negated literal.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn complement(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

/// A formula in conjunctive normal form.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    variables: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula (trivially satisfiable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.variables);
        self.variables += 1;
        v
    }

    /// Number of variables allocated.
    pub fn variable_count(&self) -> usize {
        self.variables as usize
    }

    /// Number of clauses.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals). An empty clause makes the
    /// formula unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn clause(&mut self, literals: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = literals.into_iter().collect();
        for &lit in &clause {
            assert!(lit.var().0 < self.variables, "literal {lit} out of range");
        }
        self.clauses.push(clause);
    }
}

/// The solver's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Satisfiable, with one model (`model[v]` = value of variable `v`).
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
}

/// A DPLL solver over one formula.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Vec<Lit>>,
    /// For each literal code, the clauses watching it.
    watches: Vec<Vec<u32>>,
    /// Assignment: `None` unassigned.
    assignment: Vec<Option<bool>>,
    /// Assignment trail; `decisions` marks decision levels (trail indices).
    trail: Vec<Lit>,
    decisions: Vec<usize>,
    queue_head: usize,
    /// Variables in descending static occurrence order — a cheap branching
    /// heuristic that keeps circuit-miter instances tractable.
    branch_order: Vec<Var>,
}

impl Solver {
    /// Prepares a solver for `cnf`.
    pub fn new(cnf: Cnf) -> Self {
        let variables = cnf.variable_count();
        let mut occurrences = vec![0u32; variables];
        for clause in &cnf.clauses {
            for &lit in clause {
                occurrences[lit.var().index()] += 1;
            }
        }
        let mut branch_order: Vec<Var> = (0..variables as u32).map(Var).collect();
        branch_order.sort_by_key(|v| std::cmp::Reverse(occurrences[v.index()]));
        let mut solver = Self {
            clauses: cnf.clauses,
            watches: vec![Vec::new(); variables * 2],
            assignment: vec![None; variables],
            trail: Vec::new(),
            decisions: Vec::new(),
            queue_head: 0,
            branch_order,
        };
        for (index, clause) in solver.clauses.iter().enumerate() {
            match clause.len() {
                0 => {}
                1 => {
                    // Watched during solve via the unit queue.
                    solver.watches[clause[0].code()].push(index as u32);
                }
                _ => {
                    solver.watches[clause[0].code()].push(index as u32);
                    solver.watches[clause[1].code()].push(index as u32);
                }
            }
        }
        solver
    }

    /// Like [`solve`](Self::solve), but gives up after `max_backtracks`
    /// chronological backtracks, returning `None` — for callers that prefer
    /// "unknown" over unbounded runtime on hard instances.
    pub fn solve_with_budget(self, max_backtracks: usize) -> Option<Outcome> {
        self.solve_inner(Some(max_backtracks))
    }

    /// Decides satisfiability; on success returns a full model.
    pub fn solve(self) -> Outcome {
        self.solve_inner(None)
            .expect("unbounded solving always reaches a verdict")
    }

    fn solve_inner(mut self, budget: Option<usize>) -> Option<Outcome> {
        // Empty clauses are immediately unsatisfiable; unit clauses seed the
        // propagation queue.
        for i in 0..self.clauses.len() {
            match self.clauses[i].len() {
                0 => return Some(Outcome::Unsat),
                1 => {
                    let lit = self.clauses[i][0];
                    if !self.enqueue(lit) {
                        return Some(Outcome::Unsat);
                    }
                }
                _ => {}
            }
        }
        if !self.propagate() {
            return Some(Outcome::Unsat);
        }
        let mut backtracks = 0usize;
        loop {
            match self.pick_branch() {
                None => {
                    let model = self.assignment.iter().map(|a| a.unwrap_or(false)).collect();
                    return Some(Outcome::Sat(model));
                }
                Some(var) => {
                    self.decisions.push(self.trail.len());
                    let ok = self.enqueue(var.positive()) && self.propagate();
                    if !ok {
                        backtracks += 1;
                        if budget.is_some_and(|max| backtracks > max) {
                            return None;
                        }
                        if !self.backtrack() {
                            return Some(Outcome::Unsat);
                        }
                    }
                }
            }
        }
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assignment[lit.var().index()].map(|v| v ^ lit.is_negative())
    }

    /// Assigns `lit` true; `false` on conflict with the current assignment.
    fn enqueue(&mut self, lit: Lit) -> bool {
        match self.value(lit) {
            Some(true) => true,
            Some(false) => false,
            None => {
                self.assignment[lit.var().index()] = Some(!lit.is_negative());
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation; `false` on conflict.
    fn propagate(&mut self) -> bool {
        while self.queue_head < self.trail.len() {
            let lit = self.trail[self.queue_head];
            self.queue_head += 1;
            let falsified = lit.complement();
            // Clauses watching the falsified literal must find a new watch,
            // become unit, or conflict.
            let mut watchers = std::mem::take(&mut self.watches[falsified.code()]);
            let mut keep = Vec::with_capacity(watchers.len());
            let mut conflict = false;
            for &clause_index in &watchers {
                if conflict {
                    keep.push(clause_index);
                    continue;
                }
                let clause = &mut self.clauses[clause_index as usize];
                if clause.len() == 1 {
                    // Unit clause watching its only literal.
                    keep.push(clause_index);
                    if self.assignment[falsified.var().index()].map(|v| v ^ clause[0].is_negative())
                        == Some(false)
                        && clause[0].var() == falsified.var()
                    {
                        conflict = true;
                    }
                    continue;
                }
                // Normalize: watched literals sit at positions 0 and 1.
                if clause[0] == falsified {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], falsified);
                // If the other watch is already true, the clause is happy.
                let first = clause[0];
                if self.assignment[first.var().index()].map(|v| v ^ first.is_negative())
                    == Some(true)
                {
                    keep.push(clause_index);
                    continue;
                }
                // Find a replacement watch.
                let mut replaced = false;
                for pos in 2..clause.len() {
                    let candidate = clause[pos];
                    let value = self.assignment[candidate.var().index()]
                        .map(|v| v ^ candidate.is_negative());
                    if value != Some(false) {
                        clause.swap(1, pos);
                        self.watches[candidate.code()].push(clause_index);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // No replacement: clause is unit (first) or conflicting.
                keep.push(clause_index);
                if !self.enqueue(first) {
                    conflict = true;
                }
            }
            watchers.clear();
            self.watches[falsified.code()].append(&mut keep);
            drop(watchers);
            if conflict {
                return false;
            }
        }
        true
    }

    /// Most-occurring unassigned variable, if any.
    fn pick_branch(&self) -> Option<Var> {
        self.branch_order
            .iter()
            .copied()
            .find(|v| self.assignment[v.index()].is_none())
    }

    /// Undoes to the last decision taken positively and retries it
    /// negatively; `false` when the tree is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(level) = self.decisions.pop() {
            let decided = self.trail[level];
            for lit in self.trail.drain(level..) {
                self.assignment[lit.var().index()] = None;
            }
            self.queue_head = self.trail.len();
            if !decided.is_negative() {
                // Try the complementary phase as a pseudo-decision that we
                // will not flip again (mark by negative phase).
                self.decisions.push(self.trail.len());
                if self.enqueue(decided.complement()) && self.propagate() {
                    return true;
                }
                // Immediate conflict: keep unwinding.
                let level = self.decisions.pop().expect("just pushed");
                for lit in self.trail.drain(level..) {
                    self.assignment[lit.var().index()] = None;
                }
                self.queue_head = self.trail.len();
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_model(clauses: &[Vec<Lit>], model: &[bool]) {
        for clause in clauses {
            assert!(
                clause
                    .iter()
                    .any(|&l| model[l.var().index()] ^ l.is_negative()),
                "clause unsatisfied"
            );
        }
    }

    #[test]
    fn trivial_cases() {
        assert!(matches!(Solver::new(Cnf::new()).solve(), Outcome::Sat(_)));
        let mut cnf = Cnf::new();
        cnf.clause([]);
        assert_eq!(Solver::new(cnf).solve(), Outcome::Unsat);
    }

    #[test]
    fn unit_conflict_is_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        cnf.clause([a.positive()]);
        cnf.clause([a.negative()]);
        assert_eq!(Solver::new(cnf).solve(), Outcome::Unsat);
    }

    #[test]
    fn simple_sat_with_model_check() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        let b = cnf.fresh();
        let c = cnf.fresh();
        cnf.clause([a.positive(), b.positive()]);
        cnf.clause([a.negative(), c.positive()]);
        cnf.clause([b.negative(), c.negative()]);
        let clauses = cnf.clauses.clone();
        match Solver::new(cnf).solve() {
            Outcome::Sat(model) => check_model(&clauses, &model),
            Outcome::Unsat => panic!("formula is satisfiable"),
        }
    }

    #[test]
    fn pigeonhole_three_into_two_is_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| cnf.fresh()).collect())
            .collect();
        for pigeon in &p {
            cnf.clause(pigeon.iter().map(|v| v.positive()));
        }
        for hole in [0, 1] {
            for i in 0..3 {
                for j in i + 1..3 {
                    cnf.clause([p[i][hole].negative(), p[j][hole].negative()]);
                }
            }
        }
        assert_eq!(Solver::new(cnf).solve(), Outcome::Unsat);
    }

    #[test]
    fn xor_chain_parity() {
        // x0 ⊕ x1 ⊕ x2 = 1 via Tseitin-style clauses; satisfiable.
        let mut cnf = Cnf::new();
        let x: Vec<Var> = (0..3).map(|_| cnf.fresh()).collect();
        // Enumerate the 4 odd-parity-violating combinations as blocked.
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    if a ^ b ^ c {
                        continue; // allowed
                    }
                    cnf.clause([x[0].lit(!a), x[1].lit(!b), x[2].lit(!c)]);
                }
            }
        }
        let clauses = cnf.clauses.clone();
        match Solver::new(cnf).solve() {
            Outcome::Sat(model) => {
                check_model(&clauses, &model);
                assert!(model[0] ^ model[1] ^ model[2]);
            }
            Outcome::Unsat => panic!("odd parity is achievable"),
        }
    }

    #[test]
    fn randomized_small_formulas_agree_with_brute_force() {
        use sdd_logic::Prng;
        let mut rng = Prng::seed_from_u64(12);
        for _ in 0..300 {
            let variables = rng.gen_range(1..=6usize);
            let clause_count = rng.gen_range(0..=12usize);
            let mut cnf = Cnf::new();
            let vars: Vec<Var> = (0..variables).map(|_| cnf.fresh()).collect();
            let mut clauses = Vec::new();
            for _ in 0..clause_count {
                let len = rng.gen_range(1..=3usize);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| vars[rng.gen_range(0..variables)].lit(rng.gen_bool(0.5)))
                    .collect();
                clauses.push(clause.clone());
                cnf.clause(clause);
            }
            // Brute force ground truth.
            let mut satisfiable = false;
            for bits in 0u32..1 << variables {
                let model: Vec<bool> = (0..variables).map(|i| bits >> i & 1 == 1).collect();
                if clauses
                    .iter()
                    .all(|c| c.iter().any(|&l| model[l.var().index()] ^ l.is_negative()))
                {
                    satisfiable = true;
                    break;
                }
            }
            match Solver::new(cnf).solve() {
                Outcome::Sat(model) => {
                    assert!(satisfiable, "solver found model for unsat formula");
                    check_model(&clauses, &model);
                }
                Outcome::Unsat => assert!(!satisfiable, "solver missed a model"),
            }
        }
    }

    #[test]
    fn literal_basics() {
        let v = Var(3);
        assert_eq!(v.positive().var(), v);
        assert!(!v.positive().is_negative());
        assert!(v.negative().is_negative());
        assert_eq!(v.positive().complement(), v.negative());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.positive().to_string(), "x3");
        assert_eq!(v.negative().to_string(), "¬x3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let mut cnf = Cnf::new();
        cnf.clause([Var(0).positive()]);
    }
}
