//! Fault sites, faults, and fault-universe enumeration.

use std::fmt;

use sdd_netlist::{Circuit, Driver, NetId};

/// Dense index of a fault within a [`FaultUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultId(pub u32);

impl FaultId {
    /// The fault's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A physical line a stuck-at fault can sit on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The stem of a net: the output of whatever drives it.
    Stem(NetId),
    /// One gate input pin, identified by the gate's output net and the pin
    /// index. Only enumerated when the feeding net has fan-out > 1;
    /// otherwise the pin is the same physical line as the stem.
    Branch {
        /// Output net of the gate whose input pin carries the fault.
        gate: NetId,
        /// Zero-based pin index into the gate's fan-in list.
        pin: u32,
    },
}

/// A single stuck-at fault: a [`FaultSite`] fixed at a constant value.
///
/// # Example
///
/// ```
/// use sdd_fault::{Fault, FaultSite};
/// use sdd_netlist::NetId;
///
/// let f = Fault { site: FaultSite::Stem(NetId(3)), stuck_at: true };
/// assert!(f.stuck_at);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The constant value the line is stuck at.
    pub stuck_at: bool,
}

impl Fault {
    /// Renders the fault with circuit net names, e.g. `N11->N16 s-a-1`.
    pub fn describe(&self, circuit: &Circuit) -> String {
        let value = u8::from(self.stuck_at);
        match self.site {
            FaultSite::Stem(net) => format!("{} s-a-{value}", circuit.net_name(net)),
            FaultSite::Branch { gate, pin } => {
                let source = circuit.driver(gate).fanin()[pin as usize];
                format!(
                    "{}->{} s-a-{value}",
                    circuit.net_name(source),
                    circuit.net_name(gate)
                )
            }
        }
    }
}

/// Every single stuck-at fault of one circuit, in a stable enumeration
/// order (stem faults in net order, then branch faults in gate/pin order;
/// `s-a-0` before `s-a-1` at each site).
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
    /// For branch sites, the feeding net (parallel to `faults`; stems map to
    /// their own net). Used by collapsing and by the simulator.
    source_net: Vec<NetId>,
}

impl FaultUniverse {
    /// Enumerates all stuck-at faults of `circuit`.
    ///
    /// Branch faults are created only where the feeding net has fan-out
    /// greater than one (counting gate pins, flip-flop data pins, and
    /// primary-output listings), matching the standard fault universe used
    /// with collapsed fault lists.
    pub fn enumerate(circuit: &Circuit) -> Self {
        let fanout = circuit.fanout_counts();
        let mut faults = Vec::new();
        let mut source_net = Vec::new();
        for net in circuit.nets() {
            for stuck_at in [false, true] {
                faults.push(Fault {
                    site: FaultSite::Stem(net),
                    stuck_at,
                });
                source_net.push(net);
            }
        }
        for gate in circuit.nets() {
            if let Driver::Gate { inputs, .. } = circuit.driver(gate) {
                for (pin, &source) in inputs.iter().enumerate() {
                    if fanout[source.index()] > 1 {
                        for stuck_at in [false, true] {
                            faults.push(Fault {
                                site: FaultSite::Branch {
                                    gate,
                                    pin: pin as u32,
                                },
                                stuck_at,
                            });
                            source_net.push(source);
                        }
                    }
                }
            }
        }
        Self { faults, source_net }
    }

    /// Number of faults in the universe.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the circuit somehow has no faults (it cannot: every
    /// valid circuit has at least one net).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault with the given id.
    pub fn fault(&self, id: FaultId) -> Fault {
        self.faults[id.index()]
    }

    /// All faults in enumeration order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The net whose value the fault corrupts at its site (the branch's
    /// feeding net, or the stem's own net).
    pub fn site_net(&self, id: FaultId) -> NetId {
        self.source_net[id.index()]
    }

    /// Iterates over `(id, fault)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FaultId, Fault)> + '_ {
        self.faults
            .iter()
            .enumerate()
            .map(|(i, &f)| (FaultId(i as u32), f))
    }

    /// Finds the id of a fault, if it is in the universe.
    pub fn id_of(&self, fault: Fault) -> Option<FaultId> {
        self.faults
            .iter()
            .position(|&f| f == fault)
            .map(|i| FaultId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_netlist::library::c17;
    use sdd_netlist::{CircuitBuilder, GateKind};

    #[test]
    fn c17_universe_size() {
        // 11 nets × 2 + 3 fan-out-2 nets × 2 pins × 2 values = 22 + 12 = 34.
        let u = FaultUniverse::enumerate(&c17());
        assert_eq!(u.len(), 34);
        assert!(!u.is_empty());
    }

    #[test]
    fn stems_precede_branches_and_sa0_precedes_sa1() {
        let u = FaultUniverse::enumerate(&c17());
        assert!(!u.fault(FaultId(0)).stuck_at);
        assert!(u.fault(FaultId(1)).stuck_at);
        assert!(matches!(u.fault(FaultId(0)).site, FaultSite::Stem(_)));
        let first_branch = u
            .iter()
            .position(|(_, f)| matches!(f.site, FaultSite::Branch { .. }))
            .unwrap();
        assert_eq!(first_branch, 22);
    }

    #[test]
    fn branch_faults_only_on_fanout_stems() {
        let c = c17();
        let u = FaultUniverse::enumerate(&c);
        let fanout = c.fanout_counts();
        for (_, f) in u.iter() {
            if let FaultSite::Branch { gate, pin } = f.site {
                let source = c.driver(gate).fanin()[pin as usize];
                assert!(fanout[source.index()] > 1, "branch on fan-out-free net");
            }
        }
    }

    #[test]
    fn site_net_matches_definition() {
        let c = c17();
        let u = FaultUniverse::enumerate(&c);
        for (id, f) in u.iter() {
            match f.site {
                FaultSite::Stem(net) => assert_eq!(u.site_net(id), net),
                FaultSite::Branch { gate, pin } => {
                    assert_eq!(u.site_net(id), c.driver(gate).fanin()[pin as usize])
                }
            }
        }
    }

    #[test]
    fn describe_uses_net_names() {
        let c = c17();
        let u = FaultUniverse::enumerate(&c);
        let stem = u.fault(FaultId(1));
        assert_eq!(stem.describe(&c), "N1 s-a-1");
        let (branch_id, _) = u
            .iter()
            .find(|(_, f)| matches!(f.site, FaultSite::Branch { .. }))
            .unwrap();
        let text = u.fault(branch_id).describe(&c);
        assert!(text.contains("->"), "{text}");
    }

    #[test]
    fn id_of_round_trips() {
        let u = FaultUniverse::enumerate(&c17());
        for (id, f) in u.iter() {
            assert_eq!(u.id_of(f), Some(id));
        }
    }

    #[test]
    fn po_fanout_counts_toward_branching() {
        // Net feeds both a PO and one gate: fan-out 2, so the gate pin gets
        // branch faults even though only one *gate* consumes the net.
        let mut b = CircuitBuilder::new("po_branch");
        let a = b.input("a");
        let g = b.gate("g", GateKind::Not, vec![a]);
        b.output(a);
        b.output(g);
        let c = b.finish().unwrap();
        let u = FaultUniverse::enumerate(&c);
        // 2 nets × 2 stems + branch a->g × 2 = 6.
        assert_eq!(u.len(), 6);
    }
}
