//! Structural fault collapsing.
//!
//! Two faults are *equivalent* when every input pattern produces identical
//! output responses for both; a dictionary (of any kind) can never tell them
//! apart, so only one representative per equivalence class is kept. The
//! classic structural rules are:
//!
//! * AND: any input `s-a-0` ≡ output `s-a-0`; NAND: input `s-a-0` ≡ output
//!   `s-a-1`; OR: input `s-a-1` ≡ output `s-a-1`; NOR: input `s-a-1` ≡
//!   output `s-a-0`.
//! * NOT: input `s-a-v` ≡ output `s-a-v̄`; BUF: input `s-a-v` ≡ output
//!   `s-a-v`. A D flip-flop behaves like a buffer across the scan boundary.
//! * XOR/XNOR admit no structural equivalences.
//!
//! *Dominance* collapsing (`f` dominates `g` when every test for `g` also
//! detects `f`) is also provided; it further shrinks the list but — unlike
//! equivalence — can merge faults that a dictionary *could* distinguish, so
//! the paper's experiments (and this workspace's defaults) use equivalence
//! collapsing only.

use sdd_netlist::{Circuit, Driver, GateKind};

use crate::{Fault, FaultId, FaultSite, FaultUniverse};

/// The result of collapsing a [`FaultUniverse`]: one representative fault
/// per equivalence class, plus the class map for the whole universe.
///
/// # Example
///
/// ```
/// use sdd_fault::FaultUniverse;
/// let c17 = sdd_netlist::library::c17();
/// let collapsed = FaultUniverse::enumerate(&c17).collapse_on(&c17);
/// assert_eq!(collapsed.representatives().len(), 22);
/// // Every fault maps to a representative in its own class:
/// for (id, _) in FaultUniverse::enumerate(&c17).iter() {
///     let rep = collapsed.representative(id);
///     assert_eq!(collapsed.representative(rep), rep);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    representatives: Vec<FaultId>,
    class_of: Vec<FaultId>,
    faults: Vec<Fault>,
}

impl CollapsedFaults {
    /// The representative faults, one per class, in universe order.
    pub fn representatives(&self) -> &[FaultId] {
        &self.representatives
    }

    /// The representative faults themselves (parallel to
    /// [`representatives`](Self::representatives)).
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The representative of the class containing `fault`.
    pub fn representative(&self, fault: FaultId) -> FaultId {
        self.class_of[fault.index()]
    }

    /// Number of equivalence classes.
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// Returns `true` when there are no classes (empty universe).
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }
}

impl FaultUniverse {
    /// Equivalence-collapses the universe using `circuit`'s structure.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` is not the circuit this universe was enumerated
    /// from (site indices out of range).
    pub fn collapse_on(&self, circuit: &Circuit) -> CollapsedFaults {
        let mut dsu = Dsu::new(self.len());
        let index = SiteIndex::build(self, circuit);

        for gate in circuit.nets() {
            match circuit.driver(gate) {
                Driver::Gate { kind, inputs } => {
                    let arity = inputs.len();
                    match kind {
                        GateKind::Buf | GateKind::Not => {
                            let invert = kind.inverts();
                            for v in [false, true] {
                                if let (Some(a), Some(b)) = (
                                    index.pin_fault(circuit, gate, 0, v),
                                    index.stem_fault(gate, v ^ invert),
                                ) {
                                    dsu.union(a, b);
                                }
                            }
                        }
                        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                            let c = kind
                                .controlling_value()
                                .expect("AND/NAND/OR/NOR have controlling values");
                            let out_value = c ^ kind.inverts();
                            if let Some(out) = index.stem_fault(gate, out_value) {
                                for pin in 0..arity {
                                    if let Some(p) = index.pin_fault(circuit, gate, pin, c) {
                                        dsu.union(p, out);
                                    }
                                }
                            }
                        }
                        GateKind::Xor | GateKind::Xnor => {}
                    }
                }
                // No rule for flip-flops: under full scan the data net is a
                // pseudo primary *output* (observed directly at scan-out)
                // while the Q net is a pseudo primary *input* (controlled at
                // scan-in). D s-a-v and Q s-a-v sit on opposite sides of the
                // scan boundary and are detected by different patterns, so —
                // unlike a buffer — a DFF admits no structural equivalence.
                Driver::Dff { .. } | Driver::Input => {}
            }
        }

        self.finish_classes(dsu)
    }

    /// Dominance-collapses on top of equivalence collapsing.
    ///
    /// For each AND/NAND/OR/NOR gate, the output fault at the
    /// non-controlled value (`s-a-c̄ ⊕ inv`) dominates each input fault at
    /// the non-controlling value, so the output fault is dropped in favour
    /// of the input faults. This is useful for *detection*-oriented fault
    /// lists; diagnosis keeps equivalence collapsing because dominance
    /// merges distinguishable faults.
    pub fn collapse_dominance_on(&self, circuit: &Circuit) -> CollapsedFaults {
        let equivalence = self.collapse_on(circuit);
        let mut dsu = Dsu::new(self.len());
        for (id, _) in self.iter() {
            dsu.union(id, equivalence.representative(id));
        }
        let index = SiteIndex::build(self, circuit);
        for gate in circuit.nets() {
            if let Driver::Gate { kind, inputs } = circuit.driver(gate) {
                if let Some(c) = kind.controlling_value() {
                    let dominated_out = index.stem_fault(gate, !c ^ kind.inverts());
                    if let Some(out) = dominated_out {
                        for pin in 0..inputs.len() {
                            if let Some(p) = index.pin_fault(circuit, gate, pin, !c) {
                                dsu.union(out, p);
                            }
                        }
                    }
                }
            }
        }
        self.finish_classes(dsu)
    }

    fn finish_classes(&self, mut dsu: Dsu) -> CollapsedFaults {
        let mut class_of = vec![FaultId(0); self.len()];
        // Normalize so the class map points at the smallest member of each
        // class and representatives come out sorted.
        let mut smallest = vec![FaultId(u32::MAX); self.len()];
        for (id, _) in self.iter() {
            let root = dsu.find(id);
            if smallest[root.index()] == FaultId(u32::MAX) {
                smallest[root.index()] = id;
            }
        }
        let mut representatives = Vec::new();
        let mut faults = Vec::new();
        for (id, fault) in self.iter() {
            let root = dsu.find(id);
            class_of[id.index()] = smallest[root.index()];
            if smallest[root.index()] == id {
                representatives.push(id);
                faults.push(fault);
            }
        }
        CollapsedFaults {
            representatives,
            class_of,
            faults,
        }
    }
}

/// Fast lookup from fault sites to fault ids.
struct SiteIndex {
    /// `stem[net][value]`
    stem: Vec<[Option<FaultId>; 2]>,
    /// `(gate, pin, value) → id` for branch faults.
    branch: std::collections::HashMap<(u32, u32, bool), FaultId>,
}

impl SiteIndex {
    fn build(universe: &FaultUniverse, circuit: &Circuit) -> Self {
        let mut stem = vec![[None, None]; circuit.net_count()];
        let mut branch = std::collections::HashMap::new();
        for (id, fault) in universe.iter() {
            match fault.site {
                FaultSite::Stem(net) => stem[net.index()][usize::from(fault.stuck_at)] = Some(id),
                FaultSite::Branch { gate, pin } => {
                    branch.insert((gate.0, pin, fault.stuck_at), id);
                }
            }
        }
        Self { stem, branch }
    }

    fn stem_fault(&self, net: sdd_netlist::NetId, value: bool) -> Option<FaultId> {
        self.stem[net.index()][usize::from(value)]
    }

    /// The fault on a gate's input pin: the branch fault when the feeding
    /// net has fan-out, otherwise the feeding net's stem fault (same line).
    fn pin_fault(
        &self,
        circuit: &Circuit,
        gate: sdd_netlist::NetId,
        pin: usize,
        value: bool,
    ) -> Option<FaultId> {
        if let Some(&id) = self.branch.get(&(gate.0, pin as u32, value)) {
            return Some(id);
        }
        let source = circuit.driver(gate).fanin()[pin];
        self.stem_fault(source, value)
    }
}

/// Minimal union-find over fault ids.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(len: usize) -> Self {
        Self {
            parent: (0..len as u32).collect(),
        }
    }

    fn find(&mut self, id: FaultId) -> FaultId {
        let mut root = id.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cursor = id.0;
        while self.parent[cursor as usize] != root {
            let next = self.parent[cursor as usize];
            self.parent[cursor as usize] = root;
            cursor = next;
        }
        FaultId(root)
    }

    fn union(&mut self, a: FaultId, b: FaultId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Attach the larger id under the smaller for stable reps.
            if ra.0 < rb.0 {
                self.parent[rb.0 as usize] = ra.0;
            } else {
                self.parent[ra.0 as usize] = rb.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_netlist::library::c17;
    use sdd_netlist::{CircuitBuilder, GateKind};

    #[test]
    fn c17_collapses_to_22() {
        let c = c17();
        let u = FaultUniverse::enumerate(&c);
        let collapsed = u.collapse_on(&c);
        assert_eq!(collapsed.len(), 22);
        assert!(!collapsed.is_empty());
        assert_eq!(collapsed.representatives().len(), collapsed.faults().len());
    }

    #[test]
    fn class_map_is_idempotent_and_consistent() {
        let c = c17();
        let u = FaultUniverse::enumerate(&c);
        let collapsed = u.collapse_on(&c);
        for (id, _) in u.iter() {
            let rep = collapsed.representative(id);
            assert_eq!(collapsed.representative(rep), rep, "rep of rep is rep");
            assert!(collapsed.representatives().contains(&rep));
        }
    }

    #[test]
    fn representatives_are_smallest_in_class() {
        let c = c17();
        let u = FaultUniverse::enumerate(&c);
        let collapsed = u.collapse_on(&c);
        for (id, _) in u.iter() {
            assert!(collapsed.representative(id) <= id);
        }
    }

    #[test]
    fn nand_rule_merges_input_sa0_with_output_sa1() {
        // y = NAND(a, b): a s-a-0 ≡ b s-a-0 ≡ y s-a-1.
        let mut builder = CircuitBuilder::new("nand1");
        let a = builder.input("a");
        let b = builder.input("b");
        let y = builder.gate("y", GateKind::Nand, vec![a, b]);
        builder.output(y);
        let c = builder.finish().unwrap();
        let u = FaultUniverse::enumerate(&c);
        let collapsed = u.collapse_on(&c);
        let fid = |site, stuck_at| u.id_of(Fault { site, stuck_at }).unwrap();
        let a0 = fid(FaultSite::Stem(a), false);
        let b0 = fid(FaultSite::Stem(b), false);
        let y1 = fid(FaultSite::Stem(y), true);
        assert_eq!(collapsed.representative(a0), collapsed.representative(b0));
        assert_eq!(collapsed.representative(a0), collapsed.representative(y1));
        // 6 faults total, 3 merge into 1 → 4 classes.
        assert_eq!(collapsed.len(), 4);
    }

    #[test]
    fn xor_has_no_equivalences() {
        let mut builder = CircuitBuilder::new("xor1");
        let a = builder.input("a");
        let b = builder.input("b");
        let y = builder.gate("y", GateKind::Xor, vec![a, b]);
        builder.output(y);
        let c = builder.finish().unwrap();
        let u = FaultUniverse::enumerate(&c);
        assert_eq!(u.collapse_on(&c).len(), u.len());
    }

    #[test]
    fn inverter_chain_collapses_fully() {
        // a -> NOT x -> NOT y (PO): a0≡x1≡y0, a1≡x0≡y1 → 2 classes.
        let mut builder = CircuitBuilder::new("invchain");
        let a = builder.input("a");
        let x = builder.gate("x", GateKind::Not, vec![a]);
        let y = builder.gate("y", GateKind::Not, vec![x]);
        builder.output(y);
        let c = builder.finish().unwrap();
        let u = FaultUniverse::enumerate(&c);
        assert_eq!(u.len(), 6);
        assert_eq!(u.collapse_on(&c).len(), 2);
    }

    #[test]
    fn dff_blocks_collapsing_across_the_scan_boundary() {
        // Under full scan the DFF data net is a pseudo output and Q a pseudo
        // input: D s-a-v (observed at scan-out) and Q s-a-v (injected at
        // scan-in) are distinct faults and must not merge. The buffer after
        // Q still collapses with Q normally.
        let mut builder = CircuitBuilder::new("dffbuf");
        let a = builder.input("a");
        let d = builder.gate("d", GateKind::Not, vec![a]);
        let q = builder.dff("q", d);
        let y = builder.gate("y", GateKind::Buf, vec![q]);
        builder.output(y);
        let c = builder.finish().unwrap();
        let u = FaultUniverse::enumerate(&c);
        let collapsed = u.collapse_on(&c);
        let fid = |site, stuck_at| u.id_of(Fault { site, stuck_at }).unwrap();
        assert_ne!(
            collapsed.representative(fid(FaultSite::Stem(d), false)),
            collapsed.representative(fid(FaultSite::Stem(q), false)),
            "D and Q faults are on opposite sides of the scan boundary"
        );
        assert_eq!(
            collapsed.representative(fid(FaultSite::Stem(q), true)),
            collapsed.representative(fid(FaultSite::Stem(y), true)),
            "Q collapses through the buffer it feeds"
        );
    }

    #[test]
    fn fanout_blocks_collapsing_across_stem() {
        // a feeds two NANDs; branch faults exist and collapse into their
        // gates, but the stem faults of a stay separate classes.
        let mut builder = CircuitBuilder::new("fan");
        let a = builder.input("a");
        let b = builder.input("b");
        let x = builder.gate("x", GateKind::Nand, vec![a, b]);
        let y = builder.gate("y", GateKind::Nand, vec![a, x]);
        builder.output(x);
        builder.output(y);
        let c = builder.finish().unwrap();
        let u = FaultUniverse::enumerate(&c);
        let collapsed = u.collapse_on(&c);
        let fid = |site, stuck_at| u.id_of(Fault { site, stuck_at }).unwrap();
        let a0 = fid(FaultSite::Stem(a), false);
        let x1 = fid(FaultSite::Stem(x), true);
        assert_ne!(
            collapsed.representative(a0),
            collapsed.representative(x1),
            "stem fault must not merge through a fan-out branch"
        );
        // But the branch a->x s-a-0 does merge with x s-a-1.
        let branch_a_x0 = fid(FaultSite::Branch { gate: x, pin: 0 }, false);
        assert_eq!(
            collapsed.representative(branch_a_x0),
            collapsed.representative(x1)
        );
    }

    #[test]
    fn dominance_collapsing_is_at_least_as_small() {
        let c = c17();
        let u = FaultUniverse::enumerate(&c);
        let eq = u.collapse_on(&c);
        let dom = u.collapse_dominance_on(&c);
        assert!(dom.len() <= eq.len(), "{} > {}", dom.len(), eq.len());
        assert!(dom.len() < u.len());
    }
}
