//! The single stuck-at fault model.
//!
//! A *fault* fixes one circuit line to a constant logic value. Lines are
//! either *stems* (the output of a net's driver) or *branches* (an individual
//! gate input pin fed by a net with fan-out greater than one — for fan-out-free
//! nets the branch is physically the same line as the stem and is not
//! enumerated separately).
//!
//! The module provides:
//!
//! * [`Fault`], [`FaultSite`], [`FaultId`] — the fault vocabulary shared by
//!   the simulator, the test generator and the dictionaries;
//! * [`FaultUniverse`] — enumeration of every stuck-at fault of a circuit;
//! * [`FaultUniverse::collapse_on`] — structural equivalence collapsing (the
//!   paper uses "the set of collapsed single stuck-at faults" as its fault
//!   set `F`), plus optional dominance collapsing for ablations.
//!
//! # Example
//!
//! ```
//! use sdd_fault::FaultUniverse;
//!
//! let c17 = sdd_netlist::library::c17();
//! let universe = FaultUniverse::enumerate(&c17);
//! assert_eq!(universe.len(), 34);
//! let collapsed = universe.collapse_on(&c17);
//! assert_eq!(collapsed.representatives().len(), 22); // the classic c17 count
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collapse;
mod defect;
mod model;

pub use collapse::CollapsedFaults;
pub use defect::{BridgeKind, Defect};
pub use model::{Fault, FaultId, FaultSite, FaultUniverse};
