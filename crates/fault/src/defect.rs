//! Out-of-model defect descriptions.
//!
//! Dictionaries are built from *modeled* faults — single stuck-at lines —
//! but real silicon misbehaves in richer ways. This module describes the
//! classic out-of-model defects used to stress diagnosis (the paper's
//! reference [7] diagnoses CMOS bridging faults with stuck-at
//! dictionaries): multiple simultaneous stuck-at lines and two-net bridges.
//! Simulation lives in `sdd-sim::reference::defect_response`.

use std::fmt;

use sdd_netlist::{Circuit, NetId};

use crate::Fault;

/// How a two-net bridge resolves conflicting drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BridgeKind {
    /// Wired-AND: both nets read the AND of their driven values.
    And,
    /// Wired-OR: both nets read the OR of their driven values.
    Or,
    /// Net `a` wins: `b` reads `a`'s driven value (dominant bridge).
    ADominates,
    /// Net `b` wins: `a` reads `b`'s driven value.
    BDominates,
}

impl fmt::Display for BridgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BridgeKind::And => "wired-AND",
            BridgeKind::Or => "wired-OR",
            BridgeKind::ADominates => "a-dominant",
            BridgeKind::BDominates => "b-dominant",
        })
    }
}

/// A physical defect, possibly outside the single stuck-at model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defect {
    /// A single stuck-at fault — the modeled case.
    StuckAt(Fault),
    /// Several stuck-at lines failing simultaneously.
    MultipleStuckAt(Vec<Fault>),
    /// A resistive/short bridge between two nets.
    Bridge {
        /// First bridged net.
        a: NetId,
        /// Second bridged net.
        b: NetId,
        /// Resolution function of the short.
        kind: BridgeKind,
    },
}

impl Defect {
    /// Renders the defect with net names.
    pub fn describe(&self, circuit: &Circuit) -> String {
        match self {
            Defect::StuckAt(fault) => fault.describe(circuit),
            Defect::MultipleStuckAt(faults) => {
                let parts: Vec<String> = faults.iter().map(|f| f.describe(circuit)).collect();
                format!("multiple: {}", parts.join(" + "))
            }
            Defect::Bridge { a, b, kind } => format!(
                "bridge({}, {}) {kind}",
                circuit.net_name(*a),
                circuit.net_name(*b)
            ),
        }
    }

    /// The stuck-at faults whose sites overlap this defect — the candidates
    /// a stuck-at diagnosis is considered *successful* for (standard
    /// bridging-diagnosis criterion: report a fault on one of the bridged
    /// nets).
    pub fn plausible_sites(&self) -> Vec<NetId> {
        match self {
            Defect::StuckAt(fault) => vec![site_net_of(fault)],
            Defect::MultipleStuckAt(faults) => faults.iter().map(site_net_of).collect(),
            Defect::Bridge { a, b, .. } => vec![*a, *b],
        }
    }
}

fn site_net_of(fault: &Fault) -> NetId {
    match fault.site {
        crate::FaultSite::Stem(net) => net,
        crate::FaultSite::Branch { gate, .. } => gate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultSite, FaultUniverse};
    use sdd_netlist::library::c17;

    #[test]
    fn describe_formats() {
        let c = c17();
        let u = FaultUniverse::enumerate(&c);
        let f0 = u.fault(crate::FaultId(0));
        let single = Defect::StuckAt(f0);
        assert_eq!(single.describe(&c), f0.describe(&c));
        let multi = Defect::MultipleStuckAt(vec![f0, u.fault(crate::FaultId(3))]);
        assert!(multi.describe(&c).contains('+'));
        let bridge = Defect::Bridge {
            a: c.net("N10").unwrap(),
            b: c.net("N11").unwrap(),
            kind: BridgeKind::And,
        };
        assert_eq!(bridge.describe(&c), "bridge(N10, N11) wired-AND");
    }

    #[test]
    fn plausible_sites_cover_the_defect() {
        let c = c17();
        let a = c.net("N10").unwrap();
        let b = c.net("N16").unwrap();
        let bridge = Defect::Bridge {
            a,
            b,
            kind: BridgeKind::Or,
        };
        assert_eq!(bridge.plausible_sites(), vec![a, b]);

        let stem = Defect::StuckAt(Fault {
            site: FaultSite::Stem(a),
            stuck_at: true,
        });
        assert_eq!(stem.plausible_sites(), vec![a]);

        let branch = Defect::StuckAt(Fault {
            site: FaultSite::Branch { gate: b, pin: 0 },
            stuck_at: false,
        });
        assert_eq!(branch.plausible_sites(), vec![b]);
    }

    #[test]
    fn bridge_kind_display() {
        assert_eq!(BridgeKind::ADominates.to_string(), "a-dominant");
        assert_eq!(BridgeKind::Or.to_string(), "wired-OR");
    }
}
