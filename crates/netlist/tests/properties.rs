//! Property-style tests for the netlist layer: generator validity, bench
//! round-trips, and levelization invariants. Driven by the in-tree seeded
//! [`Prng`] so they run without registry access.

use sdd_logic::Prng;
use sdd_netlist::generator::{generate, Profile};
use sdd_netlist::{bench, CombView, Driver};

const CASES: usize = 48;

fn random_profile(rng: &mut Prng) -> (Profile, u64) {
    (
        Profile {
            name: "prop",
            inputs: rng.gen_range(1..8),
            outputs: rng.gen_range(1..5),
            dffs: rng.gen_range(0..6),
            gates: rng.gen_range(5..80),
        },
        rng.next_u64() % 10_000,
    )
}

#[test]
fn generated_circuits_validate_and_match_interface() {
    let mut rng = Prng::seed_from_u64(0xE0);
    for _ in 0..CASES {
        let (profile, seed) = random_profile(&mut rng);
        let c = generate(&profile, seed);
        assert_eq!(c.input_count(), profile.inputs);
        assert_eq!(c.output_count(), profile.outputs);
        assert_eq!(c.dff_count(), profile.dffs);
        // Everything observable.
        let counts = c.fanout_counts();
        for net in c.nets() {
            assert!(
                counts[net.index()] > 0 || c.outputs().contains(&net),
                "dangling net"
            );
        }
    }
}

#[test]
fn bench_round_trip_is_lossless() {
    let mut rng = Prng::seed_from_u64(0xE1);
    for _ in 0..CASES {
        let (profile, seed) = random_profile(&mut rng);
        let c = generate(&profile, seed);
        let text = bench::write(&c);
        let back = bench::parse(&text).unwrap();
        // Net ids are assigned by first mention, so a re-written file may
        // order gate lines differently — but it must contain exactly the
        // same statements.
        let mut lines_a: Vec<&str> = text.lines().collect();
        let rewritten = bench::write(&back);
        let mut lines_b: Vec<&str> = rewritten.lines().collect();
        lines_a.sort_unstable();
        lines_b.sort_unstable();
        assert_eq!(lines_a, lines_b);
        assert_eq!(back.net_count(), c.net_count());
        assert_eq!(back.gate_count(), c.gate_count());
        // Name-for-name identical structure.
        for net in c.nets() {
            let name = c.net_name(net);
            let other = back.net(name).expect("net survives");
            match (c.driver(net), back.driver(other)) {
                (Driver::Input, Driver::Input) => {}
                (Driver::Dff { data: d1 }, Driver::Dff { data: d2 }) => {
                    assert_eq!(c.net_name(*d1), back.net_name(*d2));
                }
                (
                    Driver::Gate {
                        kind: k1,
                        inputs: i1,
                    },
                    Driver::Gate {
                        kind: k2,
                        inputs: i2,
                    },
                ) => {
                    assert_eq!(k1, k2);
                    let n1: Vec<&str> = i1.iter().map(|&i| c.net_name(i)).collect();
                    let n2: Vec<&str> = i2.iter().map(|&i| back.net_name(i)).collect();
                    assert_eq!(n1, n2);
                }
                _ => panic!("driver kind changed for {}", name),
            }
        }
    }
}

#[test]
fn levelization_is_topological_and_complete() {
    let mut rng = Prng::seed_from_u64(0xE2);
    for _ in 0..CASES {
        let (profile, seed) = random_profile(&mut rng);
        let c = generate(&profile, seed);
        let view = CombView::new(&c);
        assert_eq!(view.order().len(), c.net_count());
        let mut position = vec![usize::MAX; c.net_count()];
        for (i, &net) in view.order().iter().enumerate() {
            position[net.index()] = i;
        }
        for net in c.nets() {
            if let Driver::Gate { inputs, .. } = c.driver(net) {
                for &source in inputs {
                    assert!(position[source.index()] < position[net.index()]);
                    assert!(view.level(source) < view.level(net));
                }
            }
        }
        assert_eq!(view.inputs().len(), profile.inputs + profile.dffs);
        assert_eq!(view.outputs().len(), profile.outputs + profile.dffs);
    }
}

#[test]
fn same_seed_same_circuit() {
    let mut rng = Prng::seed_from_u64(0xE3);
    for _ in 0..CASES {
        let (profile, seed) = random_profile(&mut rng);
        let a = bench::write(&generate(&profile, seed));
        let b = bench::write(&generate(&profile, seed));
        assert_eq!(a, b);
    }
}
