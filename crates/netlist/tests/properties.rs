//! Property-based tests for the netlist layer: generator validity, bench
//! round-trips, and levelization invariants.

use proptest::prelude::*;
use sdd_netlist::generator::{generate, Profile};
use sdd_netlist::{bench, CombView, Driver};

fn arb_profile() -> impl Strategy<Value = (Profile, u64)> {
    (1usize..8, 1usize..5, 0usize..6, 5usize..80, 0u64..10_000).prop_map(
        |(inputs, outputs, dffs, gates, seed)| {
            (Profile { name: "prop", inputs, outputs, dffs, gates }, seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_circuits_validate_and_match_interface((profile, seed) in arb_profile()) {
        let c = generate(&profile, seed);
        prop_assert_eq!(c.input_count(), profile.inputs);
        prop_assert_eq!(c.output_count(), profile.outputs);
        prop_assert_eq!(c.dff_count(), profile.dffs);
        // Everything observable.
        let counts = c.fanout_counts();
        for net in c.nets() {
            prop_assert!(
                counts[net.index()] > 0 || c.outputs().contains(&net),
                "dangling net"
            );
        }
    }

    #[test]
    fn bench_round_trip_is_lossless((profile, seed) in arb_profile()) {
        let c = generate(&profile, seed);
        let text = bench::write(&c);
        let back = bench::parse(&text).unwrap();
        // Net ids are assigned by first mention, so a re-written file may
        // order gate lines differently — but it must contain exactly the
        // same statements.
        let mut lines_a: Vec<&str> = text.lines().collect();
        let rewritten = bench::write(&back);
        let mut lines_b: Vec<&str> = rewritten.lines().collect();
        lines_a.sort_unstable();
        lines_b.sort_unstable();
        prop_assert_eq!(lines_a, lines_b);
        prop_assert_eq!(back.net_count(), c.net_count());
        prop_assert_eq!(back.gate_count(), c.gate_count());
        // Name-for-name identical structure.
        for net in c.nets() {
            let name = c.net_name(net);
            let other = back.net(name).expect("net survives");
            match (c.driver(net), back.driver(other)) {
                (Driver::Input, Driver::Input) => {}
                (Driver::Dff { data: d1 }, Driver::Dff { data: d2 }) => {
                    prop_assert_eq!(c.net_name(*d1), back.net_name(*d2));
                }
                (Driver::Gate { kind: k1, inputs: i1 }, Driver::Gate { kind: k2, inputs: i2 }) => {
                    prop_assert_eq!(k1, k2);
                    let n1: Vec<&str> = i1.iter().map(|&i| c.net_name(i)).collect();
                    let n2: Vec<&str> = i2.iter().map(|&i| back.net_name(i)).collect();
                    prop_assert_eq!(n1, n2);
                }
                _ => prop_assert!(false, "driver kind changed for {}", name),
            }
        }
    }

    #[test]
    fn levelization_is_topological_and_complete((profile, seed) in arb_profile()) {
        let c = generate(&profile, seed);
        let view = CombView::new(&c);
        prop_assert_eq!(view.order().len(), c.net_count());
        let mut position = vec![usize::MAX; c.net_count()];
        for (i, &net) in view.order().iter().enumerate() {
            position[net.index()] = i;
        }
        for net in c.nets() {
            if let Driver::Gate { inputs, .. } = c.driver(net) {
                for &source in inputs {
                    prop_assert!(position[source.index()] < position[net.index()]);
                    prop_assert!(view.level(source) < view.level(net));
                }
            }
        }
        prop_assert_eq!(view.inputs().len(), profile.inputs + profile.dffs);
        prop_assert_eq!(view.outputs().len(), profile.outputs + profile.dffs);
    }

    #[test]
    fn same_seed_same_circuit_different_seed_usually_differs((profile, seed) in arb_profile()) {
        let a = bench::write(&generate(&profile, seed));
        let b = bench::write(&generate(&profile, seed));
        prop_assert_eq!(a, b);
    }
}
