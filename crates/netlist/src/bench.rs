//! Reader and writer for the ISCAS'85/'89 `.bench` netlist format.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G17 = NAND(G0, G8)
//! G8  = DFF(G17)
//! ```
//!
//! [`parse`] accepts the format as distributed with the ISCAS benchmarks
//! (case-insensitive keywords, flexible whitespace, `BUF`/`BUFF` synonyms)
//! and [`write()`](self::write) produces a canonical form that [`parse`]
//! round-trips.

use std::fmt::Write as _;

use crate::{Circuit, CircuitBuilder, GateKind, NetId, NetlistError};

/// Parses `.bench` text into a validated [`Circuit`].
///
/// The circuit name is taken from a leading `# name` comment when present,
/// otherwise `"bench"`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines and any validation
/// error for structurally bad netlists (undriven nets, cycles, …).
///
/// # Example
///
/// ```
/// let c = sdd_netlist::bench::parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// assert_eq!(c.gate_count(), 1);
/// # Ok::<(), sdd_netlist::NetlistError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let mut name = None;
    let mut builder: Option<CircuitBuilder> = None;
    // Deferred statements: (line, kind) applied once the builder exists.
    let mut outputs: Vec<(usize, String)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if name.is_none() {
                let trimmed = comment.trim();
                if !trimmed.is_empty() && !trimmed.contains(' ') {
                    name = Some(trimmed.to_owned());
                }
            }
            continue;
        }
        let builder = builder.get_or_insert_with(|| {
            CircuitBuilder::new(name.clone().unwrap_or_else(|| "bench".to_owned()))
        });

        if let Some(arg) = keyword_arg(line, "INPUT") {
            let signal = parse_signal(arg, line_no)?;
            builder.input(signal);
        } else if let Some(arg) = keyword_arg(line, "OUTPUT") {
            let signal = parse_signal(arg, line_no)?;
            outputs.push((line_no, signal.to_owned()));
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let target = parse_signal(lhs.trim(), line_no)?.to_owned();
            let (func, args) = parse_call(rhs.trim(), line_no)?;
            let inputs: Vec<NetId> = args.iter().map(|a| builder.net(a)).collect();
            match func.to_ascii_uppercase().as_str() {
                "DFF" => {
                    if inputs.len() != 1 {
                        return Err(NetlistError::Parse {
                            line: line_no,
                            message: format!("DFF takes one input, got {}", inputs.len()),
                        });
                    }
                    builder.dff(&target, inputs[0]);
                }
                other => {
                    let kind = gate_kind(other).ok_or_else(|| NetlistError::Parse {
                        line: line_no,
                        message: format!("unknown gate type {other:?}"),
                    })?;
                    builder.gate(&target, kind, inputs);
                }
            }
        } else {
            return Err(NetlistError::Parse {
                line: line_no,
                message: format!("unrecognized statement {line:?}"),
            });
        }
    }

    let mut builder = builder.ok_or(NetlistError::Parse {
        line: 1,
        message: "empty netlist".to_owned(),
    })?;
    for (_, signal) in outputs {
        let net = builder.net(&signal);
        builder.output(net);
    }
    builder.finish()
}

/// Writes a circuit in canonical `.bench` form.
///
/// The output begins with `# <name>` and round-trips through [`parse`].
///
/// # Example
///
/// ```
/// use sdd_netlist::bench;
/// let c = bench::parse(sdd_netlist::library::C17_BENCH)?;
/// let text = bench::write(&c);
/// let back = bench::parse(&text)?;
/// assert_eq!(back.gate_count(), c.gate_count());
/// # Ok::<(), sdd_netlist::NetlistError>(())
/// ```
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &input in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.net_name(input));
    }
    for &output in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.net_name(output));
    }
    for net in circuit.nets() {
        match circuit.driver(net) {
            crate::Driver::Input => {}
            crate::Driver::Dff { data } => {
                let _ = writeln!(
                    out,
                    "{} = DFF({})",
                    circuit.net_name(net),
                    circuit.net_name(*data)
                );
            }
            crate::Driver::Gate { kind, inputs } => {
                let args: Vec<&str> = inputs.iter().map(|&i| circuit.net_name(i)).collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    circuit.net_name(net),
                    kind.bench_name(),
                    args.join(", ")
                );
            }
        }
    }
    out
}

fn keyword_arg<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line
        .get(..keyword.len())
        .filter(|head| head.eq_ignore_ascii_case(keyword))
        .map(|_| line[keyword.len()..].trim_start())?;
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some(inner.trim())
}

fn parse_signal(token: &str, line: usize) -> Result<&str, NetlistError> {
    let token = token.trim();
    let valid = !token.is_empty()
        && token
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '[' || c == ']');
    if valid {
        Ok(token)
    } else {
        Err(NetlistError::Parse {
            line,
            message: format!("invalid signal name {token:?}"),
        })
    }
}

fn parse_call(text: &str, line: usize) -> Result<(String, Vec<String>), NetlistError> {
    let open = text.find('(').ok_or_else(|| NetlistError::Parse {
        line,
        message: format!("expected GATE(args) on right-hand side, got {text:?}"),
    })?;
    let close = text.rfind(')').ok_or_else(|| NetlistError::Parse {
        line,
        message: "missing closing parenthesis".to_owned(),
    })?;
    if close < open {
        return Err(NetlistError::Parse {
            line,
            message: "mismatched parentheses".to_owned(),
        });
    }
    let func = text[..open].trim().to_owned();
    let mut args = Vec::new();
    let inner = text[open + 1..close].trim();
    if !inner.is_empty() {
        for piece in inner.split(',') {
            args.push(parse_signal(piece, line)?.to_owned());
        }
    }
    if args.is_empty() {
        return Err(NetlistError::Parse {
            line,
            message: format!("gate {func:?} has no inputs"),
        });
    }
    Ok((func, args))
}

fn gate_kind(name: &str) -> Option<GateKind> {
    Some(match name {
        "AND" => GateKind::And,
        "NAND" => GateKind::Nand,
        "OR" => GateKind::Or,
        "NOR" => GateKind::Nor,
        "XOR" => GateKind::Xor,
        "XNOR" => GateKind::Xnor,
        "NOT" | "INV" => GateKind::Not,
        "BUF" | "BUFF" => GateKind::Buf,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::C17_BENCH;

    #[test]
    fn parses_c17() {
        let c = parse(C17_BENCH).unwrap();
        assert_eq!(c.name(), "c17");
        assert_eq!(c.input_count(), 5);
        assert_eq!(c.output_count(), 2);
        assert_eq!(c.gate_count(), 6);
        assert_eq!(c.dff_count(), 0);
    }

    #[test]
    fn parses_sequential_with_dff() {
        let text = "# tiny\nINPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = NOR(a, q)\n";
        let c = parse(text).unwrap();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.dff_count(), 1);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn keywords_are_case_insensitive_and_whitespace_tolerant() {
        let text = "input( a )\noutput( y )\ny = nand( a , a )\n";
        let c = parse(text).unwrap();
        assert_eq!(c.input_count(), 1);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn buf_and_buff_are_synonyms() {
        for spelling in ["BUF", "BUFF", "buff"] {
            let text = format!("INPUT(a)\nOUTPUT(y)\ny = {spelling}(a)\n");
            let c = parse(&text).unwrap();
            assert!(matches!(
                c.driver(c.net("y").unwrap()),
                crate::Driver::Gate {
                    kind: GateKind::Buf,
                    ..
                }
            ));
        }
    }

    #[test]
    fn output_may_precede_driver() {
        let text = "OUTPUT(y)\nINPUT(a)\ny = NOT(a)\n";
        assert!(parse(text).is_ok());
    }

    #[test]
    fn rejects_unknown_gate() {
        let err = parse("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n").unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("FROB"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_multi_input_dff() {
        let err = parse("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 4, .. }));
    }

    #[test]
    fn rejects_bad_signal_name() {
        let err = parse("INPUT(a b)\nOUTPUT(y)\ny = NOT(a)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_garbage_line() {
        let err = parse("INPUT(a)\nOUTPUT(a)\nwat\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn rejects_empty_text() {
        assert!(matches!(
            parse("  \n# only comments\n"),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_zero_input_gate() {
        let err = parse("INPUT(a)\nOUTPUT(y)\ny = AND()\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn write_round_trips_structure() {
        let c = parse(C17_BENCH).unwrap();
        let text = write(&c);
        let back = parse(&text).unwrap();
        assert_eq!(back.name(), c.name());
        assert_eq!(back.input_count(), c.input_count());
        assert_eq!(back.output_count(), c.output_count());
        assert_eq!(back.gate_count(), c.gate_count());
        // Same structure net-by-net (ids may differ; compare by name).
        for net in c.nets() {
            let name = c.net_name(net);
            let other = back.net(name).expect("net survives round trip");
            match (c.driver(net), back.driver(other)) {
                (crate::Driver::Input, crate::Driver::Input) => {}
                (
                    crate::Driver::Gate {
                        kind: k1,
                        inputs: i1,
                    },
                    crate::Driver::Gate {
                        kind: k2,
                        inputs: i2,
                    },
                ) => {
                    assert_eq!(k1, k2);
                    let n1: Vec<&str> = i1.iter().map(|&i| c.net_name(i)).collect();
                    let n2: Vec<&str> = i2.iter().map(|&i| back.net_name(i)).collect();
                    assert_eq!(n1, n2);
                }
                (crate::Driver::Dff { data: d1 }, crate::Driver::Dff { data: d2 }) => {
                    assert_eq!(c.net_name(*d1), back.net_name(*d2));
                }
                (a, b) => panic!("driver mismatch for {name}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn comment_name_requires_single_token() {
        let c = parse("# two words\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        assert_eq!(c.name(), "bench", "multi-word comments are not names");
    }
}
