//! Deterministic generator of ISCAS'89-shaped synthetic benchmark circuits.
//!
//! The original ISCAS'89 netlists are distributed as data files, not code;
//! this reproduction cannot ship them, so it generates *stand-ins* with the
//! same interface shape: matched primary-input, primary-output, flip-flop
//! and (approximate) gate counts, realistic gate-type mix, fan-in
//! distribution, locality, and reconvergent fan-out. Dictionary resolution
//! experiments depend on those aggregates rather than on exact topology —
//! see `DESIGN.md` §5. Real `.bench` files can always be used instead via
//! [`bench::parse`](crate::bench::parse).
//!
//! Generation is fully deterministic for a given `(profile, seed)` pair.

use sdd_logic::Prng;

use crate::{Circuit, CircuitBuilder, GateKind, NetId};

/// The interface shape of a benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Benchmark name, e.g. `"s953"`.
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// D flip-flops.
    pub dffs: usize,
    /// Target combinational gate count (generated count is within a few
    /// percent; merge gates added to keep all logic observable).
    pub gates: usize,
}

/// Interface shapes of the sixteen ISCAS'89 circuits used in the paper's
/// Table 6 (sizes as commonly reported for the benchmark suite).
pub const ISCAS89_PROFILES: [Profile; 16] = [
    Profile {
        name: "s208",
        inputs: 10,
        outputs: 1,
        dffs: 8,
        gates: 96,
    },
    Profile {
        name: "s298",
        inputs: 3,
        outputs: 6,
        dffs: 14,
        gates: 119,
    },
    Profile {
        name: "s344",
        inputs: 9,
        outputs: 11,
        dffs: 15,
        gates: 160,
    },
    Profile {
        name: "s382",
        inputs: 3,
        outputs: 6,
        dffs: 21,
        gates: 158,
    },
    Profile {
        name: "s386",
        inputs: 7,
        outputs: 7,
        dffs: 6,
        gates: 159,
    },
    Profile {
        name: "s400",
        inputs: 3,
        outputs: 6,
        dffs: 21,
        gates: 162,
    },
    Profile {
        name: "s420",
        inputs: 18,
        outputs: 1,
        dffs: 16,
        gates: 218,
    },
    Profile {
        name: "s510",
        inputs: 19,
        outputs: 7,
        dffs: 6,
        gates: 211,
    },
    Profile {
        name: "s526",
        inputs: 3,
        outputs: 6,
        dffs: 21,
        gates: 193,
    },
    Profile {
        name: "s641",
        inputs: 35,
        outputs: 24,
        dffs: 19,
        gates: 379,
    },
    Profile {
        name: "s820",
        inputs: 18,
        outputs: 19,
        dffs: 5,
        gates: 289,
    },
    Profile {
        name: "s953",
        inputs: 16,
        outputs: 23,
        dffs: 29,
        gates: 395,
    },
    Profile {
        name: "s1196",
        inputs: 14,
        outputs: 14,
        dffs: 18,
        gates: 529,
    },
    Profile {
        name: "s1423",
        inputs: 17,
        outputs: 5,
        dffs: 74,
        gates: 657,
    },
    Profile {
        name: "s5378",
        inputs: 35,
        outputs: 49,
        dffs: 179,
        gates: 2779,
    },
    Profile {
        name: "s9234",
        inputs: 36,
        outputs: 39,
        dffs: 211,
        gates: 5597,
    },
];

/// Interface shapes of the ten ISCAS'85 combinational benchmarks (sizes as
/// commonly reported). Not used by the paper's Table 6, but handy for
/// combinational-only studies.
pub const ISCAS85_PROFILES: [Profile; 10] = [
    Profile {
        name: "c432",
        inputs: 36,
        outputs: 7,
        dffs: 0,
        gates: 160,
    },
    Profile {
        name: "c499",
        inputs: 41,
        outputs: 32,
        dffs: 0,
        gates: 202,
    },
    Profile {
        name: "c880",
        inputs: 60,
        outputs: 26,
        dffs: 0,
        gates: 383,
    },
    Profile {
        name: "c1355",
        inputs: 41,
        outputs: 32,
        dffs: 0,
        gates: 546,
    },
    Profile {
        name: "c1908",
        inputs: 33,
        outputs: 25,
        dffs: 0,
        gates: 880,
    },
    Profile {
        name: "c2670",
        inputs: 233,
        outputs: 140,
        dffs: 0,
        gates: 1193,
    },
    Profile {
        name: "c3540",
        inputs: 50,
        outputs: 22,
        dffs: 0,
        gates: 1669,
    },
    Profile {
        name: "c5315",
        inputs: 178,
        outputs: 123,
        dffs: 0,
        gates: 2307,
    },
    Profile {
        name: "c6288",
        inputs: 32,
        outputs: 32,
        dffs: 0,
        gates: 2416,
    },
    Profile {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        dffs: 0,
        gates: 3512,
    },
];

/// Looks up a profile by benchmark name, searching the ISCAS'89 suite then
/// the ISCAS'85 suite.
///
/// # Example
///
/// ```
/// let p = sdd_netlist::generator::profile("s298").unwrap();
/// assert_eq!(p.dffs, 14);
/// let c = sdd_netlist::generator::profile("c6288").unwrap();
/// assert_eq!(c.dffs, 0);
/// assert!(sdd_netlist::generator::profile("b17").is_none());
/// ```
pub fn profile(name: &str) -> Option<&'static Profile> {
    ISCAS89_PROFILES
        .iter()
        .chain(&ISCAS85_PROFILES)
        .find(|p| p.name == name)
}

/// Generates a synthetic circuit with the given interface shape.
///
/// Properties guaranteed by construction:
///
/// * exact `inputs`, `outputs`, `dffs` counts; gate count within a few
///   percent of `profile.gates`;
/// * acyclic combinational logic (flip-flop outputs are sources, data pins
///   sinks);
/// * every net drives at least one gate, flip-flop, or primary output, so
///   no logic is trivially unobservable;
/// * deterministic: the same `(profile, seed)` always yields the same
///   circuit.
///
/// # Example
///
/// ```
/// use sdd_netlist::generator::{generate, profile};
/// let p = profile("s298").unwrap();
/// let a = generate(p, 1);
/// let b = generate(p, 1);
/// assert_eq!(sdd_netlist::bench::write(&a), sdd_netlist::bench::write(&b));
/// assert_eq!(a.dff_count(), 14);
/// ```
pub fn generate(profile: &Profile, seed: u64) -> Circuit {
    let mut rng =
        Prng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ hash_name(profile.name));
    let mut b = CircuitBuilder::new(profile.name);

    // Sources: primary inputs and flip-flop outputs.
    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..profile.inputs {
        pool.push(b.input(&format!("i{i}")));
    }
    let ff_outputs: Vec<NetId> = (0..profile.dffs).map(|i| b.net(&format!("q{i}"))).collect();
    pool.extend(&ff_outputs);

    // Estimated signal probability per net (independence assumption),
    // used to steer gate choices away from near-constant signals: deep
    // unconstrained random logic otherwise drifts toward constants, making
    // large fractions of its faults untestable — unlike real benchmarks.
    let mut prob: Vec<f64> = vec![0.5; pool.len()];

    // Track which nets have no fan-out yet, to keep logic observable.
    let mut unused: Vec<NetId> = pool.clone();
    let mut used = vec![false; pool.len() * 2 + profile.gates + 8];

    let sinks = profile.outputs + profile.dffs;
    // Reserve a little budget so merge gates rarely overshoot the target.
    let core_gates = profile.gates.saturating_sub(profile.gates / 40).max(1);

    let consume = |net: NetId, unused: &mut Vec<NetId>, used: &mut Vec<bool>| {
        if net.index() >= used.len() {
            used.resize(net.index() + 1, false);
        }
        if !used[net.index()] {
            used[net.index()] = true;
            if let Some(pos) = unused.iter().position(|&u| u == net) {
                unused.swap_remove(pos);
            }
        }
    };

    for g in 0..core_gates {
        // Retry a few (kind, fan-in, inputs) draws, keeping the candidate
        // whose estimated output probability is most balanced.
        let mut best: Option<(GateKind, Vec<NetId>, f64)> = None;
        for attempt in 0..6 {
            let kind = pick_kind(&mut rng);
            let fanin = if kind.is_unary() {
                1
            } else {
                match rng.gen_range(0..10) {
                    0..=7 => 2,
                    8 => 3,
                    _ => 4,
                }
            };
            let mut inputs = Vec::with_capacity(fanin);
            // First pin: prefer a not-yet-used net so nothing dangles.
            let first = if !unused.is_empty() && rng.gen_bool(0.8) {
                unused[rng.gen_range(0..unused.len())]
            } else {
                pick_local(&pool, &mut rng)
            };
            inputs.push(first);
            while inputs.len() < fanin {
                let candidate = pick_local(&pool, &mut rng);
                if !inputs.contains(&candidate) {
                    inputs.push(candidate);
                } else if pool.len() <= fanin {
                    break; // tiny circuits: accept fewer pins
                }
            }
            let p = estimate_probability(kind, inputs.iter().map(|n| prob[n.index()]));
            let balance = (p - 0.5).abs();
            if best
                .as_ref()
                .is_none_or(|(_, _, bp)| balance < (bp - 0.5).abs())
            {
                best = Some((kind, inputs, p));
            }
            if balance <= 0.35 || attempt == 5 {
                break;
            }
        }
        let (kind, inputs, p) = best.expect("at least one candidate drawn");
        for &i in &inputs {
            consume(i, &mut unused, &mut used);
        }
        let out = b.gate(&format!("g{g}"), kind, inputs);
        pool.push(out);
        unused.push(out);
        if out.index() >= prob.len() {
            prob.resize(out.index() + 1, 0.5);
        }
        prob[out.index()] = p;
    }

    // Merge surplus unobserved nets until at most `sinks` remain. XOR keeps
    // merge outputs balanced and every merged pin observable.
    let mut merge_index = 0;
    while unused.len() > sinks {
        let take = usize::min(unused.len() - sinks + 1, 3).max(2);
        let mut inputs = Vec::with_capacity(take);
        for _ in 0..take {
            let pos = rng.gen_range(0..unused.len());
            inputs.push(unused.swap_remove(pos));
        }
        for &i in &inputs {
            consume(i, &mut unused, &mut used);
        }
        let out = b.gate(&format!("m{merge_index}"), GateKind::Xor, inputs.clone());
        merge_index += 1;
        pool.push(out);
        unused.push(out);
        if out.index() >= prob.len() {
            prob.resize(out.index() + 1, 0.5);
        }
        prob[out.index()] =
            estimate_probability(GateKind::Xor, inputs.iter().map(|n| prob[n.index()]));
    }

    // Assign primary outputs and flip-flop data pins: unobserved nets first,
    // then random late nets.
    let mut sink_nets: Vec<NetId> = unused.clone();
    while sink_nets.len() < sinks {
        let candidate = pick_local(&pool, &mut rng);
        if !sink_nets.contains(&candidate) {
            sink_nets.push(candidate);
        }
    }
    // Shuffle deterministically so POs and FFs both get deep and shallow nets.
    for i in (1..sink_nets.len()).rev() {
        let j = rng.gen_range(0..=i);
        sink_nets.swap(i, j);
    }
    for &net in sink_nets.iter().take(profile.outputs) {
        b.output(net);
    }
    for (i, &net) in sink_nets
        .iter()
        .skip(profile.outputs)
        .take(profile.dffs)
        .enumerate()
    {
        b.dff(&format!("q{i}"), net);
    }

    b.finish()
        .expect("generator constructs valid circuits by construction")
}

/// Generates the named ISCAS'89-shaped circuit with the default seed used
/// across the workspace's experiments.
///
/// # Example
///
/// ```
/// let c = sdd_netlist::generator::iscas89("s344", 0).unwrap();
/// assert_eq!(c.input_count(), 9);
/// ```
pub fn iscas89(name: &str, seed: u64) -> Option<Circuit> {
    profile(name).map(|p| generate(p, seed))
}

fn pick_kind(rng: &mut Prng) -> GateKind {
    // Weighted mix resembling ISCAS'89 gate statistics (NAND/NOR heavy,
    // some inverters and buffers, a sprinkle of XOR).
    match rng.gen_range(0..100) {
        0..=27 => GateKind::Nand,
        28..=43 => GateKind::Nor,
        44..=58 => GateKind::And,
        59..=73 => GateKind::Or,
        74..=86 => GateKind::Not,
        87..=91 => GateKind::Buf,
        92..=96 => GateKind::Xor,
        _ => GateKind::Xnor,
    }
}

/// Estimated output signal probability under an input-independence
/// assumption — good enough to steer generation away from near-constants.
fn estimate_probability(kind: GateKind, inputs: impl Iterator<Item = f64>) -> f64 {
    match kind {
        GateKind::And => inputs.product(),
        GateKind::Nand => 1.0 - inputs.product::<f64>(),
        GateKind::Or => 1.0 - inputs.map(|p| 1.0 - p).product::<f64>(),
        GateKind::Nor => inputs.map(|p| 1.0 - p).product(),
        GateKind::Xor => inputs.fold(0.0, |acc, p| acc * (1.0 - p) + p * (1.0 - acc)),
        GateKind::Xnor => 1.0 - inputs.fold(0.0, |acc, p| acc * (1.0 - p) + p * (1.0 - acc)),
        GateKind::Not => 1.0 - inputs.sum::<f64>(),
        GateKind::Buf => inputs.sum(),
    }
}

/// Picks a net with locality: mostly from the most recent window (building
/// depth), occasionally from anywhere (creating long reconvergent paths).
fn pick_local(pool: &[NetId], rng: &mut Prng) -> NetId {
    let window = pool.len().min(48);
    if rng.gen_bool(0.72) {
        pool[pool.len() - window + rng.gen_range(0..window)]
    } else {
        pool[rng.gen_range(0..pool.len())]
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CombView;

    #[test]
    fn profiles_cover_table6_circuits() {
        assert_eq!(ISCAS89_PROFILES.len(), 16);
        for name in [
            "s208", "s298", "s344", "s382", "s386", "s400", "s420", "s510", "s526", "s641", "s820",
            "s953", "s1196", "s1423", "s5378", "s9234",
        ] {
            assert!(profile(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile("s386").unwrap();
        let a = crate::bench::write(&generate(p, 7));
        let b = crate::bench::write(&generate(p, 7));
        assert_eq!(a, b);
        let c = crate::bench::write(&generate(p, 8));
        assert_ne!(a, c, "different seeds give different circuits");
    }

    #[test]
    fn interface_counts_match_profile() {
        for p in &ISCAS89_PROFILES[..8] {
            let c = generate(p, 0);
            assert_eq!(c.input_count(), p.inputs, "{}", p.name);
            assert_eq!(c.output_count(), p.outputs, "{}", p.name);
            assert_eq!(c.dff_count(), p.dffs, "{}", p.name);
            let slack = p.gates / 10 + 8;
            assert!(
                c.gate_count().abs_diff(p.gates) <= slack,
                "{}: {} gates vs target {}",
                p.name,
                c.gate_count(),
                p.gates
            );
        }
    }

    #[test]
    fn every_net_is_observed() {
        let p = profile("s298").unwrap();
        let c = generate(p, 3);
        let counts = c.fanout_counts();
        for net in c.nets() {
            let is_output = c.outputs().contains(&net);
            assert!(
                counts[net.index()] > 0 || is_output,
                "net {} dangles",
                c.net_name(net)
            );
        }
    }

    #[test]
    fn generated_circuits_are_valid_and_deep() {
        let p = profile("s641").unwrap();
        let c = generate(p, 0);
        let v = CombView::new(&c);
        assert!(
            v.depth() >= 5,
            "depth {} too shallow to be realistic",
            v.depth()
        );
        assert_eq!(v.inputs().len(), p.inputs + p.dffs);
        assert_eq!(v.outputs().len(), p.outputs + p.dffs);
    }

    #[test]
    fn bench_round_trip_of_generated_circuit() {
        let p = profile("s208").unwrap();
        let c = generate(p, 0);
        let text = crate::bench::write(&c);
        let back = crate::bench::parse(&text).unwrap();
        assert_eq!(back.gate_count(), c.gate_count());
        assert_eq!(back.dff_count(), c.dff_count());
    }

    #[test]
    fn iscas89_convenience() {
        assert!(iscas89("s9234", 0).is_some());
        assert!(iscas89("nope", 0).is_none());
    }

    #[test]
    fn iscas85_profiles_are_combinational() {
        assert_eq!(ISCAS85_PROFILES.len(), 10);
        for p in &ISCAS85_PROFILES {
            assert_eq!(p.dffs, 0, "{}", p.name);
        }
        let c = generate(profile("c432").unwrap(), 1);
        assert_eq!(c.dff_count(), 0);
        assert_eq!(c.input_count(), 36);
        assert_eq!(c.output_count(), 7);
        let v = CombView::new(&c);
        assert_eq!(v.inputs().len(), 36, "no pseudo inputs without DFFs");
    }
}
