//! The full-scan combinational view of a circuit.

use crate::{Circuit, Driver, NetId};

/// A circuit as the tester sees it under full scan.
///
/// Flip-flop output nets become *pseudo primary inputs* (they are loaded
/// through the scan chain) and flip-flop data nets become *pseudo primary
/// outputs* (they are unloaded through the scan chain). The remaining logic
/// is purely combinational, and this view carries a levelized evaluation
/// order for compiled simulation.
///
/// The number of observed outputs `m = #PO + #DFF` is exactly the `m` of the
/// paper's dictionary-size formulas.
///
/// # Example
///
/// ```
/// use sdd_netlist::{bench, CombView};
///
/// let circuit = bench::parse("INPUT(a)\nOUTPUT(o)\nq = DFF(o)\no = NAND(a, q)\n")?;
/// let view = CombView::new(&circuit);
/// assert_eq!(view.inputs().len(), 2);  // a + pseudo-input q
/// assert_eq!(view.outputs().len(), 2); // o + pseudo-output (q's data net = o)
/// # Ok::<(), sdd_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CombView {
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    order: Vec<NetId>,
    level: Vec<u32>,
    input_position: Vec<Option<u32>>,
}

impl CombView {
    /// Builds the full-scan view of `circuit`.
    ///
    /// Inputs are the primary inputs followed by the flip-flop outputs;
    /// outputs are the primary outputs followed by the flip-flop data nets.
    /// The evaluation order is levelized: every gate appears after all of
    /// its fan-in nets.
    pub fn new(circuit: &Circuit) -> Self {
        let inputs: Vec<NetId> = circuit
            .inputs()
            .iter()
            .chain(circuit.dffs())
            .copied()
            .collect();
        let outputs: Vec<NetId> = circuit
            .outputs()
            .iter()
            .copied()
            .chain(circuit.dffs().iter().map(|&q| match circuit.driver(q) {
                Driver::Dff { data } => *data,
                _ => unreachable!("dff list holds only DFF-driven nets"),
            }))
            .collect();

        // Levelize: level(input) = 0, level(gate) = 1 + max(level of fanin).
        let mut level = vec![0u32; circuit.net_count()];
        let mut order = Vec::with_capacity(circuit.net_count());
        // Kahn's algorithm over combinational edges.
        let mut remaining = vec![0usize; circuit.net_count()];
        let mut fanout: Vec<Vec<NetId>> = vec![Vec::new(); circuit.net_count()];
        for net in circuit.nets() {
            if let Driver::Gate { inputs, .. } = circuit.driver(net) {
                remaining[net.index()] = inputs.len();
                for &source in inputs {
                    fanout[source.index()].push(net);
                }
            }
        }
        let mut ready: Vec<NetId> = inputs.clone();
        let mut cursor = 0;
        while cursor < ready.len() {
            let net = ready[cursor];
            cursor += 1;
            order.push(net);
            for &sink in &fanout[net.index()] {
                let slot = &mut remaining[sink.index()];
                *slot -= 1;
                level[sink.index()] = level[sink.index()].max(level[net.index()] + 1);
                if *slot == 0 {
                    ready.push(sink);
                }
            }
        }
        debug_assert_eq!(
            order.len(),
            circuit.net_count(),
            "validated circuits are acyclic, so levelization covers every net"
        );

        let mut input_position = vec![None; circuit.net_count()];
        for (pos, &net) in inputs.iter().enumerate() {
            input_position[net.index()] = Some(pos as u32);
        }

        Self {
            inputs,
            outputs,
            order,
            level,
            input_position,
        }
    }

    /// Pattern inputs: primary inputs followed by pseudo primary inputs.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Observed outputs: primary outputs followed by pseudo primary outputs.
    ///
    /// This is the output set whose width is the paper's `m`.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All nets in a levelized order (inputs first, every gate after its
    /// fan-ins). Compiled simulation evaluates nets in exactly this order.
    pub fn order(&self) -> &[NetId] {
        &self.order
    }

    /// The logic level of `net` (0 for inputs).
    pub fn level(&self, net: NetId) -> u32 {
        self.level[net.index()]
    }

    /// The position of `net` within [`inputs`](Self::inputs), if it is one.
    pub fn input_position(&self, net: NetId) -> Option<usize> {
        self.input_position[net.index()].map(|p| p as usize)
    }

    /// The largest logic level in the view (circuit depth).
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn sequential_sample() -> Circuit {
        // a, b inputs; q DFF; g1 = a NAND q; g2 = g1 XOR b; q.d = g2; PO = g1.
        let mut b = CircuitBuilder::new("seq");
        let a = b.input("a");
        let bb = b.input("b");
        let q = b.net("q");
        let g1 = b.gate("g1", GateKind::Nand, vec![a, q]);
        let g2 = b.gate("g2", GateKind::Xor, vec![g1, bb]);
        b.dff("q", g2);
        b.output(g1);
        b.finish().unwrap()
    }

    #[test]
    fn inputs_and_outputs_follow_scan_convention() {
        let c = sequential_sample();
        let v = CombView::new(&c);
        let names: Vec<&str> = v.inputs().iter().map(|&n| c.net_name(n)).collect();
        assert_eq!(names, ["a", "b", "q"], "PIs then PPIs");
        let out_names: Vec<&str> = v.outputs().iter().map(|&n| c.net_name(n)).collect();
        assert_eq!(out_names, ["g1", "g2"], "POs then PPOs (DFF data nets)");
    }

    #[test]
    fn order_is_topological() {
        let c = sequential_sample();
        let v = CombView::new(&c);
        let pos: std::collections::HashMap<NetId, usize> =
            v.order().iter().enumerate().map(|(i, &n)| (n, i)).collect();
        assert_eq!(pos.len(), c.net_count(), "every net appears once");
        for net in c.nets() {
            for &fi in c.driver(net).fanin() {
                if let crate::Driver::Gate { .. } = c.driver(net) {
                    assert!(pos[&fi] < pos[&net], "fanin before gate");
                }
            }
        }
    }

    #[test]
    fn levels_and_depth() {
        let c = sequential_sample();
        let v = CombView::new(&c);
        let g1 = c.net("g1").unwrap();
        let g2 = c.net("g2").unwrap();
        let a = c.net("a").unwrap();
        assert_eq!(v.level(a), 0);
        assert_eq!(v.level(g1), 1);
        assert_eq!(v.level(g2), 2);
        assert_eq!(v.depth(), 2);
    }

    #[test]
    fn input_positions() {
        let c = sequential_sample();
        let v = CombView::new(&c);
        let q = c.net("q").unwrap();
        let g1 = c.net("g1").unwrap();
        assert_eq!(v.input_position(q), Some(2));
        assert_eq!(v.input_position(g1), None);
    }

    #[test]
    fn purely_combinational_circuit_has_matching_counts() {
        let mut b = CircuitBuilder::new("comb");
        let a = b.input("a");
        let g = b.gate("g", GateKind::Not, vec![a]);
        b.output(g);
        let c = b.finish().unwrap();
        let v = CombView::new(&c);
        assert_eq!(v.inputs().len(), 1);
        assert_eq!(v.outputs().len(), 1);
        assert_eq!(v.order().len(), 2);
    }
}
