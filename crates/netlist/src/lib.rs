//! Gate-level netlists for test generation and fault diagnosis.
//!
//! This crate provides the circuit substrate the rest of the workspace runs
//! on:
//!
//! * [`Circuit`] — a validated, signal-oriented gate-level netlist with
//!   primary inputs, primary outputs, D flip-flops and combinational gates.
//! * [`bench`](mod@bench) — a reader and writer for the ISCAS'85/'89 `.bench` format,
//!   so real benchmark files drop in unchanged.
//! * [`CombView`] — the full-scan combinational view of a circuit (flip-flop
//!   outputs become pseudo primary inputs, flip-flop data pins pseudo primary
//!   outputs), with a levelized evaluation order for compiled simulation.
//! * [`generator`] — a deterministic, seeded generator of ISCAS'89-*shaped*
//!   synthetic circuits, used as stand-ins for the original benchmarks
//!   (see `DESIGN.md` §5 for why this substitution is faithful).
//! * [`library`] — small embedded reference circuits (ISCAS'85 c17 and a
//!   two-output demonstration circuit) used by examples and ground-truth
//!   tests.
//!
//! # Example
//!
//! ```
//! use sdd_netlist::{bench, CombView};
//!
//! let circuit = bench::parse(sdd_netlist::library::C17_BENCH)?;
//! assert_eq!(circuit.input_count(), 5);
//! assert_eq!(circuit.output_count(), 2);
//! let view = CombView::new(&circuit);
//! assert_eq!(view.inputs().len(), 5); // no flip-flops in c17
//! # Ok::<(), sdd_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod circuit;
mod comb;
pub mod generator;
pub mod library;

pub use circuit::{Circuit, CircuitBuilder, Driver, GateKind, NetId, NetlistError};
pub use comb::CombView;
