//! The core circuit data model: nets, drivers, gates, and validation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a net (a named signal) within one [`Circuit`].
///
/// `NetId`s are dense indices assigned in declaration order; they index the
/// per-net arrays used by the simulator and fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The net's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function of a combinational gate.
///
/// These are exactly the gate types of the ISCAS `.bench` format. `Buf` and
/// `Not` take one input; the rest take two or more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Logical AND.
    And,
    /// Logical NAND.
    Nand,
    /// Logical OR.
    Or,
    /// Logical NOR.
    Nor,
    /// Logical XOR (parity of inputs).
    Xor,
    /// Logical XNOR (complement of parity).
    Xnor,
    /// Inverter.
    Not,
    /// Buffer (identity).
    Buf,
}

impl GateKind {
    /// All gate kinds, handy for exhaustive tests.
    pub const ALL: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];

    /// Returns `true` for the single-input kinds `Not` and `Buf`.
    pub fn is_unary(self) -> bool {
        matches!(self, GateKind::Not | GateKind::Buf)
    }

    /// The controlling input value, if the gate has one: an input at this
    /// value determines the output regardless of the other inputs.
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_netlist::GateKind;
    /// assert_eq!(GateKind::Nand.controlling_value(), Some(false));
    /// assert_eq!(GateKind::Xor.controlling_value(), None);
    /// ```
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            GateKind::Xor | GateKind::Xnor | GateKind::Not | GateKind::Buf => None,
        }
    }

    /// Whether the gate complements its "natural" function (NAND/NOR/XNOR/NOT).
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// Evaluates the gate over plain booleans.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or has length ≠ 1 for unary kinds.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(!inputs.is_empty(), "gate with no inputs");
        if self.is_unary() {
            assert_eq!(inputs.len(), 1, "{self} takes exactly one input");
        }
        match self {
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
        }
    }

    /// The `.bench` keyword for this kind.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// What produces the value of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Driver {
    /// A primary input: the value comes from the test pattern.
    Input,
    /// The output of a D flip-flop whose data pin is the given net.
    ///
    /// Under the full-scan assumption the flip-flop output acts as a pseudo
    /// primary input and its data net as a pseudo primary output.
    Dff {
        /// Net feeding the flip-flop's data pin.
        data: NetId,
    },
    /// The output of a combinational gate.
    Gate {
        /// Logic function.
        kind: GateKind,
        /// Fan-in nets, in pin order.
        inputs: Vec<NetId>,
    },
}

impl Driver {
    /// The fan-in nets of this driver (empty for primary inputs).
    pub fn fanin(&self) -> &[NetId] {
        match self {
            Driver::Input => &[],
            Driver::Dff { data } => std::slice::from_ref(data),
            Driver::Gate { inputs, .. } => inputs,
        }
    }
}

/// Errors produced while building, parsing, or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal was referenced but never given a driver.
    UndrivenNet {
        /// Name of the undriven signal.
        name: String,
    },
    /// A signal was given two drivers.
    DuplicateDriver {
        /// Name of the doubly-driven signal.
        name: String,
    },
    /// A gate was declared with an impossible number of inputs.
    BadArity {
        /// Name of the gate's output signal.
        name: String,
        /// The gate kind.
        kind: GateKind,
        /// The number of inputs declared.
        arity: usize,
    },
    /// The combinational part of the circuit contains a cycle.
    CombinationalCycle {
        /// Name of a signal on the cycle.
        name: String,
    },
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A signal name was declared twice in the same role.
    DuplicateDeclaration {
        /// The offending name.
        name: String,
        /// The role (`"INPUT"` or `"OUTPUT"`).
        role: &'static str,
    },
    /// The circuit has no primary outputs or flip-flops, so nothing is
    /// observable and no fault can ever be detected.
    NothingObservable,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndrivenNet { name } => write!(f, "signal {name:?} has no driver"),
            NetlistError::DuplicateDriver { name } => {
                write!(f, "signal {name:?} has more than one driver")
            }
            NetlistError::BadArity { name, kind, arity } => {
                write!(f, "gate {name:?} of kind {kind} cannot take {arity} inputs")
            }
            NetlistError::CombinationalCycle { name } => {
                write!(f, "combinational cycle through signal {name:?}")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            NetlistError::DuplicateDeclaration { name, role } => {
                write!(f, "signal {name:?} declared as {role} more than once")
            }
            NetlistError::NothingObservable => {
                write!(f, "circuit has no primary outputs and no flip-flops")
            }
        }
    }
}

impl Error for NetlistError {}

impl From<NetlistError> for sdd_logic::SddError {
    fn from(e: NetlistError) -> Self {
        match e {
            NetlistError::Parse { line, message } => sdd_logic::SddError::Parse { line, message },
            other => sdd_logic::SddError::Invalid {
                message: other.to_string(),
            },
        }
    }
}

/// A validated gate-level netlist.
///
/// A circuit is a set of named nets, each with exactly one [`Driver`], plus
/// an ordered list of primary outputs. Construction goes through
/// [`CircuitBuilder`] (or the [`bench`](crate::bench) parser), which
/// validates that every referenced net is driven, gate arities are legal,
/// and the combinational logic is acyclic.
///
/// # Example
///
/// ```
/// use sdd_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("toy");
/// let a = b.input("a");
/// let c = b.input("b");
/// let g = b.gate("g", GateKind::Nand, vec![a, c]);
/// b.output(g);
/// let circuit = b.finish()?;
/// assert_eq!(circuit.gate_count(), 1);
/// # Ok::<(), sdd_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    names: Vec<String>,
    drivers: Vec<Driver>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    dffs: Vec<NetId>,
    by_name: HashMap<String, NetId>,
}

impl Circuit {
    /// The circuit's name (e.g. `"s953"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nets.
    pub fn net_count(&self) -> usize {
        self.drivers.len()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of D flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Number of combinational gates (excludes inputs and flip-flops).
    pub fn gate_count(&self) -> usize {
        self.drivers
            .iter()
            .filter(|d| matches!(d, Driver::Gate { .. }))
            .count()
    }

    /// The primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The flip-flop output nets, in declaration order.
    pub fn dffs(&self) -> &[NetId] {
        &self.dffs
    }

    /// The driver of `net`.
    pub fn driver(&self, net: NetId) -> &Driver {
        &self.drivers[net.index()]
    }

    /// The name of `net`.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.names[net.index()]
    }

    /// Looks a net up by name.
    pub fn net(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all nets in id order.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.drivers.len() as u32).map(NetId)
    }

    /// Fan-out counts per net: how many gate/flip-flop/output pins each net
    /// feeds. Primary-output usage counts as one pin per listing.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.net_count()];
        for driver in &self.drivers {
            for &input in driver.fanin() {
                counts[input.index()] += 1;
            }
        }
        for &output in &self.outputs {
            counts[output.index()] += 1;
        }
        counts
    }

    /// Returns a copy of the circuit with `net`'s driver replaced — the
    /// programmatic form of a gate-level ECO (kind swap, pin rewire). Net
    /// ids, names, and the input/output/flip-flop interface are preserved
    /// exactly, so fault universes enumerated on the original and the
    /// rewritten circuit line up index for index whenever the local pin
    /// structure is unchanged.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadArity`] for a gate driver with the wrong input
    /// count, [`NetlistError::UndrivenNet`] when a gate input is out of
    /// range, and [`NetlistError::CombinationalCycle`] when the rewire
    /// creates one.
    pub fn with_driver(&self, net: NetId, driver: Driver) -> Result<Self, NetlistError> {
        if let Driver::Gate { kind, inputs } = &driver {
            let arity_ok = if kind.is_unary() {
                inputs.len() == 1
            } else {
                !inputs.is_empty()
            };
            if !arity_ok {
                return Err(NetlistError::BadArity {
                    name: self.net_name(net).to_owned(),
                    kind: *kind,
                    arity: inputs.len(),
                });
            }
        }
        for &input in driver.fanin() {
            if input.index() >= self.net_count() {
                return Err(NetlistError::UndrivenNet {
                    name: format!("net id {}", input.0),
                });
            }
        }
        let mut modified = self.clone();
        modified.drivers[net.index()] = driver;
        modified.check_acyclic()?;
        Ok(modified)
    }
}

/// Incremental builder for [`Circuit`], performing validation in
/// [`finish`](CircuitBuilder::finish).
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    name: String,
    names: Vec<String>,
    drivers: Vec<Option<Driver>>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    dffs: Vec<NetId>,
    by_name: HashMap<String, NetId>,
    errors: Vec<NetlistError>,
}

impl CircuitBuilder {
    /// Starts a new builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Returns the id for `name`, creating an undriven net on first use.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NetId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.drivers.push(None);
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Declares a primary input named `name` and returns its net.
    pub fn input(&mut self, name: &str) -> NetId {
        let id = self.net(name);
        if self.inputs.contains(&id) {
            self.errors.push(NetlistError::DuplicateDeclaration {
                name: name.to_owned(),
                role: "INPUT",
            });
            return id;
        }
        self.set_driver(id, Driver::Input);
        self.inputs.push(id);
        id
    }

    /// Declares the net named by `net` as a primary output.
    pub fn output(&mut self, net: NetId) {
        if self.outputs.contains(&net) {
            self.errors.push(NetlistError::DuplicateDeclaration {
                name: self.names[net.index()].clone(),
                role: "OUTPUT",
            });
            return;
        }
        self.outputs.push(net);
    }

    /// Declares a gate driving a new or existing net `name`.
    pub fn gate(&mut self, name: &str, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        let id = self.net(name);
        let arity = inputs.len();
        let arity_ok = if kind.is_unary() {
            arity == 1
        } else {
            arity >= 1
        };
        if !arity_ok {
            self.errors.push(NetlistError::BadArity {
                name: name.to_owned(),
                kind,
                arity,
            });
        }
        self.set_driver(id, Driver::Gate { kind, inputs });
        id
    }

    /// Declares a D flip-flop whose output is `name` and data pin is `data`.
    pub fn dff(&mut self, name: &str, data: NetId) -> NetId {
        let id = self.net(name);
        self.set_driver(id, Driver::Dff { data });
        self.dffs.push(id);
        id
    }

    fn set_driver(&mut self, id: NetId, driver: Driver) {
        let slot = &mut self.drivers[id.index()];
        if slot.is_some() {
            self.errors.push(NetlistError::DuplicateDriver {
                name: self.names[id.index()].clone(),
            });
        } else {
            *slot = Some(driver);
        }
    }

    /// Validates and produces the circuit.
    ///
    /// # Errors
    ///
    /// Returns the first error recorded during building, or detected during
    /// validation: undriven nets, duplicate drivers or declarations, bad
    /// gate arities, combinational cycles, and circuits with nothing
    /// observable.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        let mut drivers = Vec::with_capacity(self.drivers.len());
        for (i, driver) in self.drivers.into_iter().enumerate() {
            match driver {
                Some(d) => drivers.push(d),
                None => {
                    return Err(NetlistError::UndrivenNet {
                        name: self.names[i].clone(),
                    })
                }
            }
        }
        if self.outputs.is_empty() && self.dffs.is_empty() {
            return Err(NetlistError::NothingObservable);
        }
        let circuit = Circuit {
            name: self.name,
            names: self.names,
            drivers,
            inputs: self.inputs,
            outputs: self.outputs,
            dffs: self.dffs,
            by_name: self.by_name,
        };
        circuit.check_acyclic()?;
        Ok(circuit)
    }
}

impl Circuit {
    /// Detects combinational cycles (flip-flops legitimately break cycles).
    fn check_acyclic(&self) -> Result<(), NetlistError> {
        // Iterative three-color DFS over combinational edges only.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.net_count()];
        let mut stack: Vec<(NetId, usize)> = Vec::new();
        for start in self.nets() {
            if color[start.index()] != WHITE {
                continue;
            }
            stack.push((start, 0));
            color[start.index()] = GRAY;
            while let Some(&mut (net, ref mut next)) = stack.last_mut() {
                let fanin = match self.driver(net) {
                    // A DFF output depends on its data net only across a
                    // clock edge, not combinationally.
                    Driver::Dff { .. } | Driver::Input => &[],
                    Driver::Gate { inputs, .. } => inputs.as_slice(),
                };
                if *next < fanin.len() {
                    let child = fanin[*next];
                    *next += 1;
                    match color[child.index()] {
                        WHITE => {
                            color[child.index()] = GRAY;
                            stack.push((child, 0));
                        }
                        GRAY => {
                            return Err(NetlistError::CombinationalCycle {
                                name: self.net_name(child).to_owned(),
                            })
                        }
                        _ => {}
                    }
                } else {
                    color[net.index()] = BLACK;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval_truth_tables() {
        use GateKind::*;
        let cases = [
            (And, vec![true, true], true),
            (And, vec![true, false], false),
            (Nand, vec![true, true], false),
            (Nand, vec![false, true], true),
            (Or, vec![false, false], false),
            (Or, vec![false, true], true),
            (Nor, vec![false, false], true),
            (Nor, vec![true, false], false),
            (Xor, vec![true, true, true], true),
            (Xor, vec![true, true], false),
            (Xnor, vec![true, false], false),
            (Xnor, vec![true, true], true),
            (Not, vec![true], false),
            (Buf, vec![false], false),
        ];
        for (kind, inputs, expect) in cases {
            assert_eq!(kind.eval(&inputs), expect, "{kind} {inputs:?}");
        }
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn unary_gate_rejects_two_inputs_at_eval() {
        GateKind::Not.eval(&[true, false]);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xnor.controlling_value(), None);
        assert!(GateKind::Nand.inverts());
        assert!(!GateKind::Or.inverts());
    }

    fn two_nand() -> Circuit {
        let mut b = CircuitBuilder::new("two_nand");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.gate("g1", GateKind::Nand, vec![a, c]);
        let g2 = b.gate("g2", GateKind::Nand, vec![g1, c]);
        b.output(g2);
        b.finish().unwrap()
    }

    #[test]
    fn with_driver_swaps_a_gate_and_validates_the_rewire() {
        let c = two_nand();
        let g1 = c.net("g1").unwrap();
        let swapped = c
            .with_driver(
                g1,
                Driver::Gate {
                    kind: GateKind::And,
                    inputs: c.driver(g1).fanin().to_vec(),
                },
            )
            .unwrap();
        assert_eq!(swapped.net_count(), c.net_count());
        assert_eq!(swapped.inputs(), c.inputs());
        assert!(matches!(
            swapped.driver(g1),
            Driver::Gate {
                kind: GateKind::And,
                ..
            }
        ));
        assert_ne!(swapped.driver(g1), c.driver(g1));
        // Bad arity and self-cycles are rejected.
        assert!(matches!(
            c.with_driver(
                g1,
                Driver::Gate {
                    kind: GateKind::Not,
                    inputs: vec![NetId(0), NetId(1)]
                }
            ),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            c.with_driver(
                g1,
                Driver::Gate {
                    kind: GateKind::Buf,
                    inputs: vec![g1]
                }
            ),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn builder_produces_expected_structure() {
        let c = two_nand();
        assert_eq!(c.net_count(), 4);
        assert_eq!(c.input_count(), 2);
        assert_eq!(c.output_count(), 1);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.dff_count(), 0);
        let g2 = c.net("g2").unwrap();
        assert_eq!(c.outputs(), &[g2]);
        match c.driver(g2) {
            Driver::Gate { kind, inputs } => {
                assert_eq!(*kind, GateKind::Nand);
                assert_eq!(inputs.len(), 2);
            }
            other => panic!("unexpected driver {other:?}"),
        }
        assert_eq!(c.net_name(g2), "g2");
        assert_eq!(c.net("missing"), None);
    }

    #[test]
    fn undriven_net_is_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let ghost = b.net("ghost");
        let g = b.gate("g", GateKind::And, vec![a, ghost]);
        b.output(g);
        match b.finish() {
            Err(NetlistError::UndrivenNet { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected UndrivenNet, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_driver_is_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        b.gate("g", GateKind::Buf, vec![a]);
        b.gate("g", GateKind::Not, vec![a]);
        let g = b.net("g");
        b.output(g);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicateDriver { .. })
        ));
    }

    #[test]
    fn bad_arity_is_rejected() {
        let mut b = CircuitBuilder::new("bad");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.gate("g", GateKind::Not, vec![a, c]);
        b.output(g);
        assert!(matches!(b.finish(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut b = CircuitBuilder::new("cyclic");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.gate("y", GateKind::And, vec![a, x]);
        b.gate("x", GateKind::Buf, vec![y]);
        b.output(y);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn dff_breaks_cycle() {
        let mut b = CircuitBuilder::new("seq");
        let a = b.input("a");
        let q = b.net("q");
        let d = b.gate("d", GateKind::Xor, vec![a, q]);
        b.dff("q", d);
        b.output(d);
        let c = b.finish().expect("sequential loop through a DFF is legal");
        assert_eq!(c.dff_count(), 1);
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn nothing_observable_is_rejected() {
        let mut b = CircuitBuilder::new("blind");
        let a = b.input("a");
        b.gate("g", GateKind::Not, vec![a]);
        assert!(matches!(b.finish(), Err(NetlistError::NothingObservable)));
    }

    #[test]
    fn duplicate_input_declaration_is_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.input("a");
        b.input("a");
        let a = b.net("a");
        b.output(a);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicateDeclaration { role: "INPUT", .. })
        ));
    }

    #[test]
    fn fanout_counts_include_outputs_and_dffs() {
        let mut b = CircuitBuilder::new("fo");
        let a = b.input("a");
        let g1 = b.gate("g1", GateKind::Not, vec![a]);
        let g2 = b.gate("g2", GateKind::Not, vec![a]);
        b.dff("q", g1);
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let counts = c.fanout_counts();
        assert_eq!(counts[a.index()], 2); // feeds g1 and g2
        assert_eq!(counts[g1.index()], 2); // DFF data + PO
        assert_eq!(counts[g2.index()], 1); // PO only
    }

    #[test]
    fn error_display_is_informative() {
        let err = NetlistError::BadArity {
            name: "g".into(),
            kind: GateKind::Not,
            arity: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("NOT") && msg.contains('3'), "{msg}");
    }

    #[test]
    fn netid_display() {
        assert_eq!(NetId(7).to_string(), "n7");
        assert_eq!(NetId(7).index(), 7);
    }
}
