//! Small embedded reference circuits.
//!
//! These are used by examples, documentation, and ground-truth tests. The
//! larger ISCAS'89 benchmarks are produced by the [`generator`](crate::generator)
//! module (see `DESIGN.md` §5 for the substitution rationale); this module
//! holds circuits small enough to embed verbatim.

use crate::{bench, Circuit};

/// The ISCAS'85 benchmark c17 — six NAND gates, five inputs, two outputs —
/// in its standard `.bench` form. This is a real benchmark circuit, embedded
/// verbatim, used as ground truth for the simulator and fault model.
pub const C17_BENCH: &str = "\
# c17
INPUT(N1)
INPUT(N2)
INPUT(N3)
INPUT(N6)
INPUT(N7)
OUTPUT(N22)
OUTPUT(N23)
N10 = NAND(N1, N3)
N11 = NAND(N3, N6)
N16 = NAND(N2, N11)
N19 = NAND(N11, N7)
N22 = NAND(N10, N16)
N23 = NAND(N16, N19)
";

/// A small sequential demonstration circuit with two flip-flops, used in
/// examples: a 2-bit state machine with observable next-state logic.
pub const DEMO_SEQ_BENCH: &str = "\
# demo_seq
INPUT(en)
INPUT(d0)
INPUT(d1)
OUTPUT(y0)
OUTPUT(y1)
q0 = DFF(n0)
q1 = DFF(n1)
s0 = XOR(d0, q0)
s1 = XOR(d1, q1)
n0 = AND(en, s0)
n1 = AND(en, s1)
c0 = NAND(q0, q1)
y0 = NOR(n0, c0)
y1 = OR(n1, s0)
";

/// Parses and returns c17.
///
/// # Example
///
/// ```
/// let c17 = sdd_netlist::library::c17();
/// assert_eq!(c17.gate_count(), 6);
/// ```
pub fn c17() -> Circuit {
    bench::parse(C17_BENCH).expect("embedded c17 netlist is valid")
}

/// Parses and returns the sequential demo circuit.
///
/// # Example
///
/// ```
/// let demo = sdd_netlist::library::demo_seq();
/// assert_eq!(demo.dff_count(), 2);
/// ```
pub fn demo_seq() -> Circuit {
    bench::parse(DEMO_SEQ_BENCH).expect("embedded demo netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CombView;

    #[test]
    fn c17_shape() {
        let c = c17();
        assert_eq!(c.name(), "c17");
        assert_eq!(c.input_count(), 5);
        assert_eq!(c.output_count(), 2);
        assert_eq!(c.gate_count(), 6);
        assert_eq!(c.net_count(), 11);
        let v = CombView::new(&c);
        assert_eq!(v.depth(), 3);
    }

    #[test]
    fn demo_seq_shape() {
        let c = demo_seq();
        assert_eq!(c.input_count(), 3);
        assert_eq!(c.output_count(), 2);
        assert_eq!(c.dff_count(), 2);
        let v = CombView::new(&c);
        assert_eq!(v.inputs().len(), 5, "3 PI + 2 PPI");
        assert_eq!(v.outputs().len(), 4, "2 PO + 2 PPO");
    }
}
