//! Binary on-disk store for fault dictionaries — the persistence layer a
//! diagnosis *service* loads from, as opposed to the diffable text format
//! (`sdd_core::io`) the offline flow writes next to version control.
//!
//! A `.sddb` file is a 64-byte checksummed header followed by a bit-packed
//! little-endian payload (see [`format`]) covering all three dictionary
//! kinds. Signature rows are stored word-for-word as `sdd-logic` bit
//! vectors, so loading is a bounds-checked copy rather than a parse, and a
//! per-fault row index lets [`SddbReader`] serve single-row loads without
//! decoding the rest of the file. Every failure mode — truncation, version
//! skew, bit rot — surfaces as a typed [`SddError`], never a panic.
//!
//! ```
//! use sdd_core::SameDifferentDictionary;
//! use sdd_store::{decode, encode, StoredDictionary};
//!
//! let matrix = sdd_core::example::paper_example();
//! let d = SameDifferentDictionary::build(&matrix, &[2, 1]);
//! let bytes = encode(&StoredDictionary::SameDifferent(d.clone()))?;
//! match decode(&bytes)? {
//!     StoredDictionary::SameDifferent(back) => assert_eq!(back, d),
//!     _ => unreachable!("kind is recorded in the header"),
//! }
//! # Ok::<(), sdd_logic::SddError>(())
//! ```

// `deny`, not `forbid`: the [`mmap`] module scopes an `allow` for its
// `mmap`/`munmap` FFI — the crate's only unsafe code, mirroring the
// reactor's discipline in the serve layer.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod atomic;
pub mod format;
mod manifest;
pub mod mmap;
mod patch;
mod reader;
mod verify;
mod writer;

use std::fs;
use std::path::Path;

use sdd_core::{FullDictionary, PassFailDictionary, SameDifferentDictionary};
use sdd_logic::SddError;

pub use atomic::{atomic_write, is_temp, temp_sibling, AtomicFile};
pub use format::{strip_patch_provenance, Header, HEADER_LEN, MAGIC, VERSION};
pub use manifest::{
    is_manifest, slice_dictionary, write_sharded, ShardManifest, ShardRecord, ShardedReader,
    MANIFEST_HEADER_LEN, MANIFEST_MAGIC, MANIFEST_VERSION,
};
pub use mmap::{mmap_supported, read_dictionary_bytes, DictBytes, MappedFile, MmapMode};
pub use patch::{patch_artifact, patch_file, patch_sharded, PatchStats, SdColumnPatch};
pub use reader::SddbReader;
pub use verify::{
    quarantine_bad_shards, verify_file, verify_file_with, ShardHealth, VerifyReport,
    QUARANTINE_SUFFIX,
};
pub use writer::encode;

/// Which dictionary type a `.sddb` payload encodes, as recorded in the
/// header's kind tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum DictionaryKind {
    /// Pass/fail dictionary: one detection bit per fault and test.
    PassFail = 1,
    /// Same/different dictionary: signature bits plus per-test baselines.
    SameDifferent = 2,
    /// Full dictionary: response classes and distinct output vectors.
    Full = 3,
}

impl DictionaryKind {
    /// Decodes a header kind tag.
    pub fn from_tag(tag: u16) -> Option<Self> {
        match tag {
            1 => Some(Self::PassFail),
            2 => Some(Self::SameDifferent),
            3 => Some(Self::Full),
            _ => None,
        }
    }

    /// The lower-case name used in protocol replies and logs.
    pub fn name(self) -> &'static str {
        match self {
            Self::PassFail => "pass-fail",
            Self::SameDifferent => "same-different",
            Self::Full => "full",
        }
    }
}

/// Any of the three dictionary types, as stored and loaded by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredDictionary {
    /// A pass/fail dictionary.
    PassFail(PassFailDictionary),
    /// A same/different dictionary.
    SameDifferent(SameDifferentDictionary),
    /// A full dictionary.
    Full(FullDictionary),
}

impl StoredDictionary {
    /// This dictionary's kind tag.
    pub fn kind(&self) -> DictionaryKind {
        match self {
            Self::PassFail(_) => DictionaryKind::PassFail,
            Self::SameDifferent(_) => DictionaryKind::SameDifferent,
            Self::Full(_) => DictionaryKind::Full,
        }
    }

    /// Number of tests `k`.
    pub fn test_count(&self) -> usize {
        match self {
            Self::PassFail(d) => d.test_count(),
            Self::SameDifferent(d) => d.test_count(),
            Self::Full(d) => d.test_count(),
        }
    }

    /// Number of faults `n`.
    pub fn fault_count(&self) -> usize {
        match self {
            Self::PassFail(d) => d.fault_count(),
            Self::SameDifferent(d) => d.fault_count(),
            Self::Full(d) => d.fault_count(),
        }
    }

    /// Approximate resident memory of the decoded dictionary in bytes —
    /// the accounting unit a serving registry's memory cap is enforced in.
    /// (Computed from the same word/entry counts the store serializes, so
    /// it tracks the real footprint to within allocator overhead.)
    pub fn approx_bytes(&self) -> usize {
        let k = self.test_count();
        let n = self.fault_count();
        match self {
            Self::PassFail(_) => n * k.div_ceil(64) * 8,
            Self::SameDifferent(d) => {
                let m = d.sizes().outputs as usize;
                n * k.div_ceil(64) * 8 + k * (m.div_ceil(64) * 8 + 4)
            }
            Self::Full(d) => {
                let m = d.matrix();
                let diffs: usize = (0..k)
                    .map(|t| {
                        (0..m.class_count(t) as u32)
                            .map(|c| m.class_diffs(t, c).len() * 4 + 4)
                            .sum::<usize>()
                    })
                    .sum();
                k * m.output_count().div_ceil(64) * 8 + k * n * 4 + diffs
            }
        }
    }
}

/// Decodes a complete `.sddb` byte image into an in-memory dictionary.
///
/// # Errors
///
/// Typed [`SddError`]s for every corruption mode; see [`SddbReader::open`].
pub fn decode(bytes: &[u8]) -> Result<StoredDictionary, SddError> {
    SddbReader::open(bytes)?.dictionary()
}

/// Writes a dictionary to `path` in the binary format, crash-safely: the
/// image is staged in a temp sibling, fsynced, and atomically renamed into
/// place (see [`atomic_write`]), so an interrupted save never leaves a
/// torn file under the target name.
///
/// # Errors
///
/// [`SddError::Io`] when the file cannot be written.
pub fn save(path: impl AsRef<Path>, dictionary: &StoredDictionary) -> Result<(), SddError> {
    atomic_write(path, &encode(dictionary)?)
}

/// Reads a dictionary file into memory with a pre-buffering sanity check:
/// for binary `.sddb` images the 64-byte header is read and validated
/// first, and a header-declared payload length that disagrees with the
/// actual file length is rejected *before* the body is buffered — a torn
/// or hostile file costs one header read, not a full-file allocation.
/// Non-binary files (manifests, v1 text) are read whole; their own decode
/// validates them.
///
/// # Errors
///
/// [`SddError::Io`] when the file cannot be opened or read,
/// [`SddError::Truncated`] when the file is shorter than its header
/// declares, [`SddError::Invalid`] for trailing bytes, plus every
/// [`Header::decode`] error.
pub fn read_dictionary_file(path: impl AsRef<Path>) -> Result<Vec<u8>, SddError> {
    use std::io::Read;
    let path = path.as_ref();
    let context = || path.display().to_string();
    let mut file = fs::File::open(path).map_err(|e| SddError::io(context(), &e))?;
    let file_len = file
        .metadata()
        .map_err(|e| SddError::io(context(), &e))?
        .len();
    let file_len = usize::try_from(file_len)
        .map_err(|_| SddError::invalid(format!("{}: file length exceeds usize", path.display())))?;
    let mut head = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match file.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SddError::io(context(), &e)),
        }
    }
    if head[..filled].starts_with(&MAGIC) {
        // Header::decode validates magic, checksum, and version, and a
        // partial header surfaces as Truncated — all before any body read.
        let header = Header::decode(&head[..filled])?;
        let declared = HEADER_LEN
            .checked_add(header.payload_len)
            .ok_or_else(|| SddError::invalid("header-declared file length overflows usize"))?;
        if declared > file_len {
            return Err(SddError::Truncated {
                context: "store file",
                expected: declared,
                actual: file_len,
            });
        }
        if declared < file_len {
            return Err(SddError::invalid(format!(
                "{} trailing bytes after the declared payload",
                file_len - declared
            )));
        }
    }
    // The capacity is now trusted: for binary files it equals the
    // validated header + payload; otherwise it is the real on-disk size.
    let mut bytes = Vec::with_capacity(file_len);
    bytes.extend_from_slice(&head[..filled]);
    file.read_to_end(&mut bytes)
        .map_err(|e| SddError::io(context(), &e))?;
    Ok(bytes)
}

/// Reads a dictionary from a `.sddb` file.
///
/// # Errors
///
/// [`SddError::Io`] when the file cannot be read, otherwise the typed
/// decode errors of [`SddbReader::open`].
pub fn load(path: impl AsRef<Path>) -> Result<StoredDictionary, SddError> {
    let bytes = read_dictionary_file(path)?;
    decode(&bytes)
}

/// Returns `true` when `bytes` starts with the binary magic number —
/// the sniff that lets every caller accept both formats from one path.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.starts_with(&MAGIC)
}

/// Reads a same/different dictionary from either format, sniffing the magic
/// number: binary `.sddb` images decode through the store, anything else is
/// parsed as the v1 text format.
///
/// # Errors
///
/// The store's typed errors for binary input (including
/// [`SddError::Invalid`] when the file holds a different dictionary kind);
/// [`SddError::Parse`] for malformed text.
pub fn read_same_different_auto(
    bytes: impl AsRef<[u8]>,
) -> Result<SameDifferentDictionary, SddError> {
    let bytes = bytes.as_ref();
    if is_binary(bytes) {
        match decode(bytes)? {
            StoredDictionary::SameDifferent(d) => Ok(d),
            other => Err(SddError::invalid(format!(
                "expected a same-different dictionary, found a {} dictionary",
                other.kind().name()
            ))),
        }
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SddError::invalid("dictionary file is neither .sddb nor UTF-8 text"))?;
        sdd_core::io::read_same_different(text).map_err(SddError::from)
    }
}

/// Loads a same/different dictionary from a file in either format
/// (see [`read_same_different_auto`]).
///
/// # Errors
///
/// [`SddError::Io`] when the file cannot be read, otherwise as
/// [`read_same_different_auto`].
pub fn load_same_different(path: impl AsRef<Path>) -> Result<SameDifferentDictionary, SddError> {
    load_same_different_with(path, MmapMode::Off)
}

/// [`load_same_different`] with an explicit mapping mode: under
/// [`MmapMode::Auto`]/[`MmapMode::On`] the file's pages are borrowed from
/// the page cache for the duration of the decode instead of being copied
/// into an owned buffer first.
///
/// # Errors
///
/// As [`load_same_different`], plus [`read_dictionary_bytes`]'s mapping
/// errors.
pub fn load_same_different_with(
    path: impl AsRef<Path>,
    mode: MmapMode,
) -> Result<SameDifferentDictionary, SddError> {
    let bytes = read_dictionary_bytes(path, mode)?;
    read_same_different_auto(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sd() -> SameDifferentDictionary {
        SameDifferentDictionary::build(&sdd_core::example::paper_example(), &[2, 1])
    }

    #[test]
    fn all_three_kinds_round_trip() {
        let matrix = sdd_core::example::paper_example();
        let dictionaries = [
            StoredDictionary::PassFail(PassFailDictionary::build(&matrix)),
            StoredDictionary::SameDifferent(sample_sd()),
            StoredDictionary::Full(FullDictionary::new(matrix)),
        ];
        for d in dictionaries {
            let bytes = encode(&d).unwrap();
            assert!(is_binary(&bytes));
            let back = decode(&bytes).unwrap();
            assert_eq!(back, d, "{:?}", d.kind());
            assert_eq!(back.kind(), d.kind());
        }
    }

    #[test]
    fn lazy_rows_match_decoded_rows() {
        let d = sample_sd();
        let bytes = encode(&StoredDictionary::SameDifferent(d.clone())).unwrap();
        let reader = SddbReader::open(&bytes).unwrap();
        assert_eq!(reader.kind(), DictionaryKind::SameDifferent);
        for fault in 0..d.fault_count() {
            assert_eq!(reader.signature(fault).unwrap(), *d.signature(fault));
        }
        for test in 0..d.test_count() {
            assert_eq!(reader.baseline(test).unwrap(), *d.baseline(test));
        }
        assert!(reader.signature(d.fault_count()).is_err());
    }

    #[test]
    fn payload_corruption_is_a_checksum_error() {
        let mut bytes = encode(&StoredDictionary::SameDifferent(sample_sd())).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode(&bytes),
            Err(SddError::ChecksumMismatch {
                context: "store payload",
                ..
            })
        ));
    }

    #[test]
    fn truncated_payload_is_a_truncation_error() {
        let bytes = encode(&StoredDictionary::SameDifferent(sample_sd())).unwrap();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            decode(cut),
            Err(SddError::Truncated {
                context: "store payload",
                ..
            })
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&StoredDictionary::SameDifferent(sample_sd())).unwrap();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(SddError::Invalid { .. })));
    }

    #[test]
    fn auto_reader_accepts_both_formats() {
        let d = sample_sd();
        let binary = encode(&StoredDictionary::SameDifferent(d.clone())).unwrap();
        assert_eq!(read_same_different_auto(&binary).unwrap(), d);
        let text = sdd_core::io::write_same_different(&d);
        assert_eq!(read_same_different_auto(text.as_bytes()).unwrap(), d);
        // Kind mismatch through the auto path is a typed error.
        let matrix = sdd_core::example::paper_example();
        let pf = encode(&StoredDictionary::PassFail(PassFailDictionary::build(
            &matrix,
        )))
        .unwrap();
        assert!(matches!(
            read_same_different_auto(&pf),
            Err(SddError::Invalid { .. })
        ));
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join(format!("sdd-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dict.sddb");
        let d = StoredDictionary::SameDifferent(sample_sd());
        save(&path, &d).unwrap();
        assert_eq!(load(&path).unwrap(), d);
        assert!(matches!(
            load(dir.join("missing.sddb")),
            Err(SddError::Io { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn approx_bytes_tracks_dimensions() {
        let d = StoredDictionary::SameDifferent(sample_sd());
        // 4 faults × 1 word + 2 tests × (1 word + class u32).
        assert_eq!(d.approx_bytes(), 4 * 8 + 2 * (8 + 4));
        let matrix = sdd_core::example::paper_example();
        assert!(StoredDictionary::Full(FullDictionary::new(matrix)).approx_bytes() > 0);
    }
}
