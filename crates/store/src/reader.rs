//! Validated, lazily-indexed access to a `.sddb` byte image.

use sdd_core::{FullDictionary, PassFailDictionary, SameDifferentDictionary};
use sdd_logic::{BitVec, SddError};
use sdd_sim::ResponseMatrix;

use crate::format::{self, checked_add, checked_mul, Cursor, Header, HEADER_LEN};
use crate::{DictionaryKind, StoredDictionary};

/// A reader over a complete `.sddb` byte image, generic over where the
/// bytes live: a borrowed slice, an owned `Vec<u8>`, or a
/// [`DictBytes`](crate::DictBytes) mapping whose pages are faulted in only
/// as rows are touched.
///
/// Opening validates the header and the payload checksum once; after that,
/// [`signature`](Self::signature) loads single fault rows through the row
/// index without decoding the rest of the payload, and
/// [`dictionary`](Self::dictionary) decodes the whole artifact.
/// [`open_unverified`](Self::open_unverified) defers the payload checksum
/// for callers that only touch a few rows of a mapped image and do not
/// want to fault in every page up front.
///
/// # Example
///
/// ```
/// use sdd_core::PassFailDictionary;
/// use sdd_store::{encode, SddbReader, StoredDictionary};
///
/// let d = PassFailDictionary::build(&sdd_core::example::paper_example());
/// let bytes = encode(&StoredDictionary::PassFail(d.clone())).unwrap();
/// let reader = SddbReader::open(&bytes)?;
/// assert_eq!(reader.faults(), 4);
/// assert_eq!(reader.signature(2)?, *d.signature(2)); // lazy row load
/// # Ok::<(), sdd_logic::SddError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SddbReader<B> {
    bytes: B,
    header: Header,
}

impl<B: AsRef<[u8]>> SddbReader<B> {
    /// Opens a byte image: decodes the header and verifies the payload
    /// length and checksum. (Checksumming touches every payload byte, so
    /// for a mapped image this faults in the whole file once — corruption
    /// surfaces here, identically to the owned path, never later.)
    ///
    /// # Errors
    ///
    /// Every corruption mode maps to a typed [`SddError`]:
    /// [`SddError::Truncated`] when bytes are missing,
    /// [`SddError::Invalid`] for bad magic / kind / trailing garbage,
    /// [`SddError::ChecksumMismatch`] for flipped bits, and
    /// [`SddError::UnsupportedVersion`] for newer formats.
    pub fn open(bytes: B) -> Result<Self, SddError> {
        let reader = Self::open_unverified(bytes)?;
        reader.verify_checksum()?;
        Ok(reader)
    }

    /// Opens a byte image with the header and payload-length checks of
    /// [`open`](Self::open) but *without* checksumming the payload — row
    /// loads then fault in only the pages they touch, which is what makes
    /// mapped cold-start latency independent of file size. Every row read
    /// stays bounds-checked, so the worst a skipped checksum admits is
    /// wrong bits, never out-of-bounds access; callers that serve
    /// long-lived traffic should prefer [`open`](Self::open).
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open), minus [`SddError::ChecksumMismatch`].
    pub fn open_unverified(bytes: B) -> Result<Self, SddError> {
        let image = bytes.as_ref();
        let header = Header::decode(image)?;
        let payload_len = image.len() - HEADER_LEN;
        if payload_len < header.payload_len {
            return Err(SddError::Truncated {
                context: "store payload",
                expected: HEADER_LEN + header.payload_len,
                actual: image.len(),
            });
        }
        if payload_len > header.payload_len {
            return Err(SddError::invalid(format!(
                "{} trailing bytes after the payload",
                payload_len - header.payload_len
            )));
        }
        Ok(Self { bytes, header })
    }

    /// Verifies the payload checksum recorded in the header.
    ///
    /// # Errors
    ///
    /// [`SddError::ChecksumMismatch`] when any payload bit flipped.
    pub fn verify_checksum(&self) -> Result<(), SddError> {
        let computed = format::fnv1a64(self.payload());
        if computed != self.header.payload_checksum {
            return Err(SddError::ChecksumMismatch {
                context: "store payload",
                stored: self.header.payload_checksum,
                computed,
            });
        }
        Ok(())
    }

    /// The payload bytes after the 64-byte header.
    fn payload(&self) -> &[u8] {
        &self.bytes.as_ref()[HEADER_LEN..]
    }

    /// Consumes the reader and returns the backing bytes — how a registry
    /// keeps the validated image (e.g. a mapping) after the header has
    /// been inspected.
    pub fn into_bytes(self) -> B {
        self.bytes
    }

    /// The decoded header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Which dictionary kind the payload encodes.
    pub fn kind(&self) -> DictionaryKind {
        self.header.kind
    }

    /// Number of tests `k`.
    pub fn tests(&self) -> usize {
        self.header.tests
    }

    /// Number of faults `n`.
    pub fn faults(&self) -> usize {
        self.header.faults
    }

    /// Number of observed outputs `m`.
    pub fn outputs(&self) -> usize {
        self.header.outputs
    }

    /// Byte offset (within the payload) of the per-fault row index, for the
    /// kinds that store signature rows.
    fn row_index_start(&self) -> Result<usize, SddError> {
        let h = &self.header;
        match h.kind {
            DictionaryKind::PassFail => Ok(0),
            DictionaryKind::SameDifferent => {
                // classes (tests × u32) + baselines (tests × ⌈m/64⌉ words),
                // every step checked: the dimensions come from the header.
                let classes = checked_mul(h.tests, 4, "baseline class table")?;
                let row = checked_mul(h.outputs.div_ceil(64), 8, "baseline row length")?;
                let baselines = checked_mul(h.tests, row, "baseline table")?;
                checked_add(classes, baselines, "signature index offset")
            }
            DictionaryKind::Full => Err(SddError::invalid(
                "full dictionaries store response classes, not signature rows",
            )),
        }
    }

    /// Loads the signature row of one fault through the row index, without
    /// decoding any other row — the partial-load path a tester-floor service
    /// uses when it only needs a handful of candidates re-checked. Over a
    /// mapped image this touches only the index entry's page and the row's
    /// pages.
    ///
    /// # Errors
    ///
    /// [`SddError::Invalid`] for an out-of-range fault or a full-dictionary
    /// payload, [`SddError::Truncated`] when the indexed row runs off the
    /// payload.
    pub fn signature(&self, fault: usize) -> Result<BitVec, SddError> {
        if fault >= self.header.faults {
            return Err(SddError::invalid(format!(
                "fault {fault} out of range ({} faults)",
                self.header.faults
            )));
        }
        let index_start = self.row_index_start()?;
        let mut cursor = Cursor::new(self.payload(), "signature row index");
        cursor.seek(checked_add(
            index_start,
            checked_mul(fault, 8, "signature index entry")?,
            "signature index entry",
        )?);
        let offset = self.offset(cursor.u64()?)?;
        let mut cursor = Cursor::new(self.payload(), "signature row");
        cursor.seek(offset);
        cursor.bit_row(self.header.tests)
    }

    /// Loads the baseline output vector of one test (same/different
    /// payloads only).
    ///
    /// # Errors
    ///
    /// [`SddError::Invalid`] for an out-of-range test or a non-
    /// same/different payload, [`SddError::Truncated`] on short payloads.
    pub fn baseline(&self, test: usize) -> Result<BitVec, SddError> {
        if self.header.kind != DictionaryKind::SameDifferent {
            return Err(SddError::invalid(
                "baselines are only stored for same/different dictionaries",
            ));
        }
        if test >= self.header.tests {
            return Err(SddError::invalid(format!(
                "test {test} out of range ({} tests)",
                self.header.tests
            )));
        }
        let baseline_bytes = checked_mul(self.header.outputs.div_ceil(64), 8, "baseline row")?;
        let mut cursor = Cursor::new(self.payload(), "baseline row");
        cursor.seek(checked_add(
            checked_mul(self.header.tests, 4, "baseline class table")?,
            checked_mul(test, baseline_bytes, "baseline row offset")?,
            "baseline row offset",
        )?);
        cursor.bit_row(self.header.outputs)
    }

    fn offset(&self, raw: u64) -> Result<usize, SddError> {
        usize::try_from(raw)
            .map_err(|_| SddError::invalid(format!("row offset {raw} exceeds usize")))
    }

    /// Decodes the whole payload into an in-memory dictionary.
    ///
    /// # Errors
    ///
    /// Typed [`SddError`]s for truncated sections, out-of-range offsets, or
    /// structurally inconsistent parts.
    pub fn dictionary(&self) -> Result<StoredDictionary, SddError> {
        let h = &self.header;
        match h.kind {
            DictionaryKind::PassFail => {
                let signatures = self.signature_rows()?;
                Ok(StoredDictionary::PassFail(PassFailDictionary::from_parts(
                    signatures, h.tests, h.outputs,
                )?))
            }
            DictionaryKind::SameDifferent => {
                let mut cursor = Cursor::new(self.payload(), "baseline classes");
                let mut classes = Vec::with_capacity(guarded_count(h.tests, 4, &cursor)?);
                for _ in 0..h.tests {
                    classes.push(cursor.u32()?);
                }
                let mut cursor = Cursor::new(self.payload(), "baseline rows");
                cursor.seek(checked_mul(h.tests, 4, "baseline class table")?);
                let mut baselines = Vec::with_capacity(guarded_count(h.tests, 8, &cursor)?);
                for _ in 0..h.tests {
                    baselines.push(cursor.bit_row(h.outputs)?);
                }
                let signatures = self.signature_rows()?;
                Ok(StoredDictionary::SameDifferent(
                    SameDifferentDictionary::from_parts(signatures, baselines, classes, h.outputs)?,
                ))
            }
            DictionaryKind::Full => self.full_dictionary(),
        }
    }

    /// Walks the payload's entire structure — every index entry, row, and
    /// table — with the same bounds checks as [`dictionary`]
    /// (Self::dictionary), but materializes at most one row at a time.
    /// This is how `sdd verify` proves a mapped multi-gigabyte file sound
    /// with O(row) heap instead of decoding it: peak memory is one bit
    /// row, not the dictionary.
    ///
    /// # Errors
    ///
    /// The same structural [`SddError`]s [`dictionary`](Self::dictionary)
    /// raises for truncated sections or out-of-range offsets.
    pub fn validate_structure(&self) -> Result<(), SddError> {
        let h = &self.header;
        match h.kind {
            DictionaryKind::PassFail => self.walk_signature_rows(),
            DictionaryKind::SameDifferent => {
                let mut cursor = Cursor::new(self.payload(), "baseline classes");
                for _ in 0..h.tests {
                    cursor.u32()?;
                }
                for _ in 0..h.tests {
                    cursor.bit_row(h.outputs)?;
                }
                self.walk_signature_rows()
            }
            DictionaryKind::Full => {
                let good_bytes = checked_mul(
                    h.tests,
                    checked_mul(h.outputs.div_ceil(64), 8, "fault-free row length")?,
                    "fault-free response table",
                )?;
                let class_entries = checked_mul(h.tests, h.faults, "response class matrix")?;
                let class_bytes = checked_mul(class_entries, 4, "response class matrix")?;
                let mut cursor = Cursor::new(self.payload(), "fault-free responses");
                for _ in 0..h.tests {
                    cursor.bit_row(h.outputs)?;
                }
                let mut cursor = Cursor::new(self.payload(), "response class matrix");
                cursor.seek(good_bytes);
                for _ in 0..class_entries {
                    cursor.u32()?;
                }
                let mut index = Cursor::new(self.payload(), "distinct-table index");
                index.seek(checked_add(
                    good_bytes,
                    class_bytes,
                    "distinct-table index",
                )?);
                for _ in 0..h.tests {
                    let offset = self.offset(index.u64()?)?;
                    let mut table = Cursor::new(self.payload(), "distinct-vector table");
                    table.seek(offset);
                    let class_count = table.u32()? as usize;
                    guarded_count(class_count, 4, &table)?;
                    for _ in 0..class_count {
                        let len = table.u32()? as usize;
                        guarded_count(len, 4, &table)?;
                        for _ in 0..len {
                            table.u32()?;
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Bounds-walks every signature row through the row index without
    /// keeping any of them.
    fn walk_signature_rows(&self) -> Result<(), SddError> {
        let index_start = self.row_index_start()?;
        let mut index = Cursor::new(self.payload(), "signature row index");
        index.seek(index_start);
        guarded_count(self.header.faults, 8, &index)?;
        for _ in 0..self.header.faults {
            let offset = self.offset(index.u64()?)?;
            let mut row = Cursor::new(self.payload(), "signature row");
            row.seek(offset);
            row.bit_row(self.header.tests)?;
        }
        Ok(())
    }

    /// Reads every signature row through the row index.
    fn signature_rows(&self) -> Result<Vec<BitVec>, SddError> {
        let index_start = self.row_index_start()?;
        let mut index = Cursor::new(self.payload(), "signature row index");
        index.seek(index_start);
        let mut rows = Vec::with_capacity(guarded_count(self.header.faults, 8, &index)?);
        for _ in 0..self.header.faults {
            let offset = self.offset(index.u64()?)?;
            let mut row = Cursor::new(self.payload(), "signature row");
            row.seek(offset);
            rows.push(row.bit_row(self.header.tests)?);
        }
        Ok(rows)
    }

    fn full_dictionary(&self) -> Result<StoredDictionary, SddError> {
        let h = &self.header;
        let good_bytes = checked_mul(
            h.tests,
            checked_mul(h.outputs.div_ceil(64), 8, "fault-free row length")?,
            "fault-free response table",
        )?;
        let class_entries = checked_mul(h.tests, h.faults, "response class matrix")?;
        let class_bytes = checked_mul(class_entries, 4, "response class matrix")?;
        let mut cursor = Cursor::new(self.payload(), "fault-free responses");
        let mut good = Vec::with_capacity(guarded_count(h.tests, 8, &cursor)?);
        for _ in 0..h.tests {
            good.push(cursor.bit_row(h.outputs)?);
        }
        let mut cursor = Cursor::new(self.payload(), "response class matrix");
        cursor.seek(good_bytes);
        let mut class = Vec::with_capacity(guarded_count(class_entries, 4, &cursor)?);
        for _ in 0..class_entries {
            class.push(cursor.u32()?);
        }
        let mut index = Cursor::new(self.payload(), "distinct-table index");
        index.seek(checked_add(
            good_bytes,
            class_bytes,
            "distinct-table index",
        )?);
        let mut distinct = Vec::with_capacity(guarded_count(h.tests, 8, &index)?);
        for _ in 0..h.tests {
            let offset = self.offset(index.u64()?)?;
            let mut table = Cursor::new(self.payload(), "distinct-vector table");
            table.seek(offset);
            let class_count = table.u32()? as usize;
            let mut classes = Vec::with_capacity(guarded_count(class_count, 4, &table)?);
            for _ in 0..class_count {
                let len = table.u32()? as usize;
                let mut diffs = Vec::with_capacity(guarded_count(len, 4, &table)?);
                for _ in 0..len {
                    diffs.push(table.u32()?);
                }
                classes.push(diffs);
            }
            distinct.push(classes);
        }
        let matrix = ResponseMatrix::from_class_parts(good, h.faults, h.outputs, class, distinct)?;
        Ok(StoredDictionary::Full(FullDictionary::new(matrix)))
    }
}

/// Refuses a count-driven allocation whose entries could not all fit in the
/// bytes left after the cursor — the guard that keeps a crafted header or
/// table prefix from requesting a multi-gigabyte `Vec` before the first
/// truncated read is even attempted. `bytes_each` is the *minimum* encoded
/// size of one entry.
fn guarded_count(count: usize, bytes_each: usize, cursor: &Cursor<'_>) -> Result<usize, SddError> {
    let need = checked_mul(count, bytes_each, "table allocation")?;
    if need > cursor.remaining() {
        return Err(SddError::invalid(format!(
            "declared count {count} needs {need} bytes but only {} remain",
            cursor.remaining()
        )));
    }
    Ok(count)
}
