//! Payload assembly: each dictionary kind serialized to its `.sddb` payload.
//!
//! Section layout per kind (offsets relative to the payload start, which is
//! byte 64 of the file):
//!
//! * **Pass/fail** — `[row index: n×u64] [signature rows: n × ⌈k/64⌉×u64]`.
//! * **Same/different** — `[baseline classes: k×u32] [baselines: k ×
//!   ⌈m/64⌉×u64] [row index: n×u64] [signature rows: n × ⌈k/64⌉×u64]`.
//! * **Full** — `[good responses: k × ⌈m/64⌉×u64] [class matrix: k·n×u32]
//!   [table index: k×u64] [per-test distinct tables]`, where each table is
//!   `class_count:u32` followed by `class_count` diff lists
//!   (`len:u32, len×u32` flipped-output positions).
//!
//! The row index is redundant for the fixed-width signature rows of v1 —
//! offsets are computable — but it is what lets a reader load single rows
//! without trusting arithmetic on dimensions, and it keeps the format stable
//! if a later version compresses rows to variable width.
//!
//! Every count written into a fixed-width field and every offset computed
//! here goes through a checked conversion: the read side already refuses to
//! trust unvalidated arithmetic, and the write side must not silently
//! truncate what the read side would then faithfully mis-serve.

use sdd_core::{FullDictionary, PassFailDictionary, SameDifferentDictionary};
use sdd_logic::SddError;

use crate::format::{
    checked_add, checked_mul, push_bit_row, push_u32, push_u64, Header, HEADER_LEN,
};
use crate::{format, DictionaryKind, StoredDictionary};

/// `value as u32` that refuses to truncate, surfacing the field that
/// overflowed as a typed [`SddError::TooLarge`].
pub(crate) fn checked_u32(value: usize, context: &'static str) -> Result<u32, SddError> {
    u32::try_from(value).map_err(|_| SddError::TooLarge {
        context,
        max: u64::from(u32::MAX),
        actual: value as u64,
    })
}

/// Serializes any dictionary into a complete `.sddb` byte image
/// (header + checksummed payload), with a patch generation of 0.
///
/// # Errors
///
/// [`SddError::TooLarge`] when a count or offset exceeds its fixed-width
/// field, and [`SddError::Invalid`] when a section offset overflows `usize`.
pub fn encode(dictionary: &StoredDictionary) -> Result<Vec<u8>, SddError> {
    let (kind, tests, faults, outputs, payload) = match dictionary {
        StoredDictionary::PassFail(d) => (
            DictionaryKind::PassFail,
            d.test_count(),
            d.fault_count(),
            d.sizes().outputs as usize,
            pass_fail_payload(d)?,
        ),
        StoredDictionary::SameDifferent(d) => (
            DictionaryKind::SameDifferent,
            d.test_count(),
            d.fault_count(),
            d.sizes().outputs as usize,
            same_different_payload(d)?,
        ),
        StoredDictionary::Full(d) => (
            DictionaryKind::Full,
            d.test_count(),
            d.fault_count(),
            d.matrix().output_count(),
            full_payload(d)?,
        ),
    };
    let header = Header {
        kind,
        tests,
        faults,
        outputs,
        payload_len: payload.len(),
        payload_checksum: format::fnv1a64(&payload),
        patched: 0,
    };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Appends a row index (`count` × u64 offsets of fixed-width rows starting
/// at `rows_start`) followed by nothing — rows are pushed by the caller.
fn push_row_index(
    out: &mut Vec<u8>,
    count: usize,
    rows_start: usize,
    row_bytes: usize,
) -> Result<(), SddError> {
    for row in 0..count {
        let offset = checked_add(
            rows_start,
            checked_mul(row, row_bytes, "row offset")?,
            "row offset",
        )?;
        push_u64(out, offset as u64);
    }
    Ok(())
}

fn pass_fail_payload(d: &PassFailDictionary) -> Result<Vec<u8>, SddError> {
    let n = d.fault_count();
    let row_bytes = d.test_count().div_ceil(64) * 8;
    let index_bytes = checked_mul(n, 8, "row index length")?;
    let mut out = Vec::with_capacity(index_bytes + n * row_bytes);
    push_row_index(&mut out, n, index_bytes, row_bytes)?;
    for fault in 0..n {
        push_bit_row(&mut out, d.signature(fault));
    }
    Ok(out)
}

fn same_different_payload(d: &SameDifferentDictionary) -> Result<Vec<u8>, SddError> {
    let k = d.test_count();
    let n = d.fault_count();
    let baseline_bytes = (d.sizes().outputs as usize).div_ceil(64) * 8;
    let row_bytes = k.div_ceil(64) * 8;
    let index_start = checked_add(
        checked_mul(k, 4, "baseline class section")?,
        checked_mul(k, baseline_bytes, "baseline section")?,
        "row index start",
    )?;
    let rows_start = checked_add(
        index_start,
        checked_mul(n, 8, "row index length")?,
        "signature section start",
    )?;
    let mut out = Vec::with_capacity(rows_start + n * row_bytes);
    for &class in d.baseline_classes() {
        push_u32(&mut out, class);
    }
    for test in 0..k {
        push_bit_row(&mut out, d.baseline(test));
    }
    push_row_index(&mut out, n, rows_start, row_bytes)?;
    for fault in 0..n {
        push_bit_row(&mut out, d.signature(fault));
    }
    Ok(out)
}

fn full_payload(d: &FullDictionary) -> Result<Vec<u8>, SddError> {
    let m = d.matrix();
    let k = m.test_count();
    let n = m.fault_count();
    // Distinct tables first, into a scratch buffer, recording each test's
    // offset relative to the tables section.
    let mut tables = Vec::new();
    let mut table_offsets = Vec::with_capacity(k);
    for test in 0..k {
        table_offsets.push(tables.len());
        let classes = checked_u32(m.class_count(test), "class count")?;
        push_u32(&mut tables, classes);
        for class in 0..classes {
            let diffs = m.class_diffs(test, class);
            push_u32(&mut tables, checked_u32(diffs.len(), "diff list length")?);
            for &pos in diffs {
                push_u32(&mut tables, pos);
            }
        }
    }
    let good_bytes = m.output_count().div_ceil(64) * 8;
    let tables_start = checked_add(
        checked_add(
            checked_mul(k, good_bytes, "good response section")?,
            checked_mul(
                checked_mul(k, n, "class matrix entries")?,
                4,
                "class matrix section",
            )?,
            "table index start",
        )?,
        checked_mul(k, 8, "table index length")?,
        "tables section start",
    )?;
    let mut out = Vec::with_capacity(tables_start + tables.len());
    for test in 0..k {
        push_bit_row(&mut out, m.good_response(test));
    }
    for test in 0..k {
        for &class in m.classes(test) {
            push_u32(&mut out, class);
        }
    }
    for offset in table_offsets {
        let offset = checked_add(tables_start, offset, "table offset")?;
        push_u64(&mut out, offset as u64);
    }
    out.extend_from_slice(&tables);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_u32_accepts_the_boundary_and_rejects_past_it() {
        // The largest dictionaries that fit in memory cannot push class or
        // diff counts past u32 end to end, so the boundary is forced at the
        // conversion the write path funnels every such count through.
        assert_eq!(
            checked_u32(u32::MAX as usize, "class count").unwrap(),
            u32::MAX
        );
        let err = checked_u32(u32::MAX as usize + 1, "class count").unwrap_err();
        assert_eq!(
            err,
            SddError::TooLarge {
                context: "class count",
                max: u64::from(u32::MAX),
                actual: u64::from(u32::MAX) + 1,
            }
        );
        assert!(err.to_string().contains("class count"));
    }
}
