//! Payload assembly: each dictionary kind serialized to its `.sddb` payload.
//!
//! Section layout per kind (offsets relative to the payload start, which is
//! byte 64 of the file):
//!
//! * **Pass/fail** — `[row index: n×u64] [signature rows: n × ⌈k/64⌉×u64]`.
//! * **Same/different** — `[baseline classes: k×u32] [baselines: k ×
//!   ⌈m/64⌉×u64] [row index: n×u64] [signature rows: n × ⌈k/64⌉×u64]`.
//! * **Full** — `[good responses: k × ⌈m/64⌉×u64] [class matrix: k·n×u32]
//!   [table index: k×u64] [per-test distinct tables]`, where each table is
//!   `class_count:u32` followed by `class_count` diff lists
//!   (`len:u32, len×u32` flipped-output positions).
//!
//! The row index is redundant for the fixed-width signature rows of v1 —
//! offsets are computable — but it is what lets a reader load single rows
//! without trusting arithmetic on dimensions, and it keeps the format stable
//! if a later version compresses rows to variable width.

use sdd_core::{FullDictionary, PassFailDictionary, SameDifferentDictionary};

use crate::format::{push_bit_row, push_u32, push_u64, Header, HEADER_LEN};
use crate::{format, DictionaryKind, StoredDictionary};

/// Serializes any dictionary into a complete `.sddb` byte image
/// (header + checksummed payload).
pub fn encode(dictionary: &StoredDictionary) -> Vec<u8> {
    let (kind, tests, faults, outputs, payload) = match dictionary {
        StoredDictionary::PassFail(d) => (
            DictionaryKind::PassFail,
            d.test_count(),
            d.fault_count(),
            d.sizes().outputs as usize,
            pass_fail_payload(d),
        ),
        StoredDictionary::SameDifferent(d) => (
            DictionaryKind::SameDifferent,
            d.test_count(),
            d.fault_count(),
            d.sizes().outputs as usize,
            same_different_payload(d),
        ),
        StoredDictionary::Full(d) => (
            DictionaryKind::Full,
            d.test_count(),
            d.fault_count(),
            d.matrix().output_count(),
            full_payload(d),
        ),
    };
    let header = Header {
        kind,
        tests,
        faults,
        outputs,
        payload_len: payload.len(),
        payload_checksum: format::fnv1a64(&payload),
    };
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(&payload);
    out
}

/// Appends a row index (`count` × u64 offsets of fixed-width rows starting
/// at `rows_start`) followed by nothing — rows are pushed by the caller.
fn push_row_index(out: &mut Vec<u8>, count: usize, rows_start: usize, row_bytes: usize) {
    for row in 0..count {
        push_u64(out, (rows_start + row * row_bytes) as u64);
    }
}

fn pass_fail_payload(d: &PassFailDictionary) -> Vec<u8> {
    let n = d.fault_count();
    let row_bytes = d.test_count().div_ceil(64) * 8;
    let index_bytes = n * 8;
    let mut out = Vec::with_capacity(index_bytes + n * row_bytes);
    push_row_index(&mut out, n, index_bytes, row_bytes);
    for fault in 0..n {
        push_bit_row(&mut out, d.signature(fault));
    }
    out
}

fn same_different_payload(d: &SameDifferentDictionary) -> Vec<u8> {
    let k = d.test_count();
    let n = d.fault_count();
    let baseline_bytes = (d.sizes().outputs as usize).div_ceil(64) * 8;
    let row_bytes = k.div_ceil(64) * 8;
    let index_start = k * 4 + k * baseline_bytes;
    let rows_start = index_start + n * 8;
    let mut out = Vec::with_capacity(rows_start + n * row_bytes);
    for &class in d.baseline_classes() {
        push_u32(&mut out, class);
    }
    for test in 0..k {
        push_bit_row(&mut out, d.baseline(test));
    }
    push_row_index(&mut out, n, rows_start, row_bytes);
    for fault in 0..n {
        push_bit_row(&mut out, d.signature(fault));
    }
    out
}

fn full_payload(d: &FullDictionary) -> Vec<u8> {
    let m = d.matrix();
    let k = m.test_count();
    let n = m.fault_count();
    // Distinct tables first, into a scratch buffer, recording each test's
    // offset relative to the tables section.
    let mut tables = Vec::new();
    let mut table_offsets = Vec::with_capacity(k);
    for test in 0..k {
        table_offsets.push(tables.len());
        push_u32(&mut tables, m.class_count(test) as u32);
        for class in 0..m.class_count(test) as u32 {
            let diffs = m.class_diffs(test, class);
            push_u32(&mut tables, diffs.len() as u32);
            for &pos in diffs {
                push_u32(&mut tables, pos);
            }
        }
    }
    let good_bytes = m.output_count().div_ceil(64) * 8;
    let tables_start = k * good_bytes + k * n * 4 + k * 8;
    let mut out = Vec::with_capacity(tables_start + tables.len());
    for test in 0..k {
        push_bit_row(&mut out, m.good_response(test));
    }
    for test in 0..k {
        for &class in m.classes(test) {
            push_u32(&mut out, class);
        }
    }
    for offset in table_offsets {
        push_u64(&mut out, (tables_start + offset) as u64);
    }
    out.extend_from_slice(&tables);
    out
}
