//! In-place column patching of same/different `.sddb` artifacts — the
//! store half of ECO (`sdd patch`) support.
//!
//! An ECO leaves most of a dictionary untouched: only the *touched tests*
//! (those whose response partition changed) need new data, and for each the
//! delta is one **column** — the test's baseline class, its baseline output
//! vector, and bit `t` of every fault's signature row. This module applies
//! such column patches directly to the serialized image through the per-
//! fault row index, instead of re-encoding the dictionary from scratch:
//!
//! * whole `.sddb` files are patched in memory and atomically replaced;
//! * sharded sets rewrite **only the shards whose bytes actually change**,
//!   under generation-suffixed names (`<base>.p<N>.sddb`), then commit the
//!   manifest last — a crash at any point leaves either the old complete
//!   set or the new complete set loadable, never a mix.
//!
//! Every rewritten image gets its payload checksum recomputed and its
//! header's patch generation bumped, so provenance survives in the file
//! itself (see [`crate::strip_patch_provenance`] for the canonical form
//! used in patched-vs-rebuilt equivalence checks).

use std::fs;
use std::io::Read;
use std::path::Path;

use sdd_logic::{BitVec, SddError};

use crate::format::{checked_add, checked_mul, Header, HEADER_LEN};
use crate::manifest::{ShardManifest, ShardRecord, ShardedReader};
use crate::{atomic_write, format, read_dictionary_file, DictionaryKind, SddbReader};

/// The full replacement column for one touched test of a same/different
/// dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdColumnPatch {
    /// Test index `t` (column to replace).
    pub test: usize,
    /// New baseline response class of test `t`.
    pub baseline_class: u32,
    /// New baseline output vector of test `t` (`m` bits).
    pub baseline: BitVec,
    /// New signature bits of test `t` for **all** faults, in global
    /// collapsed order (`n` bits — sliced per shard automatically).
    pub column: BitVec,
}

/// What a patch application did, summed across every image it touched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Number of column patches applied.
    pub tests_patched: usize,
    /// Signature bits whose stored value actually flipped.
    pub bits_flipped: u64,
    /// Touched tests whose baseline class or vector actually changed.
    pub baseline_changes: usize,
    /// Files rewritten (1 for a whole `.sddb`, per-shard otherwise).
    pub files_rewritten: usize,
    /// Total data files in the artifact (1 for a whole `.sddb`).
    pub files_total: usize,
    /// Highest patch generation now recorded in a rewritten header, or the
    /// existing generation when nothing changed.
    pub generation: u32,
}

impl PatchStats {
    /// `true` when the patch changed any stored byte.
    pub fn changed(&self) -> bool {
        self.files_rewritten > 0
    }
}

/// Per-image byte delta from [`apply`].
#[derive(Debug, Default)]
struct ImageDelta {
    bits_flipped: u64,
    baseline_changes: usize,
    bytes_changed: u64,
}

impl ImageDelta {
    fn changed(&self) -> bool {
        self.bytes_changed > 0
    }
}

/// Applies column patches to one validated same/different image in memory.
///
/// `fault_start` maps the image's local fault rows into the patches'
/// global fault order (0 for a whole file, the shard's `fault_start`
/// otherwise); `total_faults` is the global `n` every patch column must be
/// exactly as wide as. The header is *not* updated — see [`finalize`].
fn apply(
    image: &mut [u8],
    patches: &[SdColumnPatch],
    fault_start: usize,
    total_faults: usize,
) -> Result<ImageDelta, SddError> {
    let header = *SddbReader::open(&*image)?.header();
    if header.kind != DictionaryKind::SameDifferent {
        return Err(SddError::invalid(format!(
            "column patching is only defined for same-different dictionaries, \
             found a {} dictionary",
            header.kind.name()
        )));
    }
    let (k, n, m) = (header.tests, header.faults, header.outputs);
    let baseline_bytes = checked_mul(m.div_ceil(64), 8, "baseline row length")?;
    let baselines_start = checked_mul(k, 4, "baseline class table")?;
    let index_start = checked_add(
        baselines_start,
        checked_mul(k, baseline_bytes, "baseline table")?,
        "signature index offset",
    )?;
    let row_bytes = checked_mul(k.div_ceil(64), 8, "signature row length")?;
    // Row offsets come from the stored index, not arithmetic, mirroring the
    // reader: the same entries `SddbReader::signature` trusts.
    let payload_len = image.len() - HEADER_LEN;
    let mut offsets = Vec::with_capacity(n);
    for fault in 0..n {
        let at = checked_add(
            index_start,
            checked_mul(fault, 8, "signature index entry")?,
            "signature index entry",
        )?;
        let raw = u64::from_le_bytes(
            image[HEADER_LEN + at..HEADER_LEN + at + 8]
                .try_into()
                .unwrap(),
        );
        let offset = usize::try_from(raw)
            .map_err(|_| SddError::invalid(format!("row offset {raw} exceeds usize")))?;
        if checked_add(offset, row_bytes, "signature row end")? > payload_len {
            return Err(SddError::Truncated {
                context: "signature row",
                expected: offset + row_bytes,
                actual: payload_len,
            });
        }
        offsets.push(HEADER_LEN + offset);
    }
    let mut delta = ImageDelta::default();
    for patch in patches {
        if patch.test >= k {
            return Err(SddError::invalid(format!(
                "patch test {} out of range ({k} tests)",
                patch.test
            )));
        }
        if patch.baseline.len() != m {
            return Err(SddError::WidthMismatch {
                context: "patch baseline",
                expected: m,
                actual: patch.baseline.len(),
            });
        }
        if patch.column.len() != total_faults {
            return Err(SddError::WidthMismatch {
                context: "patch signature column",
                expected: total_faults,
                actual: patch.column.len(),
            });
        }
        // Baseline class (u32 at 4·t) and baseline vector.
        let mut meta_changed = false;
        let class_at = HEADER_LEN + 4 * patch.test;
        let new_class = patch.baseline_class.to_le_bytes();
        if image[class_at..class_at + 4] != new_class {
            image[class_at..class_at + 4].copy_from_slice(&new_class);
            meta_changed = true;
            delta.bytes_changed += 4;
        }
        let baseline_at = HEADER_LEN + baselines_start + patch.test * baseline_bytes;
        for (word_index, word) in patch.baseline.as_words().enumerate() {
            let at = baseline_at + word_index * 8;
            let new = word.to_le_bytes();
            if image[at..at + 8] != new {
                image[at..at + 8].copy_from_slice(&new);
                meta_changed = true;
                delta.bytes_changed += 8;
            }
        }
        if meta_changed {
            delta.baseline_changes += 1;
        }
        // Bit t of every local fault's signature row. In the little-endian
        // word layout, bit t of a row lives at byte t/8, mask 1 << (t%8).
        let (byte, mask) = (patch.test / 8, 1u8 << (patch.test % 8));
        for (fault, &row) in offsets.iter().enumerate() {
            let desired = patch.column.bit(fault_start + fault);
            let current = image[row + byte] & mask != 0;
            if desired != current {
                image[row + byte] ^= mask;
                delta.bits_flipped += 1;
                delta.bytes_changed += 1;
            }
        }
    }
    Ok(delta)
}

/// Recomputes a patched image's payload checksum, bumps its patch
/// generation (saturating at `u32::MAX`), and rewrites the header.
/// Returns the new generation.
fn finalize(image: &mut [u8]) -> Result<u32, SddError> {
    let mut header = Header::decode(image)?;
    header.payload_checksum = format::fnv1a64(&image[HEADER_LEN..]);
    header.patched = header.patched.saturating_add(1);
    image[..HEADER_LEN].copy_from_slice(&header.encode());
    Ok(header.patched)
}

/// The generation-suffixed shard name a rewrite commits under: the base
/// name with any existing `.p<N>` generation suffix replaced by the new
/// one, e.g. `dict.000.sddb → dict.000.p1.sddb → dict.000.p2.sddb`.
fn generation_name(file: &str, generation: u32) -> String {
    let base = file.strip_suffix(".sddb").unwrap_or(file);
    let base = match base.rfind(".p") {
        Some(pos)
            if pos + 2 < base.len() && base[pos + 2..].chars().all(|c| c.is_ascii_digit()) =>
        {
            &base[..pos]
        }
        _ => base,
    };
    format!("{base}.p{generation}.sddb")
}

/// Patches a whole same/different `.sddb` file in place (atomically: the
/// patched image is staged and renamed over the original). A patch that
/// changes no stored byte leaves the file untouched, generation included.
///
/// # Errors
///
/// Every [`SddbReader::open`] error for a corrupt file, plus
/// [`SddError::Invalid`] / [`SddError::WidthMismatch`] for patches that do
/// not fit the artifact, and [`SddError::Io`] on write failure.
pub fn patch_file(
    path: impl AsRef<Path>,
    patches: &[SdColumnPatch],
) -> Result<PatchStats, SddError> {
    let path = path.as_ref();
    let mut image = read_dictionary_file(path)?;
    let faults = Header::decode(&image)?.faults;
    let delta = apply(&mut image, patches, 0, faults)?;
    let mut stats = PatchStats {
        tests_patched: patches.len(),
        bits_flipped: delta.bits_flipped,
        baseline_changes: delta.baseline_changes,
        files_rewritten: 0,
        files_total: 1,
        generation: Header::decode(&image)?.patched,
    };
    if delta.changed() {
        stats.generation = finalize(&mut image)?;
        stats.files_rewritten = 1;
        atomic_write(path, &image)?;
    }
    Ok(stats)
}

/// Patches a sharded same/different set: every shard whose bytes change is
/// rewritten under a fresh generation-suffixed name, the manifest is
/// committed **last** (atomically), and only then are the replaced shard
/// files best-effort deleted. A crash before the manifest commit leaves
/// the old set fully loadable (new-generation files are invisible to it);
/// a crash after leaves the new set fully loadable. Shards the ECO did not
/// touch — no flipped bits, no baseline change — keep their files verbatim.
///
/// # Errors
///
/// As [`patch_file`], plus every [`ShardedReader::open`] manifest error.
pub fn patch_sharded(
    manifest_path: impl AsRef<Path>,
    patches: &[SdColumnPatch],
) -> Result<PatchStats, SddError> {
    let manifest_path = manifest_path.as_ref();
    let reader = ShardedReader::open(manifest_path)?;
    let manifest = reader.manifest();
    if manifest.kind != DictionaryKind::SameDifferent {
        return Err(SddError::invalid(format!(
            "column patching is only defined for same-different dictionaries, \
             found a {} manifest",
            manifest.kind.name()
        )));
    }
    let dir = reader.dir().to_path_buf();
    let mut stats = PatchStats {
        tests_patched: patches.len(),
        files_total: manifest.shards.len(),
        ..PatchStats::default()
    };
    let mut records = Vec::with_capacity(manifest.shards.len());
    let mut replaced = Vec::new();
    for record in &manifest.shards {
        let path = dir.join(&record.file);
        let mut image = read_dictionary_file(&path)?;
        let delta = apply(&mut image, patches, record.fault_start, manifest.faults)?;
        stats.bits_flipped += delta.bits_flipped;
        // Baselines are duplicated in every shard, so the first shard's
        // delta reports the baseline change count exactly once.
        if record.fault_start == 0 {
            stats.baseline_changes = delta.baseline_changes;
        }
        if !delta.changed() {
            records.push(record.clone());
            continue;
        }
        let generation = finalize(&mut image)?;
        let file = generation_name(&record.file, generation);
        atomic_write(dir.join(&file), &image)?;
        let header = Header::decode(&image)?;
        records.push(ShardRecord {
            file,
            payload_checksum: header.payload_checksum,
            ..record.clone()
        });
        replaced.push(path);
        stats.files_rewritten += 1;
        stats.generation = stats.generation.max(generation);
    }
    if stats.files_rewritten == 0 {
        return Ok(stats);
    }
    let new_manifest = ShardManifest {
        shards: records,
        ..manifest.clone()
    };
    // Round-trip before commit so a just-patched manifest is guaranteed
    // readable, exactly like `write_sharded`.
    let encoded = new_manifest.encode()?;
    ShardManifest::decode(&encoded)?;
    atomic_write(manifest_path, &encoded)?;
    for old in replaced {
        let _ = fs::remove_file(old);
    }
    Ok(stats)
}

/// Patches either artifact form at `path`, sniffing the magic bytes: a
/// `.sddm` manifest routes to [`patch_sharded`], anything else to
/// [`patch_file`].
///
/// # Errors
///
/// [`SddError::Io`] when the file cannot be opened, otherwise as the
/// routed function.
pub fn patch_artifact(
    path: impl AsRef<Path>,
    patches: &[SdColumnPatch],
) -> Result<PatchStats, SddError> {
    let path = path.as_ref();
    let mut magic = [0u8; 4];
    let mut file =
        fs::File::open(path).map_err(|e| SddError::io(path.display().to_string(), &e))?;
    let mut filled = 0;
    while filled < magic.len() {
        match file.read(&mut magic[filled..]) {
            Ok(0) => break,
            Ok(read) => filled += read,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SddError::io(path.display().to_string(), &e)),
        }
    }
    drop(file);
    if crate::is_manifest(&magic[..filled]) {
        patch_sharded(path, patches)
    } else {
        patch_file(path, patches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        decode, encode, load, save, strip_patch_provenance, write_sharded, StoredDictionary,
    };
    use sdd_core::SameDifferentDictionary;

    fn dictionaries() -> (SameDifferentDictionary, SameDifferentDictionary) {
        let matrix = sdd_core::example::paper_example();
        (
            SameDifferentDictionary::build(&matrix, &[2, 1]),
            SameDifferentDictionary::build(&matrix, &[2, 0]),
        )
    }

    /// The column patch that turns `from` into `to` at `test`.
    fn column_patch(to: &SameDifferentDictionary, test: usize) -> SdColumnPatch {
        let mut column = BitVec::zeros(to.fault_count());
        for fault in 0..to.fault_count() {
            column.set(fault, to.signature(fault).bit(test));
        }
        SdColumnPatch {
            test,
            baseline_class: to.baseline_classes()[test],
            baseline: to.baseline(test).clone(),
            column,
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sdd-patch-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn a_whole_file_patch_is_bit_identical_to_the_target() {
        let (old, new) = dictionaries();
        let dir = temp_dir("whole");
        let path = dir.join("dict.sddb");
        save(&path, &StoredDictionary::SameDifferent(old.clone())).unwrap();
        let stats = patch_file(&path, &[column_patch(&new, 1)]).unwrap();
        assert!(stats.changed());
        assert_eq!(stats.generation, 1);
        assert!(stats.bits_flipped > 0);
        assert_eq!(stats.baseline_changes, 1);
        let patched = std::fs::read(&path).unwrap();
        assert_eq!(Header::decode(&patched).unwrap().patched, 1);
        // Identical to a from-scratch encode once provenance is stripped.
        let rebuilt = encode(&StoredDictionary::SameDifferent(new.clone())).unwrap();
        assert_eq!(
            strip_patch_provenance(&patched).unwrap(),
            strip_patch_provenance(&rebuilt).unwrap()
        );
        assert_eq!(load(&path).unwrap(), StoredDictionary::SameDifferent(new));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_no_op_patch_leaves_the_file_untouched() {
        let (old, _) = dictionaries();
        let dir = temp_dir("noop");
        let path = dir.join("dict.sddb");
        save(&path, &StoredDictionary::SameDifferent(old.clone())).unwrap();
        let before = std::fs::read(&path).unwrap();
        let stats = patch_file(&path, &[column_patch(&old, 0)]).unwrap();
        assert!(!stats.changed());
        assert_eq!(stats.generation, 0);
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_sharded_patch_rewrites_generation_named_shards_and_commits_the_manifest_last() {
        let (old, new) = dictionaries();
        let dir = temp_dir("sharded");
        let path = dir.join("dict.sddm");
        write_sharded(
            &path,
            &StoredDictionary::SameDifferent(old.clone()),
            &[0..2, 2..4],
            None,
        )
        .unwrap();
        let stats = patch_artifact(&path, &[column_patch(&new, 1)]).unwrap();
        // The baseline changed, so *every* shard is rewritten.
        assert_eq!(stats.files_rewritten, 2);
        assert_eq!(stats.baseline_changes, 1);
        assert_eq!(stats.generation, 1);
        let reader = ShardedReader::open(&path).unwrap();
        assert_eq!(reader.manifest().shards[0].file, "dict.000.p1.sddb");
        assert_eq!(reader.manifest().shards[1].file, "dict.001.p1.sddb");
        assert!(!dir.join("dict.000.sddb").exists(), "old shard deleted");
        // Reassembling the shards yields exactly the target dictionary.
        let (StoredDictionary::SameDifferent(s0), StoredDictionary::SameDifferent(s1)) =
            (reader.load_shard(0).unwrap(), reader.load_shard(1).unwrap())
        else {
            panic!("kind preserved");
        };
        let mut signatures: Vec<_> = (0..2).map(|f| s0.signature(f).clone()).collect();
        signatures.extend((0..2).map(|f| s1.signature(f).clone()));
        let reassembled = SameDifferentDictionary::from_parts(
            signatures,
            (0..2).map(|t| s0.baseline(t).clone()).collect(),
            s0.baseline_classes().to_vec(),
            new.sizes().outputs as usize,
        )
        .unwrap();
        assert_eq!(reassembled, new);
        // A second patch back to the original advances the generation.
        let stats = patch_artifact(&path, &[column_patch(&old, 1)]).unwrap();
        assert_eq!(stats.generation, 2);
        let reader = ShardedReader::open(&path).unwrap();
        assert_eq!(reader.manifest().shards[0].file, "dict.000.p2.sddb");
        assert!(!dir.join("dict.000.p1.sddb").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_cone_local_eco_keeps_untouched_shards_verbatim() {
        // Flip one signature bit of fault 3 only: shard 0 (faults 0..2) has
        // no byte to change and must keep its file, name and all.
        let (old, _) = dictionaries();
        let dir = temp_dir("skip");
        let path = dir.join("dict.sddm");
        write_sharded(
            &path,
            &StoredDictionary::SameDifferent(old.clone()),
            &[0..2, 2..4],
            None,
        )
        .unwrap();
        let mut patch = column_patch(&old, 0);
        let flipped = !patch.column.bit(3);
        patch.column.set(3, flipped);
        let stats = patch_sharded(&path, &[patch]).unwrap();
        assert_eq!(stats.files_rewritten, 1);
        assert_eq!(stats.bits_flipped, 1);
        assert_eq!(stats.baseline_changes, 0);
        let reader = ShardedReader::open(&path).unwrap();
        assert_eq!(reader.manifest().shards[0].file, "dict.000.sddb");
        assert_eq!(reader.manifest().shards[1].file, "dict.001.p1.sddb");
        reader.load_shard(0).unwrap();
        reader.load_shard(1).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn misfit_patches_and_kinds_are_typed_errors() {
        let (old, _) = dictionaries();
        let dir = temp_dir("errors");
        let sd = dir.join("dict.sddb");
        save(&sd, &StoredDictionary::SameDifferent(old.clone())).unwrap();
        let mut patch = column_patch(&old, 0);
        patch.test = 9;
        assert!(matches!(
            patch_file(&sd, &[patch.clone()]),
            Err(SddError::Invalid { .. })
        ));
        patch.test = 0;
        patch.column = BitVec::zeros(1);
        assert!(matches!(
            patch_file(&sd, &[patch]),
            Err(SddError::WidthMismatch { .. })
        ));
        let pf = dir.join("pf.sddb");
        let matrix = sdd_core::example::paper_example();
        save(
            &pf,
            &StoredDictionary::PassFail(sdd_core::PassFailDictionary::build(&matrix)),
        )
        .unwrap();
        let err = patch_file(&pf, &[column_patch(&old, 0)]).unwrap_err();
        assert!(err.to_string().contains("same-different"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_names_replace_rather_than_stack() {
        assert_eq!(generation_name("d.000.sddb", 1), "d.000.p1.sddb");
        assert_eq!(generation_name("d.000.p1.sddb", 2), "d.000.p2.sddb");
        assert_eq!(generation_name("d.000.p12.sddb", 13), "d.000.p13.sddb");
        // A non-numeric ".p" suffix is part of the base name, not a
        // generation marker.
        assert_eq!(generation_name("d.px.sddb", 1), "d.px.p1.sddb");
    }

    #[test]
    fn patched_files_round_trip_through_decode() {
        let (old, new) = dictionaries();
        let dir = temp_dir("roundtrip");
        let path = dir.join("dict.sddb");
        save(&path, &StoredDictionary::SameDifferent(old.clone())).unwrap();
        patch_file(&path, &[column_patch(&new, 1)]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // The patched checksum is valid and the image decodes cleanly.
        assert_eq!(
            decode(&bytes).unwrap(),
            StoredDictionary::SameDifferent(new)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
