//! The `.sddb` wire format: header layout, checksums, and byte-level
//! primitives shared by the writer and the reader.
//!
//! All multi-byte integers are little-endian. Bit rows are packed 64 bits
//! per `u64` word exactly as [`BitVec::as_words`] emits them, so a payload
//! slice drops straight into an `sdd-logic` bit vector without per-bit work.
//!
//! ```text
//! Header (64 bytes):
//!   off  size  field
//!     0     4  magic "SDDB"
//!     4     2  format version (currently 1)
//!     6     2  dictionary kind (1 pass/fail, 2 same/different, 3 full)
//!     8     8  tests k
//!    16     8  faults n
//!    24     8  outputs m
//!    32     8  payload length in bytes
//!    40     8  payload checksum (FNV-1a 64 over the payload bytes)
//!    48     4  patch generation (0 = built from scratch, incremented by
//!              every in-place ECO patch; provenance only, never validated)
//!    52     4  reserved (written as 0)
//!    56     8  header checksum (FNV-1a 64 over header bytes 0..56)
//! ```

use sdd_logic::{BitVec, SddError};

use crate::DictionaryKind;

/// The four magic bytes every binary dictionary file starts with.
pub const MAGIC: [u8; 4] = *b"SDDB";

/// The newest format version this build reads and the only one it writes.
pub const VERSION: u16 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 64;

/// FNV-1a 64-bit checksum — dependency-free, byte-order independent, and
/// strong enough to catch the truncation/bit-rot failures a dictionary
/// artifact meets in practice (it is an integrity check, not a MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes.iter().fold(OFFSET, |hash, &byte| {
        (hash ^ u64::from(byte)).wrapping_mul(PRIME)
    })
}

/// The decoded fixed-size header of a `.sddb` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Which dictionary kind the payload encodes.
    pub kind: DictionaryKind,
    /// Number of tests `k`.
    pub tests: usize,
    /// Number of faults `n`.
    pub faults: usize,
    /// Number of observed outputs `m`.
    pub outputs: usize,
    /// Payload length in bytes (everything after the header).
    pub payload_len: usize,
    /// FNV-1a 64 checksum of the payload bytes.
    pub payload_checksum: u64,
    /// Patch generation: 0 for an artifact built from scratch, incremented
    /// by every in-place ECO patch. Provenance only — readers never gate on
    /// it, and files written before the field existed decode as 0.
    pub patched: u32,
}

impl Header {
    /// Serializes the header, computing both checksums.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..6].copy_from_slice(&VERSION.to_le_bytes());
        out[6..8].copy_from_slice(&(self.kind as u16).to_le_bytes());
        out[8..16].copy_from_slice(&(self.tests as u64).to_le_bytes());
        out[16..24].copy_from_slice(&(self.faults as u64).to_le_bytes());
        out[24..32].copy_from_slice(&(self.outputs as u64).to_le_bytes());
        out[32..40].copy_from_slice(&(self.payload_len as u64).to_le_bytes());
        out[40..48].copy_from_slice(&self.payload_checksum.to_le_bytes());
        out[48..52].copy_from_slice(&self.patched.to_le_bytes());
        // Bytes 52..56 reserved.
        let checksum = fnv1a64(&out[..56]);
        out[56..64].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses and fully validates a header: magic, header checksum, version,
    /// kind, and that every `u64` dimension fits in `usize`.
    ///
    /// # Errors
    ///
    /// [`SddError::Truncated`] when fewer than [`HEADER_LEN`] bytes are
    /// available, [`SddError::Invalid`] for a bad magic or kind,
    /// [`SddError::ChecksumMismatch`] for a corrupted header, and
    /// [`SddError::UnsupportedVersion`] for a newer format.
    pub fn decode(bytes: &[u8]) -> Result<Self, SddError> {
        if bytes.len() < HEADER_LEN {
            return Err(SddError::Truncated {
                context: "store header",
                expected: HEADER_LEN,
                actual: bytes.len(),
            });
        }
        if bytes[0..4] != MAGIC {
            return Err(SddError::invalid(format!(
                "bad magic {:?}: not a binary dictionary file",
                &bytes[0..4]
            )));
        }
        let stored = u64::from_le_bytes(bytes[56..64].try_into().unwrap());
        let computed = fnv1a64(&bytes[..56]);
        if stored != computed {
            return Err(SddError::ChecksumMismatch {
                context: "store header",
                stored,
                computed,
            });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != VERSION {
            return Err(SddError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let kind = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        let kind = DictionaryKind::from_tag(kind)
            .ok_or_else(|| SddError::invalid(format!("unknown dictionary kind tag {kind}")))?;
        let dim = |range: std::ops::Range<usize>, what: &str| -> Result<usize, SddError> {
            let v = u64::from_le_bytes(bytes[range].try_into().unwrap());
            usize::try_from(v)
                .map_err(|_| SddError::invalid(format!("{what} {v} exceeds this platform's usize")))
        };
        Ok(Self {
            kind,
            tests: dim(8..16, "test count")?,
            faults: dim(16..24, "fault count")?,
            outputs: dim(24..32, "output count")?,
            payload_len: dim(32..40, "payload length")?,
            payload_checksum: u64::from_le_bytes(bytes[40..48].try_into().unwrap()),
            patched: u32::from_le_bytes(bytes[48..52].try_into().unwrap()),
        })
    }
}

/// Byte range of the patch-generation counter within the header.
pub const PATCHED_RANGE: std::ops::Range<usize> = 48..52;
/// Byte range of the header checksum within the header.
pub const HEADER_CHECKSUM_RANGE: std::ops::Range<usize> = 56..64;

/// Returns a copy of a `.sddb` image with the patch-generation counter
/// zeroed and the header checksum recomputed: the canonical form used to
/// compare a patched artifact against a from-scratch rebuild bit-for-bit.
///
/// # Errors
///
/// [`SddError::Truncated`] when the image is shorter than a header.
pub fn strip_patch_provenance(image: &[u8]) -> Result<Vec<u8>, SddError> {
    if image.len() < HEADER_LEN {
        return Err(SddError::Truncated {
            context: "store header",
            expected: HEADER_LEN,
            actual: image.len(),
        });
    }
    let mut out = image.to_vec();
    out[PATCHED_RANGE].fill(0);
    let checksum = fnv1a64(&out[..56]);
    out[HEADER_CHECKSUM_RANGE].copy_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// `a * b` with overflow reported as [`SddError::Invalid`] — every offset
/// computed from header-declared dimensions goes through this (or
/// [`checked_add`]) so a crafted header cannot wrap an offset in release
/// builds or panic in debug builds.
pub(crate) fn checked_mul(a: usize, b: usize, what: &'static str) -> Result<usize, SddError> {
    a.checked_mul(b)
        .ok_or_else(|| SddError::invalid(format!("{what}: {a} * {b} overflows usize")))
}

/// `a + b` with overflow reported as [`SddError::Invalid`].
pub(crate) fn checked_add(a: usize, b: usize, what: &'static str) -> Result<usize, SddError> {
    a.checked_add(b)
        .ok_or_else(|| SddError::invalid(format!("{what}: {a} + {b} overflows usize")))
}

/// A little-endian reading cursor over a payload slice that turns every
/// out-of-bounds read into a typed [`SddError::Truncated`].
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Self {
            bytes,
            pos: 0,
            context,
        }
    }

    pub(crate) fn seek(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Bytes left between the cursor and the end of the slice — the upper
    /// bound for any count-driven allocation.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], SddError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(SddError::Truncated {
                context: self.context,
                expected: self.pos.saturating_add(len),
                actual: self.bytes.len(),
            }),
        }
    }

    /// Reads exactly `len` raw bytes.
    pub(crate) fn bytes_exact(&mut self, len: usize) -> Result<&'a [u8], SddError> {
        self.take(len)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SddError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SddError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bit row of `bits` logical bits stored as packed words.
    pub(crate) fn bit_row(&mut self, bits: usize) -> Result<BitVec, SddError> {
        let words = bits.div_ceil(64);
        let raw = self.take(checked_mul(words, 8, "bit row length")?)?;
        let words: Vec<u64> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        BitVec::from_words(words, bits)
    }
}

/// Little-endian writing helpers for payload assembly.
pub(crate) fn push_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

pub(crate) fn push_bit_row(out: &mut Vec<u8>, row: &BitVec) {
    for word in row.as_words() {
        push_u64(out, word);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn header_round_trips() {
        let h = Header {
            kind: DictionaryKind::SameDifferent,
            tests: 12,
            faults: 345,
            outputs: 7,
            payload_len: 999,
            payload_checksum: 0xdead_beef,
            patched: 3,
        };
        let bytes = h.encode();
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn patch_generation_is_backward_compatible_and_strippable() {
        let h = Header {
            kind: DictionaryKind::SameDifferent,
            tests: 2,
            faults: 3,
            outputs: 4,
            payload_len: 0,
            payload_checksum: 0,
            patched: 0,
        };
        // A pre-field file (reserved bytes all zero) decodes as patched = 0.
        assert_eq!(Header::decode(&h.encode()).unwrap().patched, 0);
        // Stripping provenance from a patched image recovers the unpatched
        // bytes exactly, header checksum included.
        let patched = Header { patched: 7, ..h };
        assert_eq!(
            strip_patch_provenance(&patched.encode()).unwrap(),
            h.encode().to_vec()
        );
        assert!(matches!(
            strip_patch_provenance(&[0u8; 10]),
            Err(SddError::Truncated { .. })
        ));
    }

    #[test]
    fn header_rejects_each_failure_mode_with_a_typed_error() {
        let h = Header {
            kind: DictionaryKind::PassFail,
            tests: 1,
            faults: 1,
            outputs: 1,
            payload_len: 8,
            payload_checksum: 0,
            patched: 0,
        };
        let good = h.encode();
        // Truncation.
        assert!(matches!(
            Header::decode(&good[..10]),
            Err(SddError::Truncated { .. })
        ));
        // Bad magic.
        let mut bad = good;
        bad[0] = b'X';
        assert!(matches!(
            Header::decode(&bad),
            Err(SddError::Invalid { .. })
        ));
        // Flipped interior byte: header checksum catches it.
        let mut bad = h.encode();
        bad[9] ^= 0xFF;
        assert!(matches!(
            Header::decode(&bad),
            Err(SddError::ChecksumMismatch { .. })
        ));
        // Future version (with a recomputed header checksum).
        let mut bad = h.encode();
        bad[4..6].copy_from_slice(&2u16.to_le_bytes());
        let checksum = fnv1a64(&bad[..56]);
        bad[56..64].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            Header::decode(&bad),
            Err(SddError::UnsupportedVersion {
                found: 2,
                supported: VERSION
            })
        ));
        // Unknown kind tag (with a recomputed header checksum).
        let mut bad = h.encode();
        bad[6..8].copy_from_slice(&9u16.to_le_bytes());
        let checksum = fnv1a64(&bad[..56]);
        bad[56..64].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            Header::decode(&bad),
            Err(SddError::Invalid { .. })
        ));
    }

    #[test]
    fn cursor_reports_truncation_with_context() {
        let mut c = Cursor::new(&[1, 2, 3], "row index");
        assert!(c.u32().is_err());
        let e = Cursor::new(&[], "row index").u64().unwrap_err();
        assert!(matches!(
            e,
            SddError::Truncated {
                context: "row index",
                ..
            }
        ));
    }
}
