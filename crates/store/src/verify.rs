//! Integrity verification and repair for on-disk dictionary artifacts —
//! the `sdd verify` entry point.
//!
//! A sharded dictionary set rots one file at a time: a shard payload flips
//! a bit, a shard file is deleted, a stale `*.tmp` from an interrupted
//! build lingers next to the manifest. [`verify_file`] scans an artifact
//! (whole `.sddb`, `.sddm` manifest, or v1 text) and reports per-shard
//! health without loading anything into a registry;
//! [`quarantine_bad_shards`] renames corrupt shard files aside (suffix
//! [`QUARANTINE_SUFFIX`]) so a serving box degrades to a clean
//! `PARTIAL`-verdict state — a missing shard is honest, a half-corrupt one
//! is a liability — instead of failing every diagnosis that touches the
//! bad file.

use std::path::{Path, PathBuf};

use sdd_logic::SddError;

use crate::atomic::temp_sibling;
use crate::mmap::{read_dictionary_bytes, MmapMode};
use crate::{DictionaryKind, SddbReader, ShardedReader};

/// Suffix appended to a shard file when [`quarantine_bad_shards`] moves it
/// out of the serving path.
pub const QUARANTINE_SUFFIX: &str = ".quarantined";

/// Health of one shard file as seen by [`verify_file`].
#[derive(Debug)]
pub struct ShardHealth {
    /// Shard index within the manifest.
    pub index: usize,
    /// Shard file name, as recorded in the manifest.
    pub file: String,
    /// Full path the shard resolves to.
    pub path: PathBuf,
    /// Faults the shard covers.
    pub faults: usize,
    /// `None` when the shard read, checksummed, and decoded cleanly;
    /// otherwise the typed failure (missing file, checksum mismatch,
    /// truncation, dimension skew, ...).
    pub error: Option<SddError>,
}

/// What [`verify_file`] found.
#[derive(Debug)]
pub struct VerifyReport {
    /// The artifact that was scanned.
    pub path: PathBuf,
    /// Dictionary kind recorded in the artifact.
    pub kind: DictionaryKind,
    /// Total faults the artifact declares.
    pub faults: usize,
    /// Per-shard health, manifest order. Empty for whole-file artifacts.
    pub shards: Vec<ShardHealth>,
    /// Stale `*.tmp` staging files from interrupted crash-safe writes,
    /// found next to the artifact or its shards. Inert (they never shadow
    /// a target) but worth surfacing: each one marks a write that died.
    pub stale_temps: Vec<PathBuf>,
}

impl VerifyReport {
    /// True when every shard (and the artifact itself) verified cleanly.
    pub fn healthy(&self) -> bool {
        self.shards.iter().all(|s| s.error.is_none())
    }

    /// Faults covered by healthy shards (equals [`faults`](Self::faults)
    /// for a healthy set or a whole file).
    pub fn covered_faults(&self) -> usize {
        if self.shards.is_empty() {
            return self.faults;
        }
        self.shards
            .iter()
            .filter(|s| s.error.is_none())
            .map(|s| s.faults)
            .sum()
    }

    /// The shards that failed verification.
    pub fn bad_shards(&self) -> impl Iterator<Item = &ShardHealth> {
        self.shards.iter().filter(|s| s.error.is_some())
    }
}

/// Scans a dictionary artifact and reports its health.
///
/// * `.sddm` manifest: the manifest itself must decode (its own checksums
///   gate that); every shard is then read, cross-checked against the
///   manifest record (payload length + checksum, dimensions), and fully
///   decoded. Per-shard failures land in the report, not in `Err` — a
///   half-rotten set is a *degraded* artifact, not an unreadable one.
/// * whole `.sddb` (or v1 text): the file must decode end to end; any
///   corruption is the returned error.
///
/// # Errors
///
/// [`SddError::Io`] when the artifact cannot be read, plus every decode
/// error of the artifact itself (shard failures are reported, not raised).
pub fn verify_file(path: impl AsRef<Path>) -> Result<VerifyReport, SddError> {
    verify_file_with(path, MmapMode::Auto)
}

/// [`verify_file`] with an explicit byte-ownership mode. Under a mapped
/// mode (the [`MmapMode::Auto`] default on Linux) binary artifacts are
/// never buffered *or* decoded: the payload is checksummed straight out of
/// the page cache and its structure bounds-walked one row at a time
/// ([`SddbReader::validate_structure`]), so peak heap is one row and a
/// dictionary larger than RAM verifies fine. The typed error for each
/// corruption mode is identical in every mode.
///
/// # Errors
///
/// As [`verify_file`].
pub fn verify_file_with(path: impl AsRef<Path>, mode: MmapMode) -> Result<VerifyReport, SddError> {
    let path = path.as_ref();
    let bytes = read_dictionary_bytes(path, mode)?;
    let mut stale_temps = Vec::new();
    let mut note_temp = |candidate: PathBuf| {
        if candidate.exists() {
            stale_temps.push(candidate);
        }
    };
    note_temp(temp_sibling(path));
    if crate::is_manifest(&bytes) {
        let reader = ShardedReader::open_with(path, mode)?;
        let manifest = reader.manifest();
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for (index, record) in manifest.shards.iter().enumerate() {
            let shard_path = reader.dir().join(&record.file);
            note_temp(temp_sibling(&shard_path));
            shards.push(ShardHealth {
                index,
                file: record.file.clone(),
                path: shard_path,
                faults: record.fault_count,
                error: reader.check_shard(index).err(),
            });
        }
        return Ok(VerifyReport {
            path: path.to_path_buf(),
            kind: manifest.kind,
            faults: manifest.faults,
            shards,
            stale_temps,
        });
    }
    let (kind, faults) = if crate::is_binary(&bytes) {
        // Checksum + structural walk, never a full decode: verification
        // heap stays O(one row) however large the file is.
        let reader = SddbReader::open(&bytes)?;
        reader.validate_structure()?;
        (reader.kind(), reader.faults())
    } else {
        let dictionary = crate::read_same_different_auto(&bytes)?;
        (DictionaryKind::SameDifferent, dictionary.fault_count())
    };
    Ok(VerifyReport {
        path: path.to_path_buf(),
        kind,
        faults,
        shards: Vec::new(),
        stale_temps,
    })
}

/// Renames every failed shard in `report` aside by appending
/// [`QUARANTINE_SUFFIX`], so later loads see a clean *missing* shard (an
/// honest `Io` failure the serving layer degrades over) instead of
/// re-reading corrupt bytes on every request. Shards whose failure is that
/// the file is already gone are skipped. Returns the quarantined paths.
///
/// # Errors
///
/// [`SddError::Io`] when a rename fails; earlier renames stay in effect.
pub fn quarantine_bad_shards(report: &VerifyReport) -> Result<Vec<PathBuf>, SddError> {
    let mut moved = Vec::new();
    for shard in report.bad_shards() {
        if !shard.path.exists() {
            continue; // already missing: nothing to move aside
        }
        let mut name = shard.path.file_name().unwrap_or_default().to_os_string();
        name.push(QUARANTINE_SUFFIX);
        let quarantined = shard.path.with_file_name(name);
        std::fs::rename(&shard.path, &quarantined).map_err(|e| {
            SddError::io(
                format!(
                    "quarantine {} -> {}",
                    shard.path.display(),
                    quarantined.display()
                ),
                &e,
            )
        })?;
        moved.push(quarantined);
    }
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_sharded, StoredDictionary};
    use sdd_core::PassFailDictionary;

    fn fixture() -> StoredDictionary {
        StoredDictionary::PassFail(PassFailDictionary::build(
            &sdd_core::example::paper_example(),
        ))
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdd-verify-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn healthy_set_verifies_clean() {
        let dir = scratch_dir("clean");
        let manifest = dir.join("paper.sddm");
        write_sharded(&manifest, &fixture(), &[0..2, 2..4], None).unwrap();
        let report = verify_file(&manifest).unwrap();
        assert!(report.healthy());
        assert_eq!(report.covered_faults(), 4);
        assert_eq!(report.shards.len(), 2);
        assert!(report.stale_temps.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_missing_shards_are_reported_then_quarantined() {
        let dir = scratch_dir("rot");
        let manifest = dir.join("paper.sddm");
        let written = write_sharded(&manifest, &fixture(), &[0..2, 2..4], None).unwrap();
        // Flip a payload bit in shard 0, delete shard 1 entirely.
        let shard0 = dir.join(&written.shards[0].file);
        let mut bytes = std::fs::read(&shard0).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&shard0, &bytes).unwrap();
        std::fs::remove_file(dir.join(&written.shards[1].file)).unwrap();
        // And drop a stale staging file next to the manifest.
        std::fs::write(temp_sibling(&manifest), b"torn").unwrap();

        let report = verify_file(&manifest).unwrap();
        assert!(!report.healthy());
        assert_eq!(report.covered_faults(), 0);
        assert!(matches!(
            report.shards[0].error,
            Some(SddError::ChecksumMismatch { .. })
        ));
        assert!(matches!(report.shards[1].error, Some(SddError::Io { .. })));
        assert_eq!(report.stale_temps.len(), 1);

        // Quarantine moves the corrupt file aside, skips the missing one.
        let moved = quarantine_bad_shards(&report).unwrap();
        assert_eq!(moved.len(), 1);
        assert!(!shard0.exists());
        assert!(moved[0].to_string_lossy().ends_with(QUARANTINE_SUFFIX));
        // A re-verify now sees both as missing (honest Io), not corrupt.
        let report = verify_file(&manifest).unwrap();
        assert!(report
            .bad_shards()
            .all(|s| matches!(s.error, Some(SddError::Io { .. }))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn whole_file_verifies_or_errors() {
        let dir = scratch_dir("whole");
        let path = dir.join("paper.sddb");
        crate::save(&path, &fixture()).unwrap();
        let report = verify_file(&path).unwrap();
        assert!(report.healthy());
        assert_eq!(report.faults, 4);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            verify_file(&path),
            Err(SddError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
