//! Zero-copy, read-only byte images of on-disk dictionaries — the
//! ownership seam between "a `Vec<u8>` we read" and "a kernel mapping we
//! borrow".
//!
//! [`DictBytes`] is what every store reader is generic over: an owned heap
//! buffer ([`DictBytes::Owned`]) or a [`MappedFile`] backed by `mmap`
//! ([`DictBytes::Mapped`]). Mapped images cost no heap and no copy — the
//! page cache *is* the buffer — so a multi-gigabyte `.sddb` can be opened,
//! checksummed, and row-indexed without ever owning its payload, and
//! "evicting" it is a single `munmap`.
//!
//! SIGBUS discipline: a mapped read past the end of the backing file kills
//! the process, so nothing here maps a binary file before the 64-byte
//! header has been read through ordinary I/O and its declared length
//! cross-checked against the real file length ([`read_dictionary_bytes`]).
//! A truncated file therefore surfaces as the same typed
//! [`SddError::Truncated`] the owned path returns — never a signal. The
//! mapping retains its [`File`] handle so long-lived holders can
//! [`revalidate`](DictBytes::revalidate) against in-place truncation
//! before touching pages again; rename-replace is always safe (the old
//! inode stays alive under the map).
//!
//! Like [`crate::format`]'s sibling in the serve layer (`src/reactor.rs`),
//! this is the **only** module in the crate allowed to contain `unsafe`
//! code (the crate root carries `#![deny(unsafe_code)]`): the unsafety is
//! confined to the `mmap`/`munmap` FFI below, declared directly against
//! the C runtime the standard library already links — no third-party
//! crates. Non-Linux targets compile the same API with
//! [`mmap_supported`] returning `false`; [`MmapMode::Auto`] then reads to
//! a `Vec` instead, so every caller stays portable.
#![allow(unsafe_code)]

use std::fs::File;
use std::io::Read;
use std::ops::Deref;
use std::path::Path;

use sdd_logic::SddError;

use crate::format::{Header, HEADER_LEN, MAGIC};

/// Is zero-copy mapping available on this target?
#[must_use]
pub const fn mmap_supported() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_SHARED: i32 = 0x01;

    // Declared against the C runtime std already links; no `libc` crate.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    /// A read-only shared mapping of the first `len` bytes of a file.
    pub struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ — no thread can write through it —
    // and the pointer is owned exclusively by this struct until Drop, so
    // sharing immutable views across threads is sound.
    unsafe impl Send for Mapping {}
    // SAFETY: as above; all access is through `&self` reads.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `file` read-only. `len` must be nonzero and
        /// no longer than the file (the caller has already fstat-checked
        /// this — that is the SIGBUS guard).
        pub fn new(file: &File, len: usize) -> io::Result<Self> {
            debug_assert!(len > 0, "zero-length mappings are rejected by the kernel");
            // SAFETY: no pointers go in (addr is the null hint); a valid
            // mapping base (or MAP_FAILED = -1) comes back, and ownership
            // of the region transfers to the Mapping.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr..ptr+len` is a live read-only mapping for as
            // long as `self` exists, and u8 has no validity requirements.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr` and `len` are exactly what mmap returned, and
            // no slice borrowed from this mapping can outlive it.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use std::fs::File;
    use std::io;

    /// Portable stub: mapping is unavailable, so construction fails with
    /// [`io::ErrorKind::Unsupported`] and callers fall back to owned reads.
    pub struct Mapping;

    impl Mapping {
        pub fn new(_file: &File, _len: usize) -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "memory mapping is not supported on this target",
            ))
        }

        pub fn as_slice(&self) -> &[u8] {
            &[]
        }
    }
}

/// A whole dictionary file mapped read-only into the address space.
///
/// The open [`File`] handle is retained so [`still_intact`]
/// (Self::still_intact) can fstat the *mapped inode* — a file truncated in
/// place shrinks under the map (touching the lost tail would SIGBUS), while
/// a rename-replace leaves the old inode full-length and safe.
#[derive(Debug)]
pub struct MappedFile {
    map: DebugMapping,
    file: File,
    len: usize,
}

/// Newtype so `MappedFile` can derive `Debug` without the raw pointer.
struct DebugMapping(sys::Mapping);

impl std::fmt::Debug for DebugMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mapping")
    }
}

impl MappedFile {
    /// Maps the whole file at `path` read-only.
    ///
    /// This is the raw mapping constructor: it fstat-checks only that the
    /// file is nonempty. Dictionary callers want [`read_dictionary_bytes`],
    /// which additionally validates a binary header's declared length
    /// against the file length *before* mapping — the SIGBUS guard.
    ///
    /// # Errors
    ///
    /// [`SddError::Io`] when the file cannot be opened, statted, or mapped
    /// (including [`std::io::ErrorKind::Unsupported`] off Linux), and
    /// [`SddError::Empty`] for a zero-length file (the kernel rejects
    /// empty mappings).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SddError> {
        let path = path.as_ref();
        let context = || path.display().to_string();
        let file = File::open(path).map_err(|e| SddError::io(context(), &e))?;
        let len = file
            .metadata()
            .map_err(|e| SddError::io(context(), &e))?
            .len();
        let len = usize::try_from(len).map_err(|_| {
            SddError::invalid(format!("{}: file length exceeds usize", path.display()))
        })?;
        if len == 0 {
            return Err(SddError::Empty {
                context: "mapped file",
            });
        }
        let map = sys::Mapping::new(&file, len).map_err(|e| SddError::io(context(), &e))?;
        Ok(Self {
            map: DebugMapping(map),
            file,
            len,
        })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.map.0.as_slice()
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Re-checks the *mapped inode's* current length against the mapping.
    /// A long-lived holder (a serve registry entry) calls this before
    /// walking pages it has not touched recently: if the file was
    /// truncated in place since mapping, the lost tail would SIGBUS, so
    /// the typed [`SddError::Truncated`] here is the honest, recoverable
    /// version of that crash. Rename-replaced files pass — the old inode
    /// is still full-length underneath this map.
    ///
    /// # Errors
    ///
    /// [`SddError::Truncated`] when the inode shrank below the mapped
    /// length; [`SddError::Io`] when it cannot be statted.
    pub fn still_intact(&self) -> Result<(), SddError> {
        let now = self
            .file
            .metadata()
            .map_err(|e| SddError::io("fstat mapped file", &e))?
            .len();
        if now < self.len as u64 {
            return Err(SddError::Truncated {
                context: "mapped file",
                expected: self.len,
                actual: usize::try_from(now).unwrap_or(usize::MAX),
            });
        }
        Ok(())
    }
}

impl AsRef<[u8]> for MappedFile {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// When should a dictionary file be mapped instead of read? The value of
/// the `--mmap auto|on|off` flag on `sdd serve`, `sdd volume`, and
/// `sdd verify`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MmapMode {
    /// Map where supported (Linux), read to a `Vec` elsewhere — and fall
    /// back to reading if a mapping attempt fails at runtime.
    #[default]
    Auto,
    /// Always map; a target or file that cannot be mapped is a hard error.
    On,
    /// Always read to an owned `Vec` (the pre-mmap behavior).
    Off,
}

impl MmapMode {
    /// Parses a `--mmap` flag value.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "auto" => Some(Self::Auto),
            "on" => Some(Self::On),
            "off" => Some(Self::Off),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::On => "on",
            Self::Off => "off",
        }
    }

    /// Will this mode attempt to map on the current target?
    pub fn wants_map(self) -> bool {
        match self {
            Self::Auto => mmap_supported(),
            Self::On => true,
            Self::Off => false,
        }
    }
}

/// The bytes of one dictionary artifact, owned or mapped — the single
/// ownership seam every store reader ([`crate::SddbReader`],
/// [`crate::ShardedReader`], [`crate::verify_file_with`]) is generic over.
#[derive(Debug)]
pub enum DictBytes {
    /// A heap buffer read through ordinary I/O.
    Owned(Vec<u8>),
    /// A kernel mapping; dropping it is the `munmap`.
    Mapped(MappedFile),
}

impl DictBytes {
    /// The underlying bytes, wherever they live.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Self::Owned(bytes) => bytes,
            Self::Mapped(map) => map.as_slice(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when there are no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// True for the mapped variant.
    pub fn is_mapped(&self) -> bool {
        matches!(self, Self::Mapped(_))
    }

    /// The residency token serve `STATS` reports: `"mapped"` or `"owned"`.
    pub fn mode(&self) -> &'static str {
        match self {
            Self::Owned(_) => "owned",
            Self::Mapped(_) => "mapped",
        }
    }

    /// Re-checks that deferred page reads are still safe: owned bytes
    /// always are; mapped bytes defer to [`MappedFile::still_intact`].
    ///
    /// # Errors
    ///
    /// See [`MappedFile::still_intact`].
    pub fn revalidate(&self) -> Result<(), SddError> {
        match self {
            Self::Owned(_) => Ok(()),
            Self::Mapped(map) => map.still_intact(),
        }
    }
}

impl AsRef<[u8]> for DictBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Deref for DictBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Reads or maps a dictionary file per `mode`, with the same pre-buffering
/// sanity check as [`crate::read_dictionary_file`] — and for the mapped
/// path that check is load-bearing: the 64-byte header is read through
/// ordinary I/O and its declared length cross-checked against the real
/// file length *before* any byte of the file is mapped, so a truncated
/// `.sddb` yields a typed [`SddError::Truncated`], never a SIGBUS from a
/// read past end-of-file.
///
/// Under [`MmapMode::Auto`] a runtime mapping failure (unsupported target
/// or filesystem) quietly falls back to an owned read; under
/// [`MmapMode::On`] it is the caller's error.
///
/// # Errors
///
/// As [`crate::read_dictionary_file`], plus [`SddError::Io`] when
/// [`MmapMode::On`] cannot map.
pub fn read_dictionary_bytes(
    path: impl AsRef<Path>,
    mode: MmapMode,
) -> Result<DictBytes, SddError> {
    let path = path.as_ref();
    if !mode.wants_map() {
        return crate::read_dictionary_file(path).map(DictBytes::Owned);
    }
    match map_validated(path) {
        Ok(bytes) => Ok(bytes),
        // Auto degrades map-layer Io failures (Unsupported, odd
        // filesystems) to an owned read; validation errors — truncation,
        // bad checksums, trailing bytes — describe the *file* and are
        // identical on both paths, so they propagate.
        Err(SddError::Io { .. }) if mode == MmapMode::Auto => {
            crate::read_dictionary_file(path).map(DictBytes::Owned)
        }
        Err(e) => Err(e),
    }
}

/// Maps `path` after the header-vs-file-length SIGBUS guard.
fn map_validated(path: &Path) -> Result<DictBytes, SddError> {
    let context = || path.display().to_string();
    let mut file = File::open(path).map_err(|e| SddError::io(context(), &e))?;
    let file_len = file
        .metadata()
        .map_err(|e| SddError::io(context(), &e))?
        .len();
    let file_len = usize::try_from(file_len)
        .map_err(|_| SddError::invalid(format!("{}: file length exceeds usize", path.display())))?;
    let mut head = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN && filled < file_len {
        match file.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(SddError::io(context(), &e)),
        }
    }
    if head[..filled].starts_with(&MAGIC) {
        // The SIGBUS guard: decode the header from ordinary-I/O bytes and
        // refuse to map a file shorter than its header declares.
        let header = Header::decode(&head[..filled])?;
        let declared = HEADER_LEN
            .checked_add(header.payload_len)
            .ok_or_else(|| SddError::invalid("header-declared file length overflows usize"))?;
        if declared > file_len {
            return Err(SddError::Truncated {
                context: "store file",
                expected: declared,
                actual: file_len,
            });
        }
        if declared < file_len {
            return Err(SddError::invalid(format!(
                "{} trailing bytes after the declared payload",
                file_len - declared
            )));
        }
    }
    if file_len == 0 {
        // The kernel rejects empty mappings; an empty Vec decodes to the
        // same typed error an empty mapping would have.
        return Ok(DictBytes::Owned(Vec::new()));
    }
    let map = sys::Mapping::new(&file, file_len).map_err(|e| SddError::io(context(), &e))?;
    Ok(DictBytes::Mapped(MappedFile {
        map: DebugMapping(map),
        file,
        len: file_len,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sdd-mmap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [MmapMode::Auto, MmapMode::On, MmapMode::Off] {
            assert_eq!(MmapMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(MmapMode::parse("yes"), None);
        assert!(!MmapMode::Off.wants_map());
        assert!(MmapMode::On.wants_map());
        assert_eq!(MmapMode::Auto.wants_map(), mmap_supported());
    }

    #[test]
    fn mapped_and_owned_bytes_are_identical() {
        let dir = scratch("ident");
        let path = dir.join("blob.bin");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 7) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let owned = read_dictionary_bytes(&path, MmapMode::Off).unwrap();
        assert!(!owned.is_mapped());
        assert_eq!(owned.mode(), "owned");
        assert_eq!(owned.as_slice(), &payload[..]);
        owned.revalidate().unwrap();
        if mmap_supported() {
            let mapped = read_dictionary_bytes(&path, MmapMode::On).unwrap();
            assert!(mapped.is_mapped());
            assert_eq!(mapped.mode(), "mapped");
            assert_eq!(mapped.as_slice(), owned.as_slice());
            assert_eq!(mapped.len(), payload.len());
            mapped.revalidate().unwrap();
        }
        let auto = read_dictionary_bytes(&path, MmapMode::Auto).unwrap();
        assert_eq!(auto.is_mapped(), mmap_supported());
        assert_eq!(auto.as_slice(), &payload[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_place_truncation_is_detected_by_revalidate() {
        if !mmap_supported() {
            return;
        }
        let dir = scratch("shrink");
        let path = dir.join("blob.bin");
        std::fs::write(&path, vec![0xAB; 8192]).unwrap();
        let mapped = read_dictionary_bytes(&path, MmapMode::On).unwrap();
        mapped.revalidate().unwrap();
        // Shrink the inode under the live map: the typed error replaces
        // what would otherwise be a SIGBUS on the lost tail.
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(16)
            .unwrap();
        assert!(matches!(
            mapped.revalidate(),
            Err(SddError::Truncated {
                context: "mapped file",
                expected: 8192,
                actual: 16,
            })
        ));
        // Rename-replace keeps the mapped inode intact: still valid.
        std::fs::write(&path, vec![0xCD; 8192]).unwrap();
        let fresh = read_dictionary_bytes(&path, MmapMode::On).unwrap();
        fresh.revalidate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_files_never_map() {
        let dir = scratch("empty");
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let bytes = read_dictionary_bytes(&path, MmapMode::Auto).unwrap();
        assert!(!bytes.is_mapped());
        assert!(bytes.is_empty());
        assert!(matches!(
            MappedFile::open(&path),
            Err(SddError::Empty { .. } | SddError::Io { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
