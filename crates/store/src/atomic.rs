//! Atomic, crash-safe file replacement for dictionary artifacts.
//!
//! A dictionary build can take hours; a `kill -9`, power cut, or full disk
//! in the middle of the final write must never leave a *torn* `.sddb` or
//! `.sddm` behind — a file that half-parses, or that shadows a previously
//! good artifact. The contract here is the classic one:
//!
//! 1. the new image is written to a temporary sibling
//!    (`<name>.tmp`, same directory so the rename below cannot cross a
//!    filesystem boundary),
//! 2. the temporary file is flushed *and* fsynced (`File::sync_all`), so
//!    its bytes are durable before they can become visible,
//! 3. the temporary is renamed over the target — an atomic replacement on
//!    POSIX filesystems — and the parent directory is fsynced so the
//!    rename itself survives a crash.
//!
//! A crash before step 3 leaves the old file byte-for-byte intact (plus an
//! inert `*.tmp` sibling that the next write simply overwrites and that
//! [`crate::verify_file`] reports as stale); a crash after step 3 leaves
//! the complete new file. There is no interleaving that exposes a partial
//! image under the target name — which is exactly what the chaos harness
//! (`sdd-bench --bin chaos`) and `tests/crash_safe_store.rs` assert at
//! every 64-byte truncation point.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use sdd_logic::SddError;

/// The temporary sibling a crash-safe write of `path` stages its bytes in.
///
/// Public so torn-write tests and the chaos harness can reproduce the
/// exact on-disk state a killed writer leaves behind (a partial `*.tmp`
/// next to an intact target) without racing a real subprocess kill.
pub fn temp_sibling(path: impl AsRef<Path>) -> PathBuf {
    let path = path.as_ref();
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// True when `path` looks like a stale staging file left by an interrupted
/// crash-safe write.
pub fn is_temp(path: impl AsRef<Path>) -> bool {
    path.as_ref()
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(".tmp"))
}

/// An in-progress crash-safe replacement of one file.
///
/// Bytes written through the handle land in the temporary sibling;
/// [`commit`](Self::commit) makes them durable and atomically renames them
/// over the target. Dropping without committing removes the staging file
/// (an *aborted* write cleans up after itself — a killed process skips
/// `Drop` and leaves the inert `*.tmp` behind, never a torn target).
#[derive(Debug)]
pub struct AtomicFile {
    file: Option<File>,
    tmp: PathBuf,
    target: PathBuf,
}

impl AtomicFile {
    /// Opens the staging file for a crash-safe replacement of `target`.
    ///
    /// # Errors
    ///
    /// [`SddError::Io`] when the staging file cannot be created.
    pub fn create(target: impl AsRef<Path>) -> Result<Self, SddError> {
        let target = target.as_ref().to_path_buf();
        let tmp = temp_sibling(&target);
        let file = File::create(&tmp)
            .map_err(|e| SddError::io(format!("create {}", tmp.display()), &e))?;
        Ok(Self {
            file: Some(file),
            tmp,
            target,
        })
    }

    /// Flushes and fsyncs the staged bytes, then atomically renames them
    /// over the target and fsyncs the parent directory.
    ///
    /// # Errors
    ///
    /// [`SddError::Io`] on any sync or rename failure; the staging file is
    /// removed and the target is left untouched.
    pub fn commit(mut self) -> Result<(), SddError> {
        let file = self.file.take().expect("commit consumes the handle");
        let durable = file.sync_all();
        drop(file);
        if let Err(e) = durable {
            let _ = fs::remove_file(&self.tmp);
            return Err(SddError::io(format!("sync {}", self.tmp.display()), &e));
        }
        if let Err(e) = fs::rename(&self.tmp, &self.target) {
            let _ = fs::remove_file(&self.tmp);
            return Err(SddError::io(
                format!("rename {} -> {}", self.tmp.display(), self.target.display()),
                &e,
            ));
        }
        // Make the rename itself durable. Directory fsync is best-effort:
        // some filesystems reject opening a directory for sync, and the
        // data is already safe under either name.
        if let Some(dir) = self.target.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(handle) = File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.file.as_mut().expect("write before commit").write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.as_mut().expect("flush before commit").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            // Aborted (not committed): remove the staging file. Best
            // effort — a leftover .tmp is inert either way.
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// Crash-safely replaces `path` with `bytes`: temp sibling + `sync_all` +
/// atomic rename (+ parent-directory fsync). At every interruption point
/// the target holds either its previous content or the complete new image.
///
/// # Errors
///
/// [`SddError::Io`] on create/write/sync/rename failure; the target is
/// left untouched.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), SddError> {
    let path = path.as_ref();
    let mut file = AtomicFile::create(path)?;
    file.write_all(bytes)
        .map_err(|e| SddError::io(format!("write {}", temp_sibling(path).display()), &e))?;
    file.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sdd-atomic-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn temp_sibling_stays_in_the_same_directory() {
        let t = temp_sibling("/some/dir/dict.sddb");
        assert_eq!(t, PathBuf::from("/some/dir/dict.sddb.tmp"));
        assert!(is_temp(&t));
        assert!(!is_temp("/some/dir/dict.sddb"));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = scratch_dir("replace");
        let path = dir.join("a.bin");
        atomic_write(&path, b"old").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"old");
        atomic_write(&path, b"new content").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new content");
        assert!(!temp_sibling(&path).exists(), "staging file removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_write_leaves_the_target_untouched() {
        let dir = scratch_dir("abort");
        let path = dir.join("a.bin");
        atomic_write(&path, b"old").unwrap();
        {
            let mut staged = AtomicFile::create(&path).unwrap();
            staged.write_all(b"half of the new im").unwrap();
            // Dropped without commit: an aborted write.
        }
        assert_eq!(fs::read(&path).unwrap(), b"old");
        assert!(
            !temp_sibling(&path).exists(),
            "abort cleans the staging file"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_stale_temp_never_shadows_the_target() {
        let dir = scratch_dir("stale");
        let path = dir.join("a.bin");
        atomic_write(&path, b"good").unwrap();
        // The state a kill -9 mid-write leaves behind.
        fs::write(temp_sibling(&path), b"to").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"good");
        // The next write overwrites the stale temp and still commits.
        atomic_write(&path, b"newer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"newer");
        assert!(!temp_sibling(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_parent_is_a_typed_io_error() {
        let dir = scratch_dir("noparent");
        let err = atomic_write(dir.join("no/such/dir/a.bin"), b"x").unwrap_err();
        assert!(matches!(err, SddError::Io { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
