//! The `.sddm` shard manifest: a versioned, checksummed index over a set of
//! `.sddb` shard files that together cover one collapsed fault list.
//!
//! A sharded dictionary is the unsharded artifact cut into contiguous
//! fault ranges — shard `s` holds faults `fault_start .. fault_start +
//! fault_count` of the *original* collapsed order, so a candidate reported
//! by a shard maps back to its global index by adding `fault_start`, and a
//! cross-shard merge can reproduce the unsharded ranking bit for bit. The
//! manifest records, per shard, the file name, the fault range, the
//! payload checksum the shard's own header must carry, and the union
//! output cone of the shard's faults (which failing outputs could
//! implicate it — used to prioritize lazy loads, never to skip scoring).
//!
//! All integers are little-endian, mirroring the `.sddb` format:
//!
//! ```text
//! Manifest header (64 bytes):
//!   off  size  field
//!     0     4  magic "SDDM"
//!     4     2  manifest version (currently 1)
//!     6     2  dictionary kind (1 pass/fail, 2 same/different, 3 full)
//!     8     2  shard .sddb format version (must equal format::VERSION)
//!    10     6  reserved (written as 0)
//!    16     8  tests k
//!    24     8  total faults n
//!    32     8  outputs m
//!    40     8  shard count
//!    48     8  body checksum (FNV-1a 64 over the body bytes)
//!    56     8  header checksum (FNV-1a 64 over header bytes 0..56)
//!
//! Body: shard count records, each
//!   file-name length u32, file-name bytes (UTF-8, no path separators),
//!   fault_start u64, fault_count u64,
//!   payload_len u64, payload_checksum u64,
//!   cone row: ⌈m/64⌉ × u64 (bit o set when the shard can affect output o)
//! ```

use std::ops::Range;
use std::path::{Path, PathBuf};

use sdd_logic::{BitVec, SddError};

use crate::format::{self, Cursor};
use crate::mmap::{read_dictionary_bytes, DictBytes, MmapMode};
use crate::{DictionaryKind, SddbReader, StoredDictionary};

/// The four magic bytes every shard manifest starts with.
pub const MANIFEST_MAGIC: [u8; 4] = *b"SDDM";

/// The newest manifest version this build reads and the only one it writes.
pub const MANIFEST_VERSION: u16 = 1;

/// Fixed manifest header size in bytes.
pub const MANIFEST_HEADER_LEN: usize = 64;

/// True when `bytes` starts with the manifest magic — the sniff `sdd serve`
/// uses to route `LOAD` between whole `.sddb` files and sharded sets.
pub fn is_manifest(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[0..4] == MANIFEST_MAGIC
}

/// One shard's entry in a [`ShardManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// Shard file name, relative to the manifest's directory (no path
    /// separators allowed).
    pub file: String,
    /// First global fault index the shard covers.
    pub fault_start: usize,
    /// Number of faults in the shard (always nonzero).
    pub fault_count: usize,
    /// Expected shard payload length in bytes.
    pub payload_len: usize,
    /// Expected shard payload checksum (must match the shard's own header).
    pub payload_checksum: u64,
    /// Union output cone of the shard's faults (`m` bits). All-ones when no
    /// cone information was available at build time.
    pub cone: BitVec,
}

impl ShardRecord {
    /// The global fault range this shard covers.
    pub fn fault_range(&self) -> Range<usize> {
        self.fault_start..self.fault_start + self.fault_count
    }
}

/// A decoded, fully validated `.sddm` manifest.
///
/// # Example
///
/// ```no_run
/// use sdd_store::{ShardedReader};
///
/// let reader = ShardedReader::open("dict.sddm")?;
/// for (i, shard) in reader.manifest().shards.iter().enumerate() {
///     println!("shard {i}: faults {:?} in {}", shard.fault_range(), shard.file);
/// }
/// # Ok::<(), sdd_logic::SddError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Dictionary kind every shard must encode.
    pub kind: DictionaryKind,
    /// Number of tests `k` (identical in every shard).
    pub tests: usize,
    /// Total faults `n` across all shards.
    pub faults: usize,
    /// Number of observed outputs `m`.
    pub outputs: usize,
    /// Per-shard records, in fault order.
    pub shards: Vec<ShardRecord>,
}

impl ShardManifest {
    /// Serializes the manifest, computing both checksums.
    ///
    /// # Errors
    ///
    /// [`SddError::TooLarge`] when a shard file name exceeds the u32
    /// length field.
    pub fn encode(&self) -> Result<Vec<u8>, SddError> {
        let mut body = Vec::new();
        for shard in &self.shards {
            format::push_u32(
                &mut body,
                crate::writer::checked_u32(shard.file.len(), "shard file name length")?,
            );
            body.extend_from_slice(shard.file.as_bytes());
            format::push_u64(&mut body, shard.fault_start as u64);
            format::push_u64(&mut body, shard.fault_count as u64);
            format::push_u64(&mut body, shard.payload_len as u64);
            format::push_u64(&mut body, shard.payload_checksum);
            format::push_bit_row(&mut body, &shard.cone);
        }
        let mut out = vec![0u8; MANIFEST_HEADER_LEN];
        out[0..4].copy_from_slice(&MANIFEST_MAGIC);
        out[4..6].copy_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out[6..8].copy_from_slice(&(self.kind as u16).to_le_bytes());
        out[8..10].copy_from_slice(&format::VERSION.to_le_bytes());
        // Bytes 10..16 reserved.
        out[16..24].copy_from_slice(&(self.tests as u64).to_le_bytes());
        out[24..32].copy_from_slice(&(self.faults as u64).to_le_bytes());
        out[32..40].copy_from_slice(&(self.outputs as u64).to_le_bytes());
        out[40..48].copy_from_slice(&(self.shards.len() as u64).to_le_bytes());
        out[48..56].copy_from_slice(&format::fnv1a64(&body).to_le_bytes());
        let checksum = format::fnv1a64(&out[..56]);
        out[56..64].copy_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&body);
        Ok(out)
    }

    /// Parses and fully validates a manifest image.
    ///
    /// # Errors
    ///
    /// Every corruption mode maps to a distinct typed [`SddError`]:
    /// [`SddError::Truncated`] for missing header or record bytes,
    /// [`SddError::Invalid`] for bad magic / kind / file names / fault
    /// ranges, [`SddError::ChecksumMismatch`] for flipped header or body
    /// bits, [`SddError::UnsupportedVersion`] for a newer manifest *or* a
    /// shard-format version this build cannot read, and
    /// [`SddError::Empty`] for a shard count of zero.
    pub fn decode(bytes: &[u8]) -> Result<Self, SddError> {
        if bytes.len() < MANIFEST_HEADER_LEN {
            return Err(SddError::Truncated {
                context: "shard manifest header",
                expected: MANIFEST_HEADER_LEN,
                actual: bytes.len(),
            });
        }
        if bytes[0..4] != MANIFEST_MAGIC {
            return Err(SddError::invalid(format!(
                "bad magic {:?}: not a shard manifest",
                &bytes[0..4]
            )));
        }
        let stored = u64::from_le_bytes(bytes[56..64].try_into().unwrap());
        let computed = format::fnv1a64(&bytes[..56]);
        if stored != computed {
            return Err(SddError::ChecksumMismatch {
                context: "shard manifest header",
                stored,
                computed,
            });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != MANIFEST_VERSION {
            return Err(SddError::UnsupportedVersion {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        let shard_version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
        if shard_version != format::VERSION {
            return Err(SddError::UnsupportedVersion {
                found: shard_version,
                supported: format::VERSION,
            });
        }
        let kind = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
        let kind = DictionaryKind::from_tag(kind)
            .ok_or_else(|| SddError::invalid(format!("unknown dictionary kind tag {kind}")))?;
        let dim = |range: Range<usize>, what: &str| -> Result<usize, SddError> {
            let v = u64::from_le_bytes(bytes[range].try_into().unwrap());
            usize::try_from(v)
                .map_err(|_| SddError::invalid(format!("{what} {v} exceeds this platform's usize")))
        };
        let tests = dim(16..24, "test count")?;
        let faults = dim(24..32, "fault count")?;
        let outputs = dim(32..40, "output count")?;
        let shard_count = dim(40..48, "shard count")?;
        if shard_count == 0 {
            return Err(SddError::Empty {
                context: "shard manifest",
            });
        }
        let body = &bytes[MANIFEST_HEADER_LEN..];
        let stored = u64::from_le_bytes(bytes[48..56].try_into().unwrap());
        let computed = format::fnv1a64(body);
        if stored != computed {
            return Err(SddError::ChecksumMismatch {
                context: "shard manifest body",
                stored,
                computed,
            });
        }
        let mut cursor = Cursor::new(body, "shard manifest record");
        // Each record is ≥ 36 bytes (4 + 4×8 + cone words), so the count is
        // bounded before any allocation.
        let mut shards = Vec::with_capacity(shard_count.min(body.len() / 36 + 1));
        let mut next_start = 0usize;
        for index in 0..shard_count {
            let name_len = cursor.u32()? as usize;
            let name = cursor.bytes_exact(name_len)?;
            let file = String::from_utf8(name.to_vec())
                .map_err(|_| SddError::invalid(format!("shard {index}: non-UTF-8 file name")))?;
            if file.is_empty() || file.contains(['/', '\\']) {
                return Err(SddError::invalid(format!(
                    "shard {index}: file name {file:?} must be a bare file name"
                )));
            }
            let fault_start = usize::try_from(cursor.u64()?)
                .map_err(|_| SddError::invalid("shard fault start exceeds usize"))?;
            let fault_count = usize::try_from(cursor.u64()?)
                .map_err(|_| SddError::invalid("shard fault count exceeds usize"))?;
            let payload_len = usize::try_from(cursor.u64()?)
                .map_err(|_| SddError::invalid("shard payload length exceeds usize"))?;
            let payload_checksum = cursor.u64()?;
            let cone = cursor.bit_row(outputs)?;
            if fault_start != next_start {
                return Err(SddError::invalid(format!(
                    "shard {index} starts at fault {fault_start}, expected {next_start}: \
                     shards must tile the fault list contiguously"
                )));
            }
            if fault_count == 0 {
                return Err(SddError::invalid(format!("shard {index} covers no faults")));
            }
            next_start = fault_start
                .checked_add(fault_count)
                .ok_or_else(|| SddError::invalid("shard fault range overflows usize"))?;
            shards.push(ShardRecord {
                file,
                fault_start,
                fault_count,
                payload_len,
                payload_checksum,
                cone,
            });
        }
        if next_start != faults {
            return Err(SddError::invalid(format!(
                "shards cover {next_start} faults, manifest declares {faults}"
            )));
        }
        if cursor.remaining() != 0 {
            return Err(SddError::invalid(format!(
                "{} trailing bytes after the last shard record",
                cursor.remaining()
            )));
        }
        Ok(Self {
            kind,
            tests,
            faults,
            outputs,
            shards,
        })
    }
}

/// Cuts one dictionary down to a contiguous fault range, preserving per-test
/// structure: signatures are sliced, baselines are shared unchanged, and a
/// full dictionary's response classes are re-interned in first-use order
/// over the range (class 0 stays the fault-free class). Per-fault diagnosis
/// scores over the slice equal the corresponding scores over the whole
/// dictionary, which is what makes cross-shard merging exact.
///
/// # Errors
///
/// [`SddError::Invalid`] when `range` is out of bounds or empty.
pub fn slice_dictionary(
    dictionary: &StoredDictionary,
    range: Range<usize>,
) -> Result<StoredDictionary, SddError> {
    if range.is_empty() || range.end > dictionary.fault_count() {
        return Err(SddError::invalid(format!(
            "shard range {range:?} invalid for {} faults",
            dictionary.fault_count()
        )));
    }
    match dictionary {
        StoredDictionary::PassFail(d) => Ok(StoredDictionary::PassFail(
            sdd_core::PassFailDictionary::from_parts(
                d.signatures()[range].to_vec(),
                d.test_count(),
                d.sizes().outputs as usize,
            )?,
        )),
        StoredDictionary::SameDifferent(d) => Ok(StoredDictionary::SameDifferent(
            sdd_core::SameDifferentDictionary::from_parts(
                d.signatures()[range].to_vec(),
                (0..d.test_count()).map(|t| d.baseline(t).clone()).collect(),
                d.baseline_classes().to_vec(),
                d.sizes().outputs as usize,
            )?,
        )),
        StoredDictionary::Full(d) => {
            let matrix = d.matrix();
            let k = matrix.test_count();
            let good: Vec<BitVec> = (0..k).map(|t| matrix.good_response(t).clone()).collect();
            let mut class = Vec::with_capacity(k * range.len());
            let mut distinct = Vec::with_capacity(k);
            for test in 0..k {
                // Re-intern the labels used inside the range, first-use
                // order, keeping class 0 as the (possibly unused)
                // fault-free class with its empty diff list.
                let mut remap = vec![u32::MAX; matrix.class_count(test)];
                remap[0] = 0;
                let mut tables: Vec<Vec<u32>> = vec![Vec::new()];
                for fault in range.clone() {
                    let old = matrix.class(test, fault);
                    if remap[old as usize] == u32::MAX {
                        remap[old as usize] = tables.len() as u32;
                        tables.push(matrix.class_diffs(test, old).to_vec());
                    }
                    class.push(remap[old as usize]);
                }
                distinct.push(tables);
            }
            let matrix = sdd_sim::ResponseMatrix::from_class_parts(
                good,
                range.len(),
                matrix.output_count(),
                class,
                distinct,
            )?;
            Ok(StoredDictionary::Full(sdd_core::FullDictionary::new(
                matrix,
            )))
        }
    }
}

/// Writes a sharded dictionary set: one `.sddb` per range plus the `.sddm`
/// manifest at `manifest_path`. Shard files are named
/// `<stem>.<index:03>.sddb` next to the manifest. `cones` supplies one
/// union output cone per range (from `sdd_sim::OutputCones::shard_cone`);
/// pass `None` to record all-ones cones (every shard may affect every
/// output — the contiguous-chunk fallback).
///
/// Returns the manifest that was written.
///
/// # Errors
///
/// [`SddError::Invalid`] when the ranges do not tile `0..fault_count`
/// contiguously or the cone count mismatches; [`SddError::Io`] on write
/// failures.
pub fn write_sharded(
    manifest_path: impl AsRef<Path>,
    dictionary: &StoredDictionary,
    ranges: &[Range<usize>],
    cones: Option<&[BitVec]>,
) -> Result<ShardManifest, SddError> {
    let manifest_path = manifest_path.as_ref();
    let outputs = match dictionary {
        StoredDictionary::PassFail(d) => d.sizes().outputs as usize,
        StoredDictionary::SameDifferent(d) => d.sizes().outputs as usize,
        StoredDictionary::Full(d) => d.matrix().output_count(),
    };
    if let Some(cones) = cones {
        if cones.len() != ranges.len() {
            return Err(SddError::CountMismatch {
                context: "shard cones",
                expected: ranges.len(),
                actual: cones.len(),
            });
        }
    }
    let stem = manifest_path
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| SddError::invalid("manifest path has no usable file stem"))?
        .to_string();
    let dir = manifest_path
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let mut shards = Vec::with_capacity(ranges.len());
    for (index, range) in ranges.iter().enumerate() {
        let shard = slice_dictionary(dictionary, range.clone())?;
        let bytes = crate::encode(&shard)?;
        let file = format!("{stem}.{index:03}.sddb");
        let path = dir.join(&file);
        crate::atomic_write(&path, &bytes)?;
        let header = *SddbReader::open(&bytes)?.header();
        let cone = match cones {
            Some(cones) => cones[index].clone(),
            None => {
                let mut all = BitVec::zeros(outputs);
                for o in 0..outputs {
                    all.set(o, true);
                }
                all
            }
        };
        if cone.len() != outputs {
            return Err(SddError::WidthMismatch {
                context: "shard cone width",
                expected: outputs,
                actual: cone.len(),
            });
        }
        shards.push(ShardRecord {
            file,
            fault_start: range.start,
            fault_count: range.len(),
            payload_len: header.payload_len,
            payload_checksum: header.payload_checksum,
            cone,
        });
    }
    let manifest = ShardManifest {
        kind: dictionary.kind(),
        tests: dictionary.test_count(),
        faults: dictionary.fault_count(),
        outputs,
        shards,
    };
    // Encoding validates nothing the decoder would reject: round-trip once
    // so a just-written manifest is guaranteed readable.
    let encoded = manifest.encode()?;
    ShardManifest::decode(&encoded)?;
    // Every shard above was atomically committed (and fsynced) before this
    // point, so the manifest — written last, also atomically — can never
    // name a shard that is not fully durable: a crash anywhere in the
    // sequence leaves either the old set or a complete new one.
    crate::atomic_write(manifest_path, &encoded)?;
    Ok(manifest)
}

/// Manifest-aware access to a sharded dictionary set on disk.
///
/// The reader holds only the decoded manifest; [`load_shard`]
/// (Self::load_shard) reads, verifies, and decodes one shard on demand, so
/// a service can keep cold shards off the heap entirely and a diagnosis
/// driver can load them in cone-priority order.
#[derive(Debug, Clone)]
pub struct ShardedReader {
    manifest: ShardManifest,
    dir: PathBuf,
    mode: MmapMode,
}

impl ShardedReader {
    /// Reads and validates the manifest at `path`, with shard files read
    /// into owned buffers (see [`open_with`](Self::open_with) for the
    /// zero-copy mapped mode).
    ///
    /// # Errors
    ///
    /// [`SddError::Io`] when the file cannot be read, plus every
    /// [`ShardManifest::decode`] error.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SddError> {
        Self::open_with(path, MmapMode::Off)
    }

    /// [`open`](Self::open) with an explicit shard byte-ownership mode:
    /// under [`MmapMode::Auto`]/[`MmapMode::On`] every shard load maps the
    /// shard file instead of copying it to the heap. The manifest itself
    /// is always read whole — it is kilobytes, and its decode borrows
    /// nothing.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(path: impl AsRef<Path>, mode: MmapMode) -> Result<Self, SddError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SddError::io(format!("read manifest {}", path.display()), &e))?;
        Ok(Self {
            manifest: ShardManifest::decode(&bytes)?,
            dir: path.parent().map(Path::to_path_buf).unwrap_or_default(),
            mode,
        })
    }

    /// How shard files are brought into memory.
    pub fn mode(&self) -> MmapMode {
        self.mode
    }

    /// The decoded manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.manifest.shards.len()
    }

    /// The directory shard files are resolved against.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads shard `index` from disk, cross-checks it against the manifest
    /// (payload length and checksum, dictionary kind, test/output counts,
    /// fault count), and decodes it.
    ///
    /// # Errors
    ///
    /// [`SddError::Invalid`] for an out-of-range index or dimension
    /// mismatches, [`SddError::ChecksumMismatch`] when the shard's payload
    /// checksum disagrees with the manifest record, [`SddError::Io`] on
    /// read failures, plus every `.sddb` decode error.
    pub fn load_shard(&self, index: usize) -> Result<StoredDictionary, SddError> {
        self.shard_reader(index)?.dictionary()
    }

    /// [`load_shard`](Self::load_shard), but also hands back the verified
    /// byte image the decode ran over — under a mapped mode, the live
    /// mapping a serving registry keeps so later re-decodes fault pages
    /// back in from the page cache instead of re-reading the file. The
    /// image and the decoded dictionary are views of the same validated
    /// bytes.
    ///
    /// # Errors
    ///
    /// As [`load_shard`](Self::load_shard).
    pub fn load_shard_with_image(
        &self,
        index: usize,
    ) -> Result<(DictBytes, StoredDictionary), SddError> {
        let reader = self.shard_reader(index)?;
        let dictionary = reader.dictionary()?;
        Ok((reader.into_bytes(), dictionary))
    }

    /// Verifies shard `index` end to end — read or map, header + payload
    /// checksum, manifest cross-checks, full structural walk — without
    /// decoding it into the heap: peak memory is one row. This is the
    /// `sdd verify` path for dictionaries larger than RAM.
    ///
    /// # Errors
    ///
    /// As [`load_shard`](Self::load_shard).
    pub fn check_shard(&self, index: usize) -> Result<(), SddError> {
        self.shard_reader(index)?.validate_structure()
    }

    /// Opens shard `index` and cross-checks it against the manifest
    /// (payload length and checksum, dictionary kind, test/output counts,
    /// fault count).
    fn shard_reader(&self, index: usize) -> Result<SddbReader<DictBytes>, SddError> {
        let record = self.manifest.shards.get(index).ok_or_else(|| {
            SddError::invalid(format!(
                "shard {index} out of range ({} shards)",
                self.manifest.shards.len()
            ))
        })?;
        let path = self.dir.join(&record.file);
        let bytes = read_dictionary_bytes(&path, self.mode)?;
        let reader = SddbReader::open(bytes)?;
        let header = reader.header();
        if header.payload_checksum != record.payload_checksum {
            return Err(SddError::ChecksumMismatch {
                context: "shard payload vs manifest",
                stored: record.payload_checksum,
                computed: header.payload_checksum,
            });
        }
        if header.payload_len != record.payload_len {
            return Err(SddError::invalid(format!(
                "shard {index}: payload is {} bytes, manifest records {}",
                header.payload_len, record.payload_len
            )));
        }
        if header.kind != self.manifest.kind
            || header.tests != self.manifest.tests
            || header.outputs != self.manifest.outputs
            || header.faults != record.fault_count
        {
            return Err(SddError::invalid(format!(
                "shard {index}: dimensions ({:?}, k={}, n={}, m={}) disagree with the manifest \
                 ({:?}, k={}, n={}, m={})",
                header.kind,
                header.tests,
                header.faults,
                header.outputs,
                self.manifest.kind,
                self.manifest.tests,
                record.fault_count,
                self.manifest.outputs,
            )));
        }
        Ok(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_core::PassFailDictionary;

    fn fixture() -> StoredDictionary {
        StoredDictionary::PassFail(PassFailDictionary::build(
            &sdd_core::example::paper_example(),
        ))
    }

    #[test]
    fn manifest_round_trips() {
        let d = fixture();
        let dir = std::env::temp_dir().join("sddm_round_trip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper.sddm");
        let ranges = [0..2, 2..4];
        let written = write_sharded(&path, &d, &ranges, None).unwrap();
        let reader = ShardedReader::open(&path).unwrap();
        assert_eq!(*reader.manifest(), written);
        assert_eq!(reader.shard_count(), 2);
        let s0 = reader.load_shard(0).unwrap();
        let s1 = reader.load_shard(1).unwrap();
        assert_eq!(s0.fault_count() + s1.fault_count(), d.fault_count());
        assert!(reader.load_shard(2).is_err());
    }

    #[test]
    fn sliced_signatures_match_the_original() {
        let d = fixture();
        let sliced = slice_dictionary(&d, 1..3).unwrap();
        let (StoredDictionary::PassFail(whole), StoredDictionary::PassFail(part)) = (&d, &sliced)
        else {
            panic!("kind preserved");
        };
        assert_eq!(part.fault_count(), 2);
        assert_eq!(part.signature(0), whole.signature(1));
        assert_eq!(part.signature(1), whole.signature(2));
        assert!(slice_dictionary(&d, 2..2).is_err());
        assert!(slice_dictionary(&d, 3..9).is_err());
    }

    #[test]
    fn decode_rejects_non_tiling_ranges() {
        let d = fixture();
        let dir = std::env::temp_dir().join("sddm_bad_ranges");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper.sddm");
        let written = write_sharded(&path, &d, &[0..2, 2..4], None).unwrap();
        let mut gapped = written.clone();
        gapped.shards[1].fault_start = 3;
        assert!(matches!(
            ShardManifest::decode(&gapped.encode().unwrap()),
            Err(SddError::Invalid { .. })
        ));
        let mut short = written;
        short.shards.pop();
        assert!(matches!(
            ShardManifest::decode(&short.encode().unwrap()),
            Err(SddError::Invalid { .. })
        ));
    }
}
