//! Deductive fault simulation (Armstrong, 1972).
//!
//! Where PPSFP re-simulates the circuit once per fault, deductive
//! simulation processes *one pattern* and propagates, per net, the **fault
//! list** — the set of faults whose presence would complement that net's
//! value. One topological pass deduces the detected-fault set for every
//! fault at once:
//!
//! * a fault flips an AND-like gate with no controlling input iff it flips
//!   any input;
//! * with controlling inputs present, it must flip *all* controlling inputs
//!   and *no* non-controlling one;
//! * it flips an XOR iff it flips an odd number of inputs (symmetric
//!   difference);
//! * every net's own stem fault at the complement of its good value flips
//!   it, and a branch fault flips just its pin.
//!
//! This is an independent oracle for the event-driven
//! [`Engine`](crate::Engine): the two algorithms share no propagation code,
//! so agreement between them is strong evidence of correctness. It is also
//! the faster choice when `k` is small and `n` is huge.

use sdd_fault::{FaultId, FaultSite, FaultUniverse};
use sdd_logic::BitVec;
use sdd_netlist::{Circuit, CombView, Driver, GateKind};

/// Per-output fault lists for one pattern: `lists[o]` holds the faults that
/// complement observed output `o`, sorted by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeducedEffects {
    /// Fault lists per view output.
    pub output_lists: Vec<Vec<FaultId>>,
}

impl DeducedEffects {
    /// All faults detected by the pattern (union of the output lists),
    /// sorted and deduplicated.
    pub fn detected(&self) -> Vec<FaultId> {
        let mut all: Vec<FaultId> = self.output_lists.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The faulty response `fault` would produce, reconstructed from the
    /// fault-free response.
    pub fn faulty_response(&self, good: &BitVec, fault: FaultId) -> BitVec {
        let mut response = good.clone();
        for (o, list) in self.output_lists.iter().enumerate() {
            if list.binary_search(&fault).is_ok() {
                response.toggle(o);
            }
        }
        response
    }
}

/// Runs one deductive simulation pass for `pattern`, returning the fault
/// list of every observed output.
///
/// # Panics
///
/// Panics if `pattern`'s width differs from the view's input count.
///
/// # Example
///
/// ```
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, CombView};
/// use sdd_sim::deductive;
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let universe = FaultUniverse::enumerate(&c17);
/// let effects = deductive::deduce(&c17, &view, &universe, &"10111".parse()?);
/// assert!(!effects.detected().is_empty());
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
pub fn deduce(
    circuit: &Circuit,
    view: &CombView,
    universe: &FaultUniverse,
    pattern: &BitVec,
) -> DeducedEffects {
    assert_eq!(
        pattern.len(),
        view.inputs().len(),
        "pattern width must match view inputs"
    );

    // Stem and branch fault lookups.
    let mut stem = vec![[None::<FaultId>; 2]; circuit.net_count()];
    let mut branch: std::collections::HashMap<(u32, u32, bool), FaultId> =
        std::collections::HashMap::new();
    for (id, fault) in universe.iter() {
        match fault.site {
            FaultSite::Stem(net) => stem[net.index()][usize::from(fault.stuck_at)] = Some(id),
            FaultSite::Branch { gate, pin } => {
                branch.insert((gate.0, pin, fault.stuck_at), id);
            }
        }
    }

    let mut value = vec![false; circuit.net_count()];
    let mut lists: Vec<Vec<FaultId>> = vec![Vec::new(); circuit.net_count()];

    for &net in view.order() {
        let (v, mut list) = match circuit.driver(net) {
            Driver::Input | Driver::Dff { .. } => {
                let pos = view.input_position(net).expect("sources are inputs");
                (pattern.bit(pos), Vec::new())
            }
            Driver::Gate { kind, inputs } => {
                // Effective pin values and pin fault lists.
                let pins: Vec<(bool, Vec<FaultId>)> = inputs
                    .iter()
                    .enumerate()
                    .map(|(pin, &source)| {
                        let pv = value[source.index()];
                        let mut pl = lists[source.index()].clone();
                        // A branch fault at the complement of the pin's
                        // good value flips the pin (and only the pin). The
                        // same-polarity branch fault has no effect here and
                        // is never inherited from upstream (it does not sit
                        // on the source line), so nothing to remove.
                        if let Some(&bf) = branch.get(&(net.0, pin as u32, !pv)) {
                            insert_sorted(&mut pl, bf);
                        }
                        (pv, pl)
                    })
                    .collect();
                let good = kind.eval(&pins.iter().map(|&(v, _)| v).collect::<Vec<_>>());
                let list = gate_flip_list(*kind, &pins);
                (good, list)
            }
        };
        // The net's own stem fault at the complement of its good value
        // flips it. The same-polarity stem fault is a no-op under this
        // pattern and cannot have been inherited (it enters only here), so
        // there is nothing to remove.
        if let Some(flip) = stem[net.index()][usize::from(!v)] {
            insert_sorted(&mut list, flip);
        }
        value[net.index()] = v;
        lists[net.index()] = list;
    }

    DeducedEffects {
        output_lists: view
            .outputs()
            .iter()
            .map(|&o| lists[o.index()].clone())
            .collect(),
    }
}

/// Fault list of a gate output from its pins' values and fault lists.
fn gate_flip_list(kind: GateKind, pins: &[(bool, Vec<FaultId>)]) -> Vec<FaultId> {
    match kind {
        GateKind::Not | GateKind::Buf => pins[0].1.clone(),
        GateKind::Xor | GateKind::Xnor => {
            // A fault flips the parity iff it flips an odd number of pins.
            pins.iter()
                .fold(Vec::new(), |acc, (_, pl)| symmetric_difference(&acc, pl))
        }
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let c = kind.controlling_value().expect("controlled gate");
            let controlling: Vec<&Vec<FaultId>> = pins
                .iter()
                .filter(|&&(v, _)| v == c)
                .map(|(_, pl)| pl)
                .collect();
            let non_controlling: Vec<&Vec<FaultId>> = pins
                .iter()
                .filter(|&&(v, _)| v != c)
                .map(|(_, pl)| pl)
                .collect();
            if controlling.is_empty() {
                // All pins non-controlling: any flip flips the output.
                let mut acc = Vec::new();
                for pl in non_controlling {
                    acc = union(&acc, pl);
                }
                acc
            } else {
                // Must flip every controlling pin and no non-controlling one.
                let mut acc = controlling[0].clone();
                for pl in &controlling[1..] {
                    acc = intersection(&acc, pl);
                }
                for pl in non_controlling {
                    acc = difference(&acc, pl);
                }
                acc
            }
        }
    }
}

fn insert_sorted(list: &mut Vec<FaultId>, id: FaultId) {
    if let Err(pos) = list.binary_search(&id) {
        list.insert(pos, id);
    }
}

fn union(a: &[FaultId], b: &[FaultId]) -> Vec<FaultId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

fn intersection(a: &[FaultId], b: &[FaultId]) -> Vec<FaultId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    out
}

fn difference(a: &[FaultId], b: &[FaultId]) -> Vec<FaultId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    out
}

fn symmetric_difference(a: &[FaultId], b: &[FaultId]) -> Vec<FaultId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sdd_netlist::generator;
    use sdd_netlist::library::{c17, demo_seq};

    fn check_against_reference(circuit: &Circuit, view: &CombView, pattern: &BitVec) {
        let universe = FaultUniverse::enumerate(circuit);
        let effects = deduce(circuit, view, &universe, pattern);
        let good = reference::good_response(circuit, view, pattern);
        for (id, fault) in universe.iter() {
            let expected = reference::faulty_response(circuit, view, fault, pattern);
            let deduced = effects.faulty_response(&good, id);
            assert_eq!(
                deduced,
                expected,
                "{} under {pattern}",
                fault.describe(circuit)
            );
        }
        // detected() is exactly the set of faults with a differing response.
        let detected = effects.detected();
        for (id, fault) in universe.iter() {
            let differs = reference::faulty_response(circuit, view, fault, pattern) != good;
            assert_eq!(detected.binary_search(&id).is_ok(), differs);
        }
    }

    #[test]
    fn matches_reference_on_c17_exhaustively() {
        let c = c17();
        let view = CombView::new(&c);
        for w in 0u32..32 {
            let pattern: BitVec = (0..5).map(|i| w >> i & 1 == 1).collect();
            check_against_reference(&c, &view, &pattern);
        }
    }

    #[test]
    fn matches_reference_on_sequential_demo() {
        let c = demo_seq();
        let view = CombView::new(&c);
        let width = view.inputs().len();
        for w in 0u32..(1 << width) {
            let pattern: BitVec = (0..width).map(|i| w >> i & 1 == 1).collect();
            check_against_reference(&c, &view, &pattern);
        }
    }

    #[test]
    fn matches_ppsfp_engine_on_generated_circuit() {
        use sdd_logic::PatternBlock;
        let c = generator::iscas89("s344", 9).unwrap();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let width = view.inputs().len();
        let mut rng = sdd_logic::Prng::seed_from_u64(1);
        let patterns: Vec<BitVec> = (0..16)
            .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let mut engine = crate::Engine::new(&c, &view);
        engine.load_block(&PatternBlock::from_patterns(width, &patterns));
        for (lane, pattern) in patterns.iter().enumerate() {
            let effects = deduce(&c, &view, &universe, pattern);
            let detected = effects.detected();
            for (id, fault) in universe.iter() {
                let ppsfp = engine.run_fault(fault).detect >> lane & 1 == 1;
                let deductive = detected.binary_search(&id).is_ok();
                assert_eq!(
                    ppsfp,
                    deductive,
                    "{} lane {lane}: ppsfp={ppsfp} deductive={deductive}",
                    fault.describe(&c)
                );
            }
        }
    }

    #[test]
    fn set_helpers() {
        let f = |v: &[u32]| v.iter().map(|&x| FaultId(x)).collect::<Vec<_>>();
        assert_eq!(union(&f(&[1, 3]), &f(&[2, 3, 4])), f(&[1, 2, 3, 4]));
        assert_eq!(intersection(&f(&[1, 3, 5]), &f(&[3, 4, 5])), f(&[3, 5]));
        assert_eq!(difference(&f(&[1, 3, 5]), &f(&[3])), f(&[1, 5]));
        assert_eq!(symmetric_difference(&f(&[1, 3]), &f(&[3, 4])), f(&[1, 4]));
        let mut v = f(&[1, 5]);
        insert_sorted(&mut v, FaultId(3));
        insert_sorted(&mut v, FaultId(3));
        assert_eq!(v, f(&[1, 3, 5]));
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn wrong_width_panics() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        deduce(&c, &view, &universe, &"101".parse().unwrap());
    }
}
