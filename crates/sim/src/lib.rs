//! Gate-level logic and fault simulation.
//!
//! Three layers, from low to high:
//!
//! * [`reference`](mod@reference) — a deliberately simple, scalar, obviously-correct
//!   simulator used as ground truth in tests and for one-off faulty
//!   responses during diagnosis.
//! * [`Engine`] — the production simulator: levelized compiled fault-free
//!   simulation plus event-driven **parallel-pattern single-fault
//!   propagation** (PPSFP, 64 patterns per machine word), the workhorse
//!   behind every experiment in the workspace.
//! * [`ResponseMatrix`] — the distilled result dictionaries need: for every
//!   test, the partition of faults into *response classes* (faults with
//!   identical output vectors), with class 0 always the fault-free response.
//!   This is information-lossless for every dictionary-resolution question
//!   while using `O(k·n)` words instead of `O(k·n·m)` bits.
//!
//! # Example
//!
//! ```
//! use sdd_fault::FaultUniverse;
//! use sdd_netlist::{library, CombView};
//! use sdd_sim::ResponseMatrix;
//! use sdd_logic::BitVec;
//!
//! let c17 = library::c17();
//! let view = CombView::new(&c17);
//! let universe = FaultUniverse::enumerate(&c17);
//! let collapsed = universe.collapse_on(&c17);
//! let tests: Vec<BitVec> = vec!["10111".parse()?, "01100".parse()?];
//! let matrix = ResponseMatrix::simulate(&c17, &view, &universe, collapsed.representatives(), &tests);
//! assert_eq!(matrix.test_count(), 2);
//! // Class 0 is the fault-free response; a fault is detected by a test
//! // exactly when its class is nonzero there.
//! # Ok::<(), sdd_logic::ParseBitVecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compactor;
mod cone;
mod corruption;
pub mod deductive;
pub mod eco;
mod engine;
mod parallel;
mod partition;
pub mod reference;
mod response;
mod tester;

pub use compactor::SpaceCompactor;
pub use cone::{contiguous_ranges, OutputCones};
pub use corruption::{CorruptionModel, TruncatedLog};
pub use eco::EcoDelta;
pub use engine::{Engine, FaultEffect};
pub use parallel::available_jobs;
pub use partition::Partition;
pub use response::ResponseMatrix;
pub use tester::{FailEntry, FailLog, Observation, ScanChains};
