//! Space compaction of test responses.
//!
//! Industrial scan designs rarely observe every scan cell directly: an XOR
//! *space compactor* folds the `m` outputs into `c ≪ m` signature bits per
//! test. The paper notes this shrinks `m` — and with it both the baseline
//! storage of a same/different dictionary and the size of a full dictionary
//! — at some cost in resolution (aliasing: two different responses can
//! compact to the same signature).
//!
//! [`SpaceCompactor::apply`] transforms a simulated [`ResponseMatrix`] into
//! the matrix a tester behind the compactor would see, so every dictionary
//! and procedure in the workspace runs unchanged on compacted responses.

use std::collections::HashMap;

use sdd_logic::BitVec;

use crate::ResponseMatrix;

/// An XOR space compactor: each compacted output is the parity of a group
/// of original outputs.
///
/// # Example
///
/// ```
/// use sdd_sim::SpaceCompactor;
///
/// let c = SpaceCompactor::modular(5, 2);
/// assert_eq!(c.compacted_outputs(), 2);
/// // Outputs 0,2,4 fold into signature bit 0; outputs 1,3 into bit 1.
/// assert_eq!(c.groups()[0], vec![0, 2, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceCompactor {
    groups: Vec<Vec<u32>>,
    inputs: usize,
}

impl SpaceCompactor {
    /// Builds a compactor from explicit output groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty, any group is empty, or an output index
    /// is `>= inputs`.
    pub fn new(inputs: usize, groups: Vec<Vec<u32>>) -> Self {
        assert!(!groups.is_empty(), "a compactor needs at least one group");
        for group in &groups {
            assert!(!group.is_empty(), "empty compactor group");
            for &o in group {
                assert!((o as usize) < inputs, "output {o} out of range {inputs}");
            }
        }
        Self { groups, inputs }
    }

    /// The standard modular compactor: output `i` feeds signature bit
    /// `i mod c`.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `c > m`.
    pub fn modular(m: usize, c: usize) -> Self {
        assert!(c > 0 && c <= m, "need 0 < c <= m, got c={c}, m={m}");
        let mut groups = vec![Vec::new(); c];
        for o in 0..m {
            groups[o % c].push(o as u32);
        }
        Self::new(m, groups)
    }

    /// Number of original outputs.
    pub fn original_outputs(&self) -> usize {
        self.inputs
    }

    /// Number of compacted signature bits.
    pub fn compacted_outputs(&self) -> usize {
        self.groups.len()
    }

    /// The output groups.
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Compacts one output vector into its signature.
    ///
    /// # Panics
    ///
    /// Panics if `response.len()` differs from the original output count.
    pub fn compact(&self, response: &BitVec) -> BitVec {
        assert_eq!(response.len(), self.inputs, "response width mismatch");
        self.groups
            .iter()
            .map(|group| {
                group
                    .iter()
                    .fold(false, |acc, &o| acc ^ response.bit(o as usize))
            })
            .collect()
    }

    /// Transforms a simulated response matrix into what the tester sees
    /// behind this compactor. Response classes that alias under compaction
    /// merge, so every dictionary built on the result reflects compaction
    /// losses faithfully.
    ///
    /// Full-dictionary resolution is monotone under compaction (equal
    /// signatures stay equal), but *pass/fail* resolution is not: masking a
    /// detection for only one member of an indistinguished pair splits the
    /// pair. Aliasing genuinely moves information around.
    ///
    /// # Panics
    ///
    /// Panics if the matrix's output count differs from the compactor's.
    pub fn apply(&self, matrix: &ResponseMatrix) -> ResponseMatrix {
        assert_eq!(
            matrix.output_count(),
            self.inputs,
            "matrix output width mismatch"
        );
        let good: Vec<BitVec> = (0..matrix.test_count())
            .map(|t| self.compact(matrix.good_response(t)))
            .collect();
        let responses: Vec<Vec<BitVec>> = (0..matrix.test_count())
            .map(|t| {
                // Compact each class once, then expand per fault.
                let compacted: Vec<BitVec> = (0..matrix.class_count(t) as u32)
                    .map(|class| self.compact(&matrix.response(t, class)))
                    .collect();
                (0..matrix.fault_count())
                    .map(|f| compacted[matrix.class(t, f) as usize].clone())
                    .collect()
            })
            .collect();
        ResponseMatrix::from_responses(good, &responses)
    }

    /// How many response classes of `matrix` alias (merge) under this
    /// compactor, summed over tests — a direct measure of compaction loss.
    pub fn aliased_classes(&self, matrix: &ResponseMatrix) -> usize {
        let mut aliased = 0;
        for t in 0..matrix.test_count() {
            let mut seen: HashMap<BitVec, u32> = HashMap::new();
            for class in 0..matrix.class_count(t) as u32 {
                let sig = self.compact(&matrix.response(t, class));
                if seen.insert(sig, class).is_some() {
                    aliased += 1;
                }
            }
        }
        aliased
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_fault::FaultUniverse;
    use sdd_netlist::{library, CombView};

    fn c17_matrix() -> ResponseMatrix {
        let c = library::c17();
        let view = CombView::new(&c);
        let u = FaultUniverse::enumerate(&c);
        let collapsed = u.collapse_on(&c);
        let tests: Vec<BitVec> = (0u32..32)
            .map(|w| (0..5).map(|i| w >> i & 1 == 1).collect())
            .collect();
        ResponseMatrix::simulate(&c, &view, &u, collapsed.representatives(), &tests)
    }

    #[test]
    fn modular_grouping() {
        let c = SpaceCompactor::modular(7, 3);
        assert_eq!(c.groups(), &[vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
        assert_eq!(c.original_outputs(), 7);
        assert_eq!(c.compacted_outputs(), 3);
    }

    #[test]
    fn compact_is_parity() {
        let c = SpaceCompactor::modular(4, 2);
        let r: BitVec = "1101".parse().unwrap();
        // group 0 = bits 0,2 → 1^0 = 1; group 1 = bits 1,3 → 1^1 = 0.
        assert_eq!(c.compact(&r).to_string(), "10");
    }

    #[test]
    fn identity_compactor_changes_nothing() {
        let matrix = c17_matrix();
        let c = SpaceCompactor::modular(2, 2);
        let compacted = c.apply(&matrix);
        assert_eq!(compacted.output_count(), 2);
        assert_eq!(
            compacted.full_partition().indistinguished_pairs(),
            matrix.full_partition().indistinguished_pairs()
        );
        assert_eq!(c.aliased_classes(&matrix), 0);
        for t in 0..matrix.test_count() {
            assert_eq!(compacted.class_count(t), matrix.class_count(t));
        }
    }

    #[test]
    fn full_compaction_degrades_to_one_parity_bit() {
        let matrix = c17_matrix();
        let c = SpaceCompactor::modular(2, 1);
        let compacted = c.apply(&matrix);
        assert_eq!(compacted.output_count(), 1);
        // Resolution can only get worse (or stay equal).
        assert!(
            compacted.full_partition().indistinguished_pairs()
                >= matrix.full_partition().indistinguished_pairs()
        );
        // With one signature bit, at most two classes exist per test.
        for t in 0..compacted.test_count() {
            assert!(compacted.class_count(t) <= 2);
        }
    }

    #[test]
    fn pass_fail_behind_lossless_compactor_is_unchanged() {
        // An aliasing-free compaction preserves detection: the detect bit is
        // response != good, and distinct classes stay distinct.
        let matrix = c17_matrix();
        let c = SpaceCompactor::modular(2, 2);
        let compacted = c.apply(&matrix);
        assert_eq!(
            compacted.pass_fail_partition().indistinguished_pairs(),
            matrix.pass_fail_partition().indistinguished_pairs()
        );
    }

    #[test]
    fn detection_never_appears_from_nothing() {
        // Compaction can hide detections (even-parity errors) but can never
        // invent one.
        let matrix = c17_matrix();
        let c = SpaceCompactor::modular(2, 1);
        let compacted = c.apply(&matrix);
        for t in 0..matrix.test_count() {
            for f in 0..matrix.fault_count() {
                if compacted.detects(t, f) {
                    assert!(matrix.detects(t, f), "test {t} fault {f}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_group_panics() {
        SpaceCompactor::new(2, vec![vec![0, 2]]);
    }

    #[test]
    #[should_panic(expected = "0 < c <= m")]
    fn zero_groups_panics() {
        SpaceCompactor::modular(4, 0);
    }
}
