//! Partition refinement over fault sets.
//!
//! Diagnostic-resolution questions are partition questions: a dictionary
//! distinguishes two faults exactly when their signatures differ, so the
//! faults a dictionary *cannot* distinguish form the blocks of a partition.
//! The number of indistinguished fault pairs — the paper's figure of merit —
//! is `Σ_G C(|G|, 2)` over the blocks `G`.

use std::collections::HashMap;

/// A partition of `n` faults into groups of mutually indistinguished faults.
///
/// Starts with everything in one group and is *refined* by successive
/// observations (one per test): faults with different observations under any
/// test end up in different groups.
///
/// # Example
///
/// ```
/// use sdd_sim::Partition;
///
/// let mut p = Partition::unit(4);
/// assert_eq!(p.indistinguished_pairs(), 6); // C(4,2)
/// p.refine(&[0, 0, 1, 1]);
/// assert_eq!(p.group_count(), 2);
/// assert_eq!(p.indistinguished_pairs(), 2);
/// p.refine(&[0, 1, 0, 0]);
/// assert_eq!(p.indistinguished_pairs(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    group_of: Vec<u32>,
    group_count: u32,
}

impl Partition {
    /// The trivial partition: all `n` faults in one group.
    pub fn unit(n: usize) -> Self {
        Self {
            group_of: vec![0; n],
            group_count: u32::from(n > 0),
        }
    }

    /// Builds a partition directly from group labels (labels are
    /// renumbered densely).
    pub fn from_labels(labels: &[u32]) -> Self {
        let mut p = Self::unit(labels.len());
        p.refine(labels);
        p
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.group_of.len()
    }

    /// Returns `true` for the empty partition.
    pub fn is_empty(&self) -> bool {
        self.group_of.is_empty()
    }

    /// The dense group label of fault `i`.
    pub fn group_of(&self, i: usize) -> u32 {
        self.group_of[i]
    }

    /// All group labels, indexed by fault.
    pub fn labels(&self) -> &[u32] {
        &self.group_of
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.group_count as usize
    }

    /// Splits groups by a new observation: faults keep sharing a group only
    /// if they agree on `labels` too.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.len()`.
    pub fn refine(&mut self, labels: &[u32]) {
        assert_eq!(labels.len(), self.len(), "label row width mismatch");
        let mut renumber: HashMap<(u32, u32), u32> = HashMap::with_capacity(self.group_count());
        let mut next = 0u32;
        for (slot, &label) in self.group_of.iter_mut().zip(labels) {
            let key = (*slot, label);
            *slot = *renumber.entry(key).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
        }
        self.group_count = next;
    }

    /// Splits groups by a boolean observation (e.g. one pass/fail bit).
    pub fn refine_bits(&mut self, bit: impl Fn(usize) -> bool) {
        let labels: Vec<u32> = (0..self.len()).map(|i| u32::from(bit(i))).collect();
        self.refine(&labels);
    }

    /// Intersects with another partition over the same faults: the result
    /// groups faults together only when both partitions do.
    ///
    /// # Panics
    ///
    /// Panics if the partitions have different lengths.
    pub fn intersect(&self, other: &Self) -> Self {
        let mut merged = self.clone();
        merged.refine(&other.group_of);
        merged
    }

    /// Sizes of all groups.
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::new();
        self.group_sizes_into(&mut sizes);
        sizes
    }

    /// [`group_sizes`](Self::group_sizes) into a caller-owned buffer, so hot
    /// loops (candidate scoring runs once per test per Procedure 1 restart)
    /// can reuse one allocation.
    pub fn group_sizes_into(&self, sizes: &mut Vec<usize>) {
        sizes.clear();
        sizes.resize(self.group_count(), 0);
        for &g in &self.group_of {
            sizes[g as usize] += 1;
        }
    }

    /// Number of fault pairs in the same group — the paper's
    /// "indistinguished fault pairs" metric.
    pub fn indistinguished_pairs(&self) -> u64 {
        self.group_sizes()
            .iter()
            .map(|&s| s as u64 * (s as u64 - 1) / 2)
            .sum()
    }

    /// Members of each group, as fault-index lists.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.group_count()];
        for (fault, &g) in self.group_of.iter().enumerate() {
            groups[g as usize].push(fault);
        }
        groups
    }
}

impl crate::ResponseMatrix {
    /// The partition induced by a *full* dictionary over this matrix: faults
    /// grouped by their complete response-class signature. This is the best
    /// resolution any dictionary built on the same test set can reach.
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_fault::FaultUniverse;
    /// use sdd_netlist::{library, CombView};
    /// use sdd_sim::ResponseMatrix;
    /// use sdd_logic::BitVec;
    ///
    /// let c17 = library::c17();
    /// let view = CombView::new(&c17);
    /// let u = FaultUniverse::enumerate(&c17);
    /// let collapsed = u.collapse_on(&c17);
    /// let tests: Vec<BitVec> = (0u32..32)
    ///     .map(|w| (0..5).map(|i| w >> i & 1 == 1).collect())
    ///     .collect();
    /// let m = ResponseMatrix::simulate(&c17, &view, &u, collapsed.representatives(), &tests);
    /// let p = m.full_partition();
    /// // Exhaustive tests distinguish every pair of collapsed c17 faults.
    /// assert_eq!(p.indistinguished_pairs(), 0);
    /// ```
    pub fn full_partition(&self) -> Partition {
        let mut p = Partition::unit(self.fault_count());
        for test in 0..self.test_count() {
            p.refine(self.classes(test));
        }
        p
    }

    /// The partition induced by a *pass/fail* dictionary: faults grouped by
    /// their detection signature (`b[i][j] = [test j detects fault i]`).
    pub fn pass_fail_partition(&self) -> Partition {
        let mut p = Partition::unit(self.fault_count());
        for test in 0..self.test_count() {
            let row = self.classes(test);
            p.refine_bits(|i| row[i] != 0);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_partition() {
        let p = Partition::unit(5);
        assert_eq!(p.group_count(), 1);
        assert_eq!(p.indistinguished_pairs(), 10);
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert!(Partition::unit(0).is_empty());
        assert_eq!(Partition::unit(0).group_count(), 0);
    }

    #[test]
    fn refine_splits_and_renumbers_densely() {
        let mut p = Partition::unit(6);
        p.refine(&[7, 7, 9, 9, 7, 3]);
        assert_eq!(p.group_count(), 3);
        assert_eq!(p.group_of(0), p.group_of(1));
        assert_eq!(p.group_of(0), p.group_of(4));
        assert_ne!(p.group_of(0), p.group_of(2));
        assert!(p.labels().iter().all(|&g| g < 3), "labels are dense");
    }

    #[test]
    fn refinement_is_monotone() {
        let mut p = Partition::unit(8);
        let mut last = p.indistinguished_pairs();
        let rows = [
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            vec![0, 0, 1, 1, 0, 0, 1, 1],
            vec![0, 0, 0, 0, 0, 0, 0, 0], // no-op row
            vec![0, 1, 0, 1, 0, 1, 0, 1],
        ];
        for row in &rows {
            p.refine(row);
            let now = p.indistinguished_pairs();
            assert!(now <= last);
            last = now;
        }
        assert_eq!(p.group_count(), 8);
        assert_eq!(p.indistinguished_pairs(), 0);
    }

    #[test]
    fn refine_is_order_insensitive_for_final_result() {
        let rows = [vec![0, 1, 0, 1], vec![0, 0, 1, 1]];
        let mut a = Partition::unit(4);
        a.refine(&rows[0]);
        a.refine(&rows[1]);
        let mut b = Partition::unit(4);
        b.refine(&rows[1]);
        b.refine(&rows[0]);
        assert_eq!(a.indistinguished_pairs(), b.indistinguished_pairs());
        assert_eq!(a.group_count(), b.group_count());
    }

    #[test]
    fn from_labels_and_intersect() {
        let a = Partition::from_labels(&[0, 0, 1, 1]);
        let b = Partition::from_labels(&[0, 1, 1, 1]);
        let c = a.intersect(&b);
        assert_eq!(c.group_count(), 3);
        assert_eq!(c.indistinguished_pairs(), 1); // only faults 2,3 together
    }

    #[test]
    fn groups_and_sizes_are_consistent() {
        let p = Partition::from_labels(&[0, 1, 0, 2, 1, 0]);
        let sizes = p.group_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        let groups = p.groups();
        assert_eq!(groups.len(), p.group_count());
        for (g, members) in groups.iter().enumerate() {
            assert_eq!(members.len(), sizes[g]);
            for &m in members {
                assert_eq!(p.group_of(m) as usize, g);
            }
        }
    }

    #[test]
    fn refine_bits_matches_refine() {
        let mut a = Partition::unit(4);
        a.refine_bits(|i| i % 2 == 0);
        let mut b = Partition::unit(4);
        b.refine(&[1, 0, 1, 0]);
        assert_eq!(a.group_count(), b.group_count());
        assert_eq!(a.indistinguished_pairs(), b.indistinguished_pairs());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn refine_wrong_width_panics() {
        Partition::unit(3).refine(&[0, 1]);
    }
}
