//! A scalar, obviously-correct reference simulator.
//!
//! One pattern, plain `bool`s, straight-line evaluation in levelized order.
//! The production [`Engine`](crate::Engine) is checked against this in
//! tests; diagnosis uses it for one-off faulty responses where setting up a
//! pattern block is not worth it.

use sdd_logic::{BitVec, SddError};
use sdd_netlist::{Circuit, CombView, Driver, NetId};

use sdd_fault::{BridgeKind, Defect, Fault, FaultSite};

fn check_pattern_width(view: &CombView, pattern: &BitVec) -> Result<(), SddError> {
    if pattern.len() != view.inputs().len() {
        return Err(SddError::WidthMismatch {
            context: "simulation pattern",
            expected: view.inputs().len(),
            actual: pattern.len(),
        });
    }
    Ok(())
}

/// [`good_response`] with the width precondition surfaced as an error
/// instead of a panic — the entry point for patterns that came from outside
/// the program (tester datalogs, serialized test sets).
///
/// # Errors
///
/// Returns [`SddError::WidthMismatch`] when `pattern.len()` differs from the
/// number of view inputs.
pub fn try_good_response(
    circuit: &Circuit,
    view: &CombView,
    pattern: &BitVec,
) -> Result<BitVec, SddError> {
    check_pattern_width(view, pattern)?;
    Ok(response_with(circuit, view, pattern, None))
}

/// [`faulty_response`] with the width precondition surfaced as an error
/// instead of a panic.
///
/// # Errors
///
/// Returns [`SddError::WidthMismatch`] when `pattern.len()` differs from the
/// number of view inputs.
pub fn try_faulty_response(
    circuit: &Circuit,
    view: &CombView,
    fault: Fault,
    pattern: &BitVec,
) -> Result<BitVec, SddError> {
    check_pattern_width(view, pattern)?;
    Ok(response_with(circuit, view, pattern, Some(fault)))
}

/// [`defect_response`] with the width precondition surfaced as an error
/// instead of a panic.
///
/// # Errors
///
/// Returns [`SddError::WidthMismatch`] when `pattern.len()` differs from the
/// number of view inputs.
pub fn try_defect_response(
    circuit: &Circuit,
    view: &CombView,
    defect: &Defect,
    pattern: &BitVec,
) -> Result<BitVec, SddError> {
    check_pattern_width(view, pattern)?;
    Ok(defect_response(circuit, view, defect, pattern))
}

/// Simulates the fault-free circuit for one pattern.
///
/// The pattern assigns [`CombView::inputs`] in order; the response covers
/// [`CombView::outputs`] in order.
///
/// # Panics
///
/// Panics if `pattern.len()` differs from the number of view inputs.
///
/// # Example
///
/// ```
/// use sdd_netlist::{library, CombView};
/// use sdd_sim::reference;
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let response = reference::good_response(&c17, &view, &"00000".parse()?);
/// assert_eq!(response.len(), 2);
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
pub fn good_response(circuit: &Circuit, view: &CombView, pattern: &BitVec) -> BitVec {
    response_with(circuit, view, pattern, None)
}

/// Simulates the circuit with `fault` injected, for one pattern.
///
/// # Panics
///
/// Panics if `pattern.len()` differs from the number of view inputs.
///
/// # Example
///
/// ```
/// use sdd_fault::{Fault, FaultSite, FaultUniverse};
/// use sdd_netlist::{library, CombView};
/// use sdd_sim::reference;
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let n22 = c17.net("N22").unwrap();
/// let fault = Fault { site: FaultSite::Stem(n22), stuck_at: true };
/// let pattern = "10111".parse()?;
/// let good = reference::good_response(&c17, &view, &pattern);
/// let bad = reference::faulty_response(&c17, &view, fault, &pattern);
/// assert_eq!(bad.bit(0), true, "output N22 is forced to 1");
/// assert_eq!(bad.bit(1), good.bit(1), "output N23 is unaffected");
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
pub fn faulty_response(
    circuit: &Circuit,
    view: &CombView,
    fault: Fault,
    pattern: &BitVec,
) -> BitVec {
    response_with(circuit, view, pattern, Some(fault))
}

fn response_with(
    circuit: &Circuit,
    view: &CombView,
    pattern: &BitVec,
    fault: Option<Fault>,
) -> BitVec {
    assert_eq!(
        pattern.len(),
        view.inputs().len(),
        "pattern width must match view inputs"
    );
    let mut value = vec![false; circuit.net_count()];
    for net in view.order() {
        let net = *net;
        let mut v = match circuit.driver(net) {
            Driver::Input | Driver::Dff { .. } => {
                let pos = view.input_position(net).expect("sources are view inputs");
                pattern.bit(pos)
            }
            Driver::Gate { kind, inputs } => {
                let pins: Vec<bool> = inputs
                    .iter()
                    .enumerate()
                    .map(|(pin, &source)| pin_value(fault, net, pin, value[source.index()]))
                    .collect();
                kind.eval(&pins)
            }
        };
        if let Some(Fault {
            site: FaultSite::Stem(s),
            stuck_at,
        }) = fault
        {
            if s == net {
                v = stuck_at;
            }
        }
        value[net.index()] = v;
    }
    view.outputs().iter().map(|&o| value[o.index()]).collect()
}

/// Simulates the circuit with an arbitrary (possibly out-of-model)
/// [`Defect`] injected, for one pattern.
///
/// Multiple stuck-at lines are forced simultaneously. Bridges resolve the
/// *read* value of both nets from their driven values (wired-AND/OR or
/// dominant); evaluation iterates to a fixpoint, so non-feedback bridges are
/// exact. A feedback bridge that oscillates settles on the last sweep's
/// values (real silicon would be analog or sequential there).
///
/// # Panics
///
/// Panics if `pattern.len()` differs from the number of view inputs.
///
/// # Example
///
/// ```
/// use sdd_fault::{BridgeKind, Defect};
/// use sdd_netlist::{library, CombView};
/// use sdd_sim::reference;
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let bridge = Defect::Bridge {
///     a: c17.net("N10").unwrap(),
///     b: c17.net("N16").unwrap(),
///     kind: BridgeKind::And,
/// };
/// let r = reference::defect_response(&c17, &view, &bridge, &"10111".parse()?);
/// assert_eq!(r.len(), 2);
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
pub fn defect_response(
    circuit: &Circuit,
    view: &CombView,
    defect: &Defect,
    pattern: &BitVec,
) -> BitVec {
    assert_eq!(
        pattern.len(),
        view.inputs().len(),
        "pattern width must match view inputs"
    );
    let faults: &[Fault] = match defect {
        Defect::StuckAt(fault) => std::slice::from_ref(fault),
        Defect::MultipleStuckAt(faults) => faults,
        Defect::Bridge { .. } => &[],
    };
    let bridge = match defect {
        Defect::Bridge { a, b, kind } => Some((*a, *b, *kind)),
        _ => None,
    };

    // Driven values; reads go through the bridge resolution.
    let mut driven = vec![false; circuit.net_count()];
    let read = |driven: &[bool], net: NetId| -> bool {
        let raw = driven[net.index()];
        match bridge {
            Some((a, b, kind)) if net == a || net == b => {
                let (va, vb) = (driven[a.index()], driven[b.index()]);
                match kind {
                    BridgeKind::And => va && vb,
                    BridgeKind::Or => va || vb,
                    BridgeKind::ADominates => va,
                    BridgeKind::BDominates => vb,
                }
            }
            _ => raw,
        }
    };

    // Iterate to fixpoint (one sweep suffices without a bridge; a
    // non-feedback bridge needs at most two).
    let max_sweeps = if bridge.is_some() {
        (view.depth() as usize + 2).max(2)
    } else {
        1
    };
    for _ in 0..max_sweeps {
        let mut changed = false;
        for &net in view.order() {
            let mut v = match circuit.driver(net) {
                Driver::Input | Driver::Dff { .. } => {
                    let pos = view.input_position(net).expect("sources are view inputs");
                    pattern.bit(pos)
                }
                Driver::Gate { kind, inputs } => {
                    let pins: Vec<bool> = inputs
                        .iter()
                        .enumerate()
                        .map(|(pin, &source)| {
                            let wire = read(&driven, source);
                            faults
                                .iter()
                                .find_map(|f| match f.site {
                                    FaultSite::Branch { gate, pin: fp }
                                        if gate == net && fp as usize == pin =>
                                    {
                                        Some(f.stuck_at)
                                    }
                                    _ => None,
                                })
                                .unwrap_or(wire)
                        })
                        .collect();
                    kind.eval(&pins)
                }
            };
            for fault in faults {
                if let FaultSite::Stem(s) = fault.site {
                    if s == net {
                        v = fault.stuck_at;
                    }
                }
            }
            if driven[net.index()] != v {
                driven[net.index()] = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    view.outputs().iter().map(|&o| read(&driven, o)).collect()
}

fn pin_value(fault: Option<Fault>, gate: NetId, pin: usize, wire: bool) -> bool {
    match fault {
        Some(Fault {
            site: FaultSite::Branch { gate: fg, pin: fp },
            stuck_at,
        }) if fg == gate && fp as usize == pin => stuck_at,
        _ => wire,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_fault::FaultUniverse;
    use sdd_netlist::library::{c17, demo_seq};

    fn bv(s: &str) -> BitVec {
        s.parse().unwrap()
    }

    #[test]
    fn c17_truth_spot_checks() {
        // c17: N22 = NAND(N10,N16), N23 = NAND(N16,N19),
        // N10 = NAND(N1,N3), N11 = NAND(N3,N6), N16 = NAND(N2,N11),
        // N19 = NAND(N11,N7). Inputs in order N1,N2,N3,N6,N7.
        let c = c17();
        let view = CombView::new(&c);
        // All zeros: N10=1,N11=1,N16=1,N19=1 → N22 = NAND(1,1)=0, N23=0.
        assert_eq!(good_response(&c, &view, &bv("00000")).to_string(), "00");
        // N1..N7 = 1,0,1,1,1: N10=0, N11=0, N16=1, N19=1 → N22=1, N23=0.
        assert_eq!(good_response(&c, &view, &bv("10111")).to_string(), "10");
        // 0,1,1,0,1: N10=1, N11=1, N16=0, N19=0 → N22=1, N23=1.
        assert_eq!(good_response(&c, &view, &bv("01101")).to_string(), "11");
    }

    #[test]
    fn exhaustive_c17_against_direct_formula() {
        let c = c17();
        let view = CombView::new(&c);
        for word in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| word >> i & 1 == 1).collect();
            let (n1, n2, n3, n6, n7) = (bits[0], bits[1], bits[2], bits[3], bits[4]);
            let n10 = !(n1 && n3);
            let n11 = !(n3 && n6);
            let n16 = !(n2 && n11);
            let n19 = !(n11 && n7);
            let n22 = !(n10 && n16);
            let n23 = !(n16 && n19);
            let pattern: BitVec = bits.iter().copied().collect();
            let response = good_response(&c, &view, &pattern);
            assert_eq!(response.bit(0), n22, "N22 for {pattern}");
            assert_eq!(response.bit(1), n23, "N23 for {pattern}");
        }
    }

    #[test]
    fn stem_fault_on_output_forces_it() {
        let c = c17();
        let view = CombView::new(&c);
        let n22 = c.net("N22").unwrap();
        for stuck_at in [false, true] {
            let fault = Fault {
                site: FaultSite::Stem(n22),
                stuck_at,
            };
            for word in 0u32..32 {
                let pattern: BitVec = (0..5).map(|i| word >> i & 1 == 1).collect();
                let r = faulty_response(&c, &view, fault, &pattern);
                assert_eq!(r.bit(0), stuck_at);
            }
        }
    }

    #[test]
    fn branch_fault_differs_from_stem_fault() {
        // N11 fans out to N16 and N19. Branch N11->N16 s-a-1 corrupts only
        // the N16 side; stem N11 s-a-1 corrupts both.
        let c = c17();
        let view = CombView::new(&c);
        let n16 = c.net("N16").unwrap();
        let branch = Fault {
            site: FaultSite::Branch { gate: n16, pin: 1 },
            stuck_at: true,
        };
        let stem = Fault {
            site: FaultSite::Stem(c.net("N11").unwrap()),
            stuck_at: true,
        };
        // Inputs N1,N2,N3,N6,N7 = 0 0 1 1 1: N11 = 0 normally. The stem
        // fault corrupts both N16's and N19's pins; the branch fault only
        // N16's, so the two faults disagree at N23 (via N19).
        let pattern = bv("00111");
        let rb = faulty_response(&c, &view, branch, &pattern);
        let rs = faulty_response(&c, &view, stem, &pattern);
        let good = good_response(&c, &view, &pattern);
        assert_ne!(rb, rs, "branch and stem faults behave differently");
        assert_ne!(rs, good);
    }

    #[test]
    fn undetectable_when_effect_masked() {
        // N10 s-a-1 with N1=0: N10 is already 1, no effect anywhere.
        let c = c17();
        let view = CombView::new(&c);
        let fault = Fault {
            site: FaultSite::Stem(c.net("N10").unwrap()),
            stuck_at: true,
        };
        let pattern = bv("00000");
        assert_eq!(
            faulty_response(&c, &view, fault, &pattern),
            good_response(&c, &view, &pattern)
        );
    }

    #[test]
    fn sequential_view_exposes_state_faults() {
        let c = demo_seq();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        // Some fault must be detectable through a pseudo output only.
        let width = view.inputs().len();
        let mut found = false;
        for (_, fault) in universe.iter() {
            for word in 0u32..(1 << width) {
                let pattern: BitVec = (0..width).map(|i| word >> i & 1 == 1).collect();
                let good = good_response(&c, &view, &pattern);
                let bad = faulty_response(&c, &view, fault, &pattern);
                if good != bad {
                    // Detected: difference may be on PPO bits (index ≥ #PO).
                    if (c.output_count()..good.len()).any(|o| good.bit(o) != bad.bit(o)) {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "some fault is observable only through scan cells");
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn wrong_width_panics() {
        let c = c17();
        let view = CombView::new(&c);
        good_response(&c, &view, &bv("101"));
    }

    #[test]
    fn try_variants_return_errors_not_panics() {
        let c = c17();
        let view = CombView::new(&c);
        let narrow = bv("101");
        assert!(matches!(
            try_good_response(&c, &view, &narrow),
            Err(SddError::WidthMismatch {
                expected: 5,
                actual: 3,
                ..
            })
        ));
        let fault = Fault {
            site: FaultSite::Stem(c.net("N22").unwrap()),
            stuck_at: true,
        };
        assert!(try_faulty_response(&c, &view, fault, &narrow).is_err());
        assert!(try_defect_response(&c, &view, &Defect::StuckAt(fault), &narrow).is_err());
        // Well-formed patterns agree with the panicking entry points.
        let pattern = bv("10111");
        assert_eq!(
            try_good_response(&c, &view, &pattern).unwrap(),
            good_response(&c, &view, &pattern)
        );
        assert_eq!(
            try_faulty_response(&c, &view, fault, &pattern).unwrap(),
            faulty_response(&c, &view, fault, &pattern)
        );
    }

    #[test]
    fn defect_single_stuck_at_matches_faulty_response() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        for (_, fault) in universe.iter() {
            for word in 0u32..32 {
                let pattern: BitVec = (0..5).map(|i| word >> i & 1 == 1).collect();
                assert_eq!(
                    defect_response(&c, &view, &Defect::StuckAt(fault), &pattern),
                    faulty_response(&c, &view, fault, &pattern)
                );
            }
        }
    }

    #[test]
    fn multiple_stuck_at_combines_effects() {
        // Force both outputs: N22 s-a-1 and N23 s-a-0 together.
        let c = c17();
        let view = CombView::new(&c);
        let defect = Defect::MultipleStuckAt(vec![
            Fault {
                site: FaultSite::Stem(c.net("N22").unwrap()),
                stuck_at: true,
            },
            Fault {
                site: FaultSite::Stem(c.net("N23").unwrap()),
                stuck_at: false,
            },
        ]);
        for word in 0u32..32 {
            let pattern: BitVec = (0..5).map(|i| word >> i & 1 == 1).collect();
            let r = defect_response(&c, &view, &defect, &pattern);
            assert_eq!(r.to_string(), "10");
        }
    }

    #[test]
    fn wired_and_bridge_resolution() {
        // Bridge N10 and N11 (siblings, no feedback) wired-AND: both nets
        // read N10 & N11 everywhere they are consumed.
        let c = c17();
        let view = CombView::new(&c);
        let a = c.net("N10").unwrap();
        let b = c.net("N11").unwrap();
        let defect = Defect::Bridge {
            a,
            b,
            kind: BridgeKind::And,
        };
        for word in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| word >> i & 1 == 1).collect();
            let (n1, n2, n3, n6, n7) = (bits[0], bits[1], bits[2], bits[3], bits[4]);
            let n10 = !(n1 && n3);
            let n11 = !(n3 && n6);
            let shorted = n10 && n11;
            let n16 = !(n2 && shorted);
            let n19 = !(shorted && n7);
            let n22 = !(shorted && n16);
            let n23 = !(n16 && n19);
            let pattern: BitVec = bits.iter().copied().collect();
            let r = defect_response(&c, &view, &defect, &pattern);
            assert_eq!(r.bit(0), n22, "N22 for {pattern}");
            assert_eq!(r.bit(1), n23, "N23 for {pattern}");
        }
    }

    #[test]
    fn dominant_bridge_is_asymmetric() {
        let c = c17();
        let view = CombView::new(&c);
        let a = c.net("N10").unwrap();
        let b = c.net("N11").unwrap();
        let ad = Defect::Bridge {
            a,
            b,
            kind: BridgeKind::ADominates,
        };
        let bd = Defect::Bridge {
            a,
            b,
            kind: BridgeKind::BDominates,
        };
        // Find a pattern where they differ (N10 != N11 and both observable).
        let mut differ = false;
        for word in 0u32..32 {
            let pattern: BitVec = (0..5).map(|i| word >> i & 1 == 1).collect();
            if defect_response(&c, &view, &ad, &pattern)
                != defect_response(&c, &view, &bd, &pattern)
            {
                differ = true;
                break;
            }
        }
        assert!(differ, "dominance direction must matter somewhere");
    }

    #[test]
    fn bridge_between_agreeing_nets_is_benign() {
        // A net bridged with itself — degenerate but legal — changes nothing.
        let c = c17();
        let view = CombView::new(&c);
        let a = c.net("N16").unwrap();
        let defect = Defect::Bridge {
            a,
            b: a,
            kind: BridgeKind::And,
        };
        for word in 0u32..32 {
            let pattern: BitVec = (0..5).map(|i| word >> i & 1 == 1).collect();
            assert_eq!(
                defect_response(&c, &view, &defect, &pattern),
                good_response(&c, &view, &pattern)
            );
        }
    }
}
