//! Deterministic corruption of tester datalogs.
//!
//! Real datalogs are imperfect: fail memories overflow and truncate the log,
//! masked scan cells read `X`, and marginal strobes flip bits. Diagnosis
//! robustness can only be tested against those defects if they can be
//! *reproduced*, so [`CorruptionModel`] injects all three deterministically
//! from a seed:
//!
//! * **truncation** — only the first `max_fail_entries` failing observations
//!   survive, exactly like a full fail memory;
//! * **masking** — each surviving observation bit is independently replaced
//!   by unknown with probability `mask_rate`;
//! * **bit flips** — each surviving known bit is independently flipped with
//!   probability `flip_rate`.
//!
//! The output is per-test [`MaskedBitVec`]s: the ternary observations the
//! noise-tolerant diagnosis entry points in `sdd-core` consume.

use sdd_logic::{BitVec, MaskedBitVec, Prng, SddError};
use sdd_netlist::Circuit;

use crate::{FailLog, ScanChains};

/// A deterministic model of datalog corruption.
///
/// The default model is *clean*: no truncation, no masking, no flips — under
/// it [`observe`](CorruptionModel::observe) returns fully-known vectors equal
/// to the true observed responses.
///
/// # Example
///
/// ```
/// use sdd_netlist::library::demo_seq;
/// use sdd_netlist::CombView;
/// use sdd_sim::{reference, CorruptionModel, ScanChains};
/// use sdd_logic::BitVec;
///
/// let c = demo_seq();
/// let view = CombView::new(&c);
/// let chains = ScanChains::single(&c);
/// let width = view.inputs().len();
/// let tests: Vec<BitVec> = vec![BitVec::zeros(width), !&BitVec::zeros(width)];
/// let expected: Vec<BitVec> = tests
///     .iter()
///     .map(|t| reference::good_response(&c, &view, t))
///     .collect();
/// let clean = CorruptionModel::clean()
///     .observe(&c, &chains, &expected, &expected)?;
/// assert!(clean.iter().all(|o| o.is_fully_known()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionModel {
    /// Fail-memory capacity: observations past this many logged fails are
    /// lost. `None` keeps the whole log.
    pub max_fail_entries: Option<usize>,
    /// Probability that a surviving observation bit reads unknown.
    pub mask_rate: f64,
    /// Probability that a surviving known bit is flipped.
    pub flip_rate: f64,
    /// Seed for the masking and flip draws.
    pub seed: u64,
}

impl Default for CorruptionModel {
    fn default() -> Self {
        Self::clean()
    }
}

impl CorruptionModel {
    /// A model that corrupts nothing.
    pub fn clean() -> Self {
        Self {
            max_fail_entries: None,
            mask_rate: 0.0,
            flip_rate: 0.0,
            seed: 0,
        }
    }

    /// Sets the fail-memory capacity.
    pub fn with_truncation(mut self, max_fail_entries: usize) -> Self {
        self.max_fail_entries = Some(max_fail_entries);
        self
    }

    /// Sets the per-bit masking probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn with_mask_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "mask rate {rate} outside [0, 1]"
        );
        self.mask_rate = rate;
        self
    }

    /// Sets the per-bit flip probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn with_flip_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "flip rate {rate} outside [0, 1]"
        );
        self.flip_rate = rate;
        self
    }

    /// Sets the seed for masking and flip draws.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Truncates a fail log to the fail-memory capacity.
    pub fn truncate(&self, log: &FailLog) -> TruncatedLog {
        match self.max_fail_entries {
            Some(keep) if keep < log.entries.len() => TruncatedLog {
                cut_test: Some(log.entries[keep].test),
                log: FailLog {
                    entries: log.entries[..keep].to_vec(),
                },
                complete: false,
            },
            _ => TruncatedLog {
                log: log.clone(),
                complete: true,
                cut_test: None,
            },
        }
    }

    /// The full corruption pipeline: logs the fails of `observed` against
    /// `expected`, truncates the log, reconstructs ternary responses, then
    /// applies masking and bit flips.
    ///
    /// # Errors
    ///
    /// Returns [`SddError::CountMismatch`] when `observed` and `expected`
    /// have different lengths, and [`SddError::WidthMismatch`] when any pair
    /// of responses differs in width.
    pub fn observe(
        &self,
        circuit: &Circuit,
        chains: &ScanChains,
        observed: &[BitVec],
        expected: &[BitVec],
    ) -> Result<Vec<MaskedBitVec>, SddError> {
        if observed.len() != expected.len() {
            return Err(SddError::CountMismatch {
                context: "responses per test",
                expected: expected.len(),
                actual: observed.len(),
            });
        }
        for (test, (seen, good)) in observed.iter().zip(expected).enumerate() {
            if seen.len() != good.len() {
                return Err(SddError::WidthMismatch {
                    context: "observed response width",
                    expected: good.len(),
                    actual: seen.len(),
                });
            }
            let _ = test;
        }
        let log = FailLog::from_responses(circuit, chains, observed, expected);
        let truncated = self.truncate(&log);
        let mut responses = truncated.reconstruct(circuit, chains, expected);
        self.degrade(&mut responses);
        Ok(responses)
    }

    /// Applies masking and bit flips in place (seeded, deterministic).
    pub fn degrade(&self, responses: &mut [MaskedBitVec]) {
        if self.mask_rate == 0.0 && self.flip_rate == 0.0 {
            return;
        }
        let mut rng = Prng::seed_from_u64(self.seed);
        for response in responses.iter_mut() {
            for i in 0..response.len() {
                if response.bit(i).is_none() {
                    continue;
                }
                if self.mask_rate > 0.0 && rng.gen_bool(self.mask_rate) {
                    response.mask(i);
                } else if self.flip_rate > 0.0 && rng.gen_bool(self.flip_rate) {
                    response.flip(i);
                }
            }
        }
    }
}

/// A fail log after (possible) fail-memory truncation, remembering where the
/// cut fell so reconstruction can tell known bits from lost ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncatedLog {
    /// The surviving entries.
    pub log: FailLog,
    /// `true` when nothing was dropped.
    pub complete: bool,
    /// The test index of the first dropped entry, when truncated.
    pub cut_test: Option<u32>,
}

impl TruncatedLog {
    /// Reconstructs ternary observed responses from the surviving log.
    ///
    /// Knowledge follows from what the tester definitely saw:
    ///
    /// * tests strictly before the cut logged every fail — fully known;
    /// * the cut test's surviving fail entries are known (they were logged),
    ///   its other bits are unknown (more fails may have been dropped);
    /// * tests after the cut are fully unknown.
    ///
    /// With a complete log every test is fully known and the values equal
    /// [`FailLog::to_responses`].
    pub fn reconstruct(
        &self,
        circuit: &Circuit,
        chains: &ScanChains,
        expected: &[BitVec],
    ) -> Vec<MaskedBitVec> {
        let values = self.log.to_responses(circuit, chains, expected);
        match self.cut_test {
            None => values.into_iter().map(MaskedBitVec::from_known).collect(),
            Some(cut) => {
                let mut responses: Vec<MaskedBitVec> = values
                    .into_iter()
                    .enumerate()
                    .map(|(test, v)| {
                        if (test as u32) < cut {
                            MaskedBitVec::from_known(v)
                        } else {
                            MaskedBitVec::unknown(v.len())
                        }
                    })
                    .collect();
                // The cut test's logged fails are certain: the tester saw
                // them mismatch the expected value.
                for entry in &self.log.entries {
                    if entry.test != cut {
                        continue;
                    }
                    if let Some(output) = chains.output_of(circuit, entry.observation) {
                        if let Some(response) = responses.get_mut(entry.test as usize) {
                            if output < response.len() {
                                let good = expected[entry.test as usize].bit(output);
                                response.set_known(output, !good);
                            }
                        }
                    }
                }
                responses
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sdd_fault::FaultUniverse;
    use sdd_logic::Prng;
    use sdd_netlist::generator::{generate, Profile};
    use sdd_netlist::library::demo_seq;
    use sdd_netlist::CombView;

    fn all_patterns(width: usize) -> Vec<BitVec> {
        (0u32..1 << width)
            .map(|w| (0..width).map(|i| w >> i & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn clean_model_reproduces_responses_exactly() {
        let c = demo_seq();
        let view = CombView::new(&c);
        let chains = ScanChains::single(&c);
        let universe = FaultUniverse::enumerate(&c);
        let tests = all_patterns(view.inputs().len());
        let expected: Vec<BitVec> = tests
            .iter()
            .map(|t| reference::good_response(&c, &view, t))
            .collect();
        let fault = universe.fault(sdd_fault::FaultId(1));
        let observed: Vec<BitVec> = tests
            .iter()
            .map(|t| reference::faulty_response(&c, &view, fault, t))
            .collect();
        let masked = CorruptionModel::clean()
            .observe(&c, &chains, &observed, &expected)
            .unwrap();
        assert_eq!(masked.len(), observed.len());
        for (m, o) in masked.iter().zip(&observed) {
            assert!(m.is_fully_known());
            assert_eq!(m.values(), o);
        }
    }

    #[test]
    fn mismatched_inputs_are_errors_not_panics() {
        let c = demo_seq();
        let chains = ScanChains::single(&c);
        let model = CorruptionModel::clean();
        let e = model
            .observe(&c, &chains, &[BitVec::zeros(4)], &[])
            .unwrap_err();
        assert!(matches!(e, SddError::CountMismatch { .. }));
        let e = model
            .observe(&c, &chains, &[BitVec::zeros(3)], &[BitVec::zeros(4)])
            .unwrap_err();
        assert!(matches!(e, SddError::WidthMismatch { .. }));
    }

    #[test]
    fn truncation_marks_completeness_and_cut() {
        let log = FailLog {
            entries: vec![
                FailEntry {
                    test: 0,
                    observation: Observation::PrimaryOutput(0),
                },
                FailEntry {
                    test: 2,
                    observation: Observation::PrimaryOutput(1),
                },
                FailEntry {
                    test: 2,
                    observation: Observation::PrimaryOutput(3),
                },
                FailEntry {
                    test: 5,
                    observation: Observation::PrimaryOutput(0),
                },
            ],
        };
        let full = CorruptionModel::clean().truncate(&log);
        assert!(full.complete);
        assert_eq!(full.log, log);

        let cut = CorruptionModel::clean().with_truncation(2).truncate(&log);
        assert!(!cut.complete);
        assert_eq!(cut.cut_test, Some(2));
        assert_eq!(cut.log.entries.len(), 2);
    }

    use crate::{FailEntry, Observation};

    /// The load-bearing property: under any truncation point, every bit the
    /// truncated reconstruction claims to know agrees with the responses
    /// reconstructed from the complete log.
    #[test]
    fn truncated_reconstruction_agrees_with_full_log_on_known_bits() {
        let mut rng = Prng::seed_from_u64(0xC0);
        for case in 0..24 {
            let profile = Profile {
                name: "corrupt",
                inputs: rng.gen_range(2..5),
                outputs: rng.gen_range(1..4),
                dffs: rng.gen_range(1..5),
                gates: rng.gen_range(8..40),
            };
            let c = generate(&profile, 0xBEEF + case);
            let view = CombView::new(&c);
            let chains = ScanChains::balanced(&c, rng.gen_range(1..3));
            let universe = FaultUniverse::enumerate(&c);
            let tests = all_patterns(view.inputs().len());
            let expected: Vec<BitVec> = tests
                .iter()
                .map(|t| reference::good_response(&c, &view, t))
                .collect();
            let fault = universe.fault(sdd_fault::FaultId(
                (rng.next_u64() % universe.len() as u64) as u32,
            ));
            let observed: Vec<BitVec> = tests
                .iter()
                .map(|t| reference::faulty_response(&c, &view, fault, t))
                .collect();
            let log = FailLog::from_responses(&c, &chains, &observed, &expected);
            let full = log.to_responses(&c, &chains, &expected);
            assert_eq!(full, observed, "lossless baseline");
            for keep in 0..=log.entries.len() {
                let truncated = CorruptionModel::clean()
                    .with_truncation(keep)
                    .truncate(&log);
                let masked = truncated.reconstruct(&c, &chains, &expected);
                assert_eq!(masked.len(), full.len());
                for (test, (m, f)) in masked.iter().zip(&full).enumerate() {
                    for i in 0..m.len() {
                        if let Some(bit) = m.bit(i) {
                            assert_eq!(
                                bit,
                                f.bit(i),
                                "case {case} keep {keep} test {test} bit {i}"
                            );
                        }
                    }
                }
                // Truncating to the full length loses nothing.
                if keep == log.entries.len() {
                    assert!(masked.iter().all(MaskedBitVec::is_fully_known));
                }
            }
        }
    }

    #[test]
    fn masking_and_flips_are_deterministic_and_bounded() {
        let c = demo_seq();
        let view = CombView::new(&c);
        let chains = ScanChains::single(&c);
        let tests = all_patterns(view.inputs().len());
        let expected: Vec<BitVec> = tests
            .iter()
            .map(|t| reference::good_response(&c, &view, t))
            .collect();
        let model = CorruptionModel::clean()
            .with_mask_rate(0.3)
            .with_flip_rate(0.1)
            .with_seed(42);
        let a = model.observe(&c, &chains, &expected, &expected).unwrap();
        let b = model.observe(&c, &chains, &expected, &expected).unwrap();
        assert_eq!(a, b, "same seed, same corruption");
        let total: usize = a.iter().map(MaskedBitVec::len).sum();
        let unknown: usize = a.iter().map(MaskedBitVec::unknown_count).sum();
        assert!(unknown > 0, "30% masking should hit something");
        assert!(unknown < total, "30% masking should not hit everything");
        let other = model
            .with_seed(43)
            .observe(&c, &chains, &expected, &expected)
            .unwrap();
        assert_ne!(a, other, "different seed, different corruption");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rate_panics_at_construction() {
        let _ = CorruptionModel::clean().with_mask_rate(1.5);
    }
}
