//! Worker-count selection for parallel construction.
//!
//! Every parallel entry point in the workspace takes an explicit `jobs`
//! count rather than consulting the machine itself, so library results are
//! reproducible by construction and the caller (CLI flag, benchmark, test)
//! decides how much hardware to use. [`available_jobs`] is the conventional
//! default for those callers: the number of hardware threads the OS grants
//! this process, clamped to at least 1.

/// The number of worker threads to use when the caller asked for "all the
/// hardware": `std::thread::available_parallelism()`, or 1 when the OS
/// cannot say (the conservative choice — serial construction is always
/// correct, just slower).
///
/// # Example
///
/// ```
/// assert!(sdd_sim::available_jobs() >= 1);
/// ```
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    #[test]
    fn at_least_one_job() {
        assert!(super::available_jobs() >= 1);
    }
}
