//! Output-cone reachability: which view outputs each net — and therefore
//! each fault — can possibly affect.
//!
//! A stuck-at fault only ever corrupts outputs in the forward cone of its
//! site net, so the cone is the natural partitioning key for sharded
//! dictionary storage: faults whose cones share outputs belong together,
//! and a shard's union cone tells a diagnosis service which failing outputs
//! could implicate it. Reachability follows combinational edges only —
//! flip-flop data nets are pseudo outputs under the full-scan assumption,
//! so a cone never crosses the sequential boundary.
//!
//! # Example
//!
//! ```
//! use sdd_fault::FaultUniverse;
//! use sdd_netlist::{library, CombView};
//! use sdd_sim::OutputCones;
//!
//! let c17 = library::c17();
//! let view = CombView::new(&c17);
//! let cones = OutputCones::compute(&c17, &view);
//! let universe = FaultUniverse::enumerate(&c17);
//! let collapsed = universe.collapse_on(&c17);
//! // Every collapsed fault reaches at least one output.
//! for &id in collapsed.representatives() {
//!     assert!(cones.fault_cone(&universe, id).any());
//! }
//! ```

use std::ops::Range;

use sdd_fault::{FaultId, FaultUniverse};
use sdd_logic::BitVec;
use sdd_netlist::{Circuit, CombView, Driver, NetId};

/// Per-net output reachability over a full-scan combinational view: bit `o`
/// of a net's cone is set when the net can affect view output `o` (primary
/// outputs first, then flip-flop data nets, in [`CombView::outputs`] order).
#[derive(Debug, Clone)]
pub struct OutputCones {
    /// Packed cone rows, `words_per` words per net, indexed by net id.
    cones: Vec<u64>,
    words_per: usize,
    outputs: usize,
}

impl OutputCones {
    /// Computes every net's output cone with one reverse-topological sweep:
    /// each net's cone is its own output positions unioned with the cones of
    /// every gate it feeds.
    pub fn compute(circuit: &Circuit, view: &CombView) -> Self {
        let outputs = view.outputs().len();
        let words_per = outputs.div_ceil(64).max(1);
        let mut cones = vec![0u64; circuit.net_count() * words_per];
        for (position, &net) in view.outputs().iter().enumerate() {
            cones[net.index() * words_per + position / 64] |= 1u64 << (position % 64);
        }
        // view.order() lists fan-ins before consumers, so walking it in
        // reverse visits every consumer before the nets that feed it. Net
        // ids carry no topological meaning, so the gate's finished row is
        // copied out before being OR-ed into its fan-ins.
        let mut row = vec![0u64; words_per];
        for &net in view.order().iter().rev() {
            if let Driver::Gate { inputs, .. } = circuit.driver(net) {
                row.copy_from_slice(&cones[net.index() * words_per..][..words_per]);
                for &source in inputs {
                    let start = source.index() * words_per;
                    for (w, &bits) in cones[start..start + words_per].iter_mut().zip(&row) {
                        *w |= bits;
                    }
                }
            }
        }
        Self {
            cones,
            words_per,
            outputs,
        }
    }

    /// Number of view outputs `m` (the width of every cone).
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    fn words(&self, net: NetId) -> &[u64] {
        &self.cones[net.index() * self.words_per..(net.index() + 1) * self.words_per]
    }

    /// The outputs reachable from `net`, as an `m`-bit vector.
    pub fn net_cone(&self, net: NetId) -> BitVec {
        BitVec::from_words(self.words(net).to_vec(), self.outputs)
            .expect("cone rows only set bits below the output count")
    }

    /// The outputs a fault can corrupt: the cone of its site net (the
    /// branch's feeding net or the stem itself).
    pub fn fault_cone(&self, universe: &FaultUniverse, id: FaultId) -> BitVec {
        self.net_cone(universe.site_net(id))
    }

    /// [`fault_cone`](Self::fault_cone) for a whole fault list, index
    /// aligned — the per-fault cone table volume diagnosis clusters
    /// device verdicts with.
    pub fn fault_cones(&self, universe: &FaultUniverse, faults: &[FaultId]) -> Vec<BitVec> {
        faults
            .iter()
            .map(|&id| self.fault_cone(universe, id))
            .collect()
    }

    /// The lowest output position a fault can reach, or `m` for a fault
    /// that reaches none — the sort key cone partitioning groups by.
    fn lowest_output(&self, universe: &FaultUniverse, id: FaultId) -> usize {
        let words = self.words(universe.site_net(id));
        for (w, &bits) in words.iter().enumerate() {
            if bits != 0 {
                return w * 64 + bits.trailing_zeros() as usize;
            }
        }
        self.outputs
    }

    /// Partitions `faults` into `shards` contiguous, non-empty ranges whose
    /// boundaries snap to cone changes: each cut lands where adjacent faults
    /// stop sharing their lowest reachable output, as close to an even split
    /// as the cone structure allows. Where no cone boundary exists nearby,
    /// the cut degrades to the plain contiguous-chunk position, so the
    /// result is always a valid cover of `0..faults.len()`.
    pub fn shard_ranges(
        &self,
        universe: &FaultUniverse,
        faults: &[FaultId],
        shards: usize,
    ) -> Vec<Range<usize>> {
        let n = faults.len();
        let shards = shards.clamp(1, n.max(1));
        if n == 0 {
            return Vec::new();
        }
        let keys: Vec<usize> = faults
            .iter()
            .map(|&id| self.lowest_output(universe, id))
            .collect();
        // Snap each even-split target to the nearest cone boundary within a
        // quarter-chunk window; prefer the closest, then the earlier one.
        let window = (n / (shards * 4)).max(1);
        let mut cuts = Vec::with_capacity(shards + 1);
        cuts.push(0);
        for s in 1..shards {
            let target = s * n / shards;
            let floor = cuts.last().unwrap() + 1;
            let lo = target.saturating_sub(window).max(floor);
            let hi = (target + window).min(n - (shards - s));
            let snapped = (lo..=hi)
                .filter(|&p| keys[p] != keys[p - 1])
                .min_by_key(|&p| (p.abs_diff(target), p))
                .unwrap_or_else(|| target.clamp(floor, hi.max(floor)));
            cuts.push(snapped);
        }
        cuts.push(n);
        cuts.windows(2).map(|w| w[0]..w[1]).collect()
    }

    /// The union cone of a fault range — what a shard manifest records so a
    /// service can test whether failing outputs could implicate the shard.
    pub fn shard_cone(
        &self,
        universe: &FaultUniverse,
        faults: &[FaultId],
        range: Range<usize>,
    ) -> BitVec {
        let mut union = vec![0u64; self.words_per];
        for &id in &faults[range] {
            for (w, &bits) in union.iter_mut().zip(self.words(universe.site_net(id))) {
                *w |= bits;
            }
        }
        BitVec::from_words(union, self.outputs).expect("cone rows only set bits below the outputs")
    }
}

/// Plain even contiguous chunks of `0..n` — the partitioning used when no
/// circuit (and so no cone information) is available.
pub fn contiguous_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    (0..shards)
        .map(|s| s * n / shards..(s + 1) * n / shards)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_netlist::library;

    fn c17_fixture() -> (Circuit, CombView, FaultUniverse, Vec<FaultId>) {
        let circuit = library::c17();
        let view = CombView::new(&circuit);
        let universe = FaultUniverse::enumerate(&circuit);
        let collapsed = universe.collapse_on(&circuit);
        let faults = collapsed.representatives().to_vec();
        (circuit, view, universe, faults)
    }

    #[test]
    fn output_stems_reach_exactly_themselves() {
        let (circuit, view, _, _) = c17_fixture();
        let cones = OutputCones::compute(&circuit, &view);
        for (position, &net) in view.outputs().iter().enumerate() {
            let cone = cones.net_cone(net);
            assert!(cone.bit(position), "output reaches itself");
        }
    }

    #[test]
    fn every_collapsed_fault_reaches_an_output() {
        let (circuit, view, universe, faults) = c17_fixture();
        let cones = OutputCones::compute(&circuit, &view);
        for &id in &faults {
            assert!(cones.fault_cone(&universe, id).any(), "{id:?}");
        }
    }

    #[test]
    fn cones_respect_the_sequential_boundary() {
        // demo_seq has flip-flops; a DFF data net is a pseudo output whose
        // cone must not leak through the flip-flop into the next frame.
        let circuit = library::demo_seq();
        let view = CombView::new(&circuit);
        let cones = OutputCones::compute(&circuit, &view);
        for &q in circuit.dffs() {
            let cone = cones.net_cone(q);
            // The DFF *output* net is a pseudo input; whatever it reaches is
            // combinational from there, and never includes nothing-at-all
            // unless the flop is dangling.
            assert_eq!(cone.len(), view.outputs().len());
        }
    }

    #[test]
    fn shard_ranges_cover_and_stay_contiguous() {
        let (circuit, view, universe, faults) = c17_fixture();
        let cones = OutputCones::compute(&circuit, &view);
        for shards in [1, 2, 3, faults.len(), faults.len() + 5] {
            let ranges = cones.shard_ranges(&universe, &faults, shards);
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, faults.len());
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "contiguous");
            }
            assert!(ranges.iter().all(|r| !r.is_empty()), "no empty shard");
            assert!(ranges.len() <= shards.max(1));
        }
    }

    #[test]
    fn shard_cone_is_the_union_of_member_cones() {
        let (circuit, view, universe, faults) = c17_fixture();
        let cones = OutputCones::compute(&circuit, &view);
        let union = cones.shard_cone(&universe, &faults, 0..faults.len());
        for &id in &faults {
            let cone = cones.fault_cone(&universe, id);
            for o in 0..cone.len() {
                if cone.bit(o) {
                    assert!(union.bit(o));
                }
            }
        }
    }

    #[test]
    fn contiguous_fallback_covers_everything() {
        assert!(contiguous_ranges(0, 4).is_empty());
        let ranges = contiguous_ranges(10, 3);
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 10);
        let total: usize = ranges.iter().map(ExactSizeIterator::len).sum();
        assert_eq!(total, 10);
        assert_eq!(contiguous_ranges(2, 5).len(), 2, "clamped to fault count");
    }
}
