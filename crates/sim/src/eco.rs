//! ECO (engineering change order) deltas: which outputs, and therefore
//! which faults, a netlist edit can possibly affect.
//!
//! The same cone argument that makes sharding exact makes patching exact.
//! A view output's value — fault-free *or* faulty — is a function of the
//! drivers in its input cone plus the injected fault, so an output none of
//! whose cone nets changed produces byte-identical responses for **every**
//! fault and test. Dually, a fault whose output cone misses every dirty
//! output keeps its exact diff set under every test: its effects only ever
//! surface at outputs whose computation did not change. An ECO therefore
//! splits the dictionary's signature matrix into a clean region that can be
//! reused verbatim and a dirty `faults × tests` region small enough to
//! re-simulate, which is what `sdd patch` exploits instead of rebuilding.
//!
//! Both the old and the new circuit's cones are consulted, so rewiring ECOs
//! (which move reachability, not just gate functions) stay sound.

use sdd_fault::{FaultId, FaultUniverse};
use sdd_logic::{BitVec, SddError};
use sdd_netlist::{Circuit, CombView, NetId};

use crate::OutputCones;

/// The nets whose drivers differ between two interface-identical circuits.
///
/// The interface check is strict — same net count, same name per net id,
/// same input/output/flip-flop lists — because everything downstream
/// (fault ids, test vectors, signature rows) is indexed by those ids; an
/// ECO that renames or adds nets needs a full rebuild, and the typed error
/// says so.
///
/// # Errors
///
/// [`SddError::Invalid`] when the circuits' interfaces differ.
pub fn changed_nets(old: &Circuit, new: &Circuit) -> Result<Vec<NetId>, SddError> {
    if old.net_count() != new.net_count() {
        return Err(SddError::invalid(format!(
            "ECO changed the net count ({} -> {}): not patchable, rebuild the dictionary",
            old.net_count(),
            new.net_count()
        )));
    }
    for net in old.nets() {
        if old.net_name(net) != new.net_name(net) {
            return Err(SddError::invalid(format!(
                "ECO renamed net {} ({:?} -> {:?}): not patchable, rebuild the dictionary",
                net.0,
                old.net_name(net),
                new.net_name(net)
            )));
        }
    }
    if old.inputs() != new.inputs() || old.outputs() != new.outputs() || old.dffs() != new.dffs() {
        return Err(SddError::invalid(
            "ECO changed the input/output/flip-flop interface: not patchable, \
             rebuild the dictionary",
        ));
    }
    Ok(old
        .nets()
        .filter(|&net| old.driver(net) != new.driver(net))
        .collect())
}

/// `true` when two equal-width bit vectors share a set bit.
fn intersects(a: &BitVec, b: &BitVec) -> bool {
    a.as_words().zip(b.as_words()).any(|(x, y)| x & y != 0)
}

/// The cone-level footprint of an ECO over one collapsed fault list.
///
/// # Example
///
/// ```
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, Driver, GateKind};
/// use sdd_sim::EcoDelta;
///
/// let c17 = library::c17();
/// let net = c17.net("N10").unwrap();
/// let eco = c17
///     .with_driver(net, Driver::Gate {
///         kind: GateKind::And,
///         inputs: c17.driver(net).fanin().to_vec(),
///     })
///     .unwrap();
/// let universe = FaultUniverse::enumerate(&c17);
/// let collapsed = universe.collapse_on(&c17);
/// let delta = EcoDelta::compute(&c17, &eco, &universe, collapsed.representatives()).unwrap();
/// assert!(!delta.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EcoDelta {
    changed_nets: Vec<NetId>,
    dirty_outputs: BitVec,
    dirty_faults: Vec<usize>,
}

impl EcoDelta {
    /// Computes the delta between `old` and `new` for the faults in
    /// `faults` (positions in the returned delta index into this slice).
    ///
    /// `universe` must describe the fault list on **both** circuits — the
    /// caller is responsible for checking that the collapsed fault lists
    /// agree, which [`changed_nets`]'s interface checks make possible but
    /// do not themselves guarantee.
    ///
    /// # Errors
    ///
    /// [`SddError::Invalid`] when the circuits are not patch-compatible
    /// (see [`changed_nets`]).
    pub fn compute(
        old: &Circuit,
        new: &Circuit,
        universe: &FaultUniverse,
        faults: &[FaultId],
    ) -> Result<Self, SddError> {
        let changed_nets = changed_nets(old, new)?;
        let old_cones = OutputCones::compute(old, &CombView::new(old));
        let new_cones = OutputCones::compute(new, &CombView::new(new));
        let outputs = old_cones.outputs();
        let mut dirty_outputs = BitVec::zeros(outputs);
        for &net in &changed_nets {
            for cone in [old_cones.net_cone(net), new_cones.net_cone(net)] {
                for o in 0..outputs {
                    if cone.bit(o) {
                        dirty_outputs.set(o, true);
                    }
                }
            }
        }
        let mut dirty_faults = Vec::new();
        if dirty_outputs.any() {
            for (position, &id) in faults.iter().enumerate() {
                if intersects(&old_cones.fault_cone(universe, id), &dirty_outputs)
                    || intersects(&new_cones.fault_cone(universe, id), &dirty_outputs)
                {
                    dirty_faults.push(position);
                }
            }
        }
        Ok(Self {
            changed_nets,
            dirty_outputs,
            dirty_faults,
        })
    }

    /// Nets whose drivers differ.
    pub fn changed_nets(&self) -> &[NetId] {
        &self.changed_nets
    }

    /// View outputs whose responses may have changed (`m` bits).
    pub fn dirty_outputs(&self) -> &BitVec {
        &self.dirty_outputs
    }

    /// Positions (into the fault list handed to [`compute`](Self::compute))
    /// of faults whose signatures may have changed.
    pub fn dirty_faults(&self) -> &[usize] {
        &self.dirty_faults
    }

    /// `true` when the ECO cannot have changed any response: the circuits
    /// are functionally identical as far as the dictionary is concerned.
    pub fn is_empty(&self) -> bool {
        self.dirty_faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdd_netlist::{CircuitBuilder, Driver, GateKind};

    /// Two independent inverter chains: a -> g1 -> out0, b -> g2 -> out1.
    fn split_pair() -> Circuit {
        let mut b = CircuitBuilder::new("split_pair");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.gate("g1", GateKind::Not, vec![a]);
        let g2 = b.gate("g2", GateKind::Not, vec![c]);
        b.output(g1);
        b.output(g2);
        b.finish().unwrap()
    }

    #[test]
    fn a_one_gate_eco_dirties_only_its_cone() {
        let old = split_pair();
        let g2 = old.net("g2").unwrap();
        let new = old
            .with_driver(
                g2,
                Driver::Gate {
                    kind: GateKind::Buf,
                    inputs: old.driver(g2).fanin().to_vec(),
                },
            )
            .unwrap();
        let universe = FaultUniverse::enumerate(&old);
        let collapsed = universe.collapse_on(&old);
        let delta = EcoDelta::compute(&old, &new, &universe, collapsed.representatives()).unwrap();
        assert_eq!(delta.changed_nets(), &[g2]);
        assert!(!delta.dirty_outputs().bit(0), "g1's output is clean");
        assert!(delta.dirty_outputs().bit(1), "g2's output is dirty");
        assert!(!delta.is_empty());
        // Exactly the faults that can reach output 1 are dirty.
        let cones = OutputCones::compute(&old, &CombView::new(&old));
        for (position, &id) in collapsed.representatives().iter().enumerate() {
            let reaches = cones.fault_cone(&universe, id).bit(1);
            assert_eq!(
                delta.dirty_faults().contains(&position),
                reaches,
                "fault {id}"
            );
        }
    }

    #[test]
    fn identical_circuits_yield_an_empty_delta() {
        let c = split_pair();
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let delta = EcoDelta::compute(&c, &c, &universe, collapsed.representatives()).unwrap();
        assert!(delta.changed_nets().is_empty());
        assert!(delta.is_empty());
        assert!(!delta.dirty_outputs().any());
    }

    #[test]
    fn interface_changes_are_typed_errors() {
        let old = split_pair();
        let mut b = CircuitBuilder::new("bigger");
        let a = b.input("a");
        let g1 = b.gate("g1", GateKind::Not, vec![a]);
        b.output(g1);
        let smaller = b.finish().unwrap();
        let err = changed_nets(&old, &smaller).unwrap_err();
        assert!(err.to_string().contains("rebuild"), "{err}");
    }
}
