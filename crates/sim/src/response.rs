//! Response-class matrices: the distilled fault-simulation result that
//! fault dictionaries are built from.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use sdd_fault::{FaultId, FaultUniverse};
use sdd_logic::{BitVec, PatternBlock, LANES};
use sdd_netlist::{Circuit, CombView};

use crate::Engine;

/// Smallest fault chunk worth shipping to a worker thread: below this the
/// per-chunk fixed costs (a fresh [`Engine`], a redundant fault-free pass
/// per pattern block, the label remap on merge) rival the fault simulation
/// itself.
const MIN_CHUNK_FAULTS: usize = 32;

/// Chunks per worker. More than one lets fast workers steal the slack of
/// slow chunks (fault cost varies wildly with cone size) without shrinking
/// chunks so far the fixed costs dominate.
const CHUNKS_PER_JOB: usize = 4;

/// For every test and every fault, *which* output vector the faulty circuit
/// produces — encoded as a small per-test class label rather than the vector
/// itself.
///
/// Class `0` is always the fault-free response `z_ff,j`; faults sharing a
/// class under a test produce identical output vectors there. The paper's
/// candidate set `Z_j` is exactly the set of classes of test `j`, and every
/// dictionary question (pass/fail bits, same/different bits with any
/// baseline, full-dictionary resolution) reduces to label comparisons.
///
/// # Example
///
/// ```
/// use sdd_fault::FaultUniverse;
/// use sdd_netlist::{library, CombView};
/// use sdd_sim::ResponseMatrix;
/// use sdd_logic::BitVec;
///
/// let c17 = library::c17();
/// let view = CombView::new(&c17);
/// let universe = FaultUniverse::enumerate(&c17);
/// let collapsed = universe.collapse_on(&c17);
/// let tests: Vec<BitVec> = vec!["10111".parse()?, "01101".parse()?];
/// let m = ResponseMatrix::simulate(&c17, &view, &universe, collapsed.representatives(), &tests);
/// // The response of class 0 is the fault-free response:
/// assert_eq!(m.response(0, 0), *m.good_response(0));
/// # Ok::<(), sdd_logic::ParseBitVecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseMatrix {
    fault_count: usize,
    output_count: usize,
    /// Row-major `class[test * fault_count + fault]`.
    class: Vec<u32>,
    /// Per test: class id → sorted list of flipped output positions
    /// (class 0 = empty).
    distinct: Vec<Vec<Vec<u32>>>,
    good: Vec<BitVec>,
}

impl ResponseMatrix {
    /// Fault-simulates `faults` (given as ids into `universe`) against
    /// `tests` and builds the class matrix.
    ///
    /// # Panics
    ///
    /// Panics if any test's width differs from the view's input count.
    pub fn simulate(
        circuit: &Circuit,
        view: &CombView,
        universe: &FaultUniverse,
        faults: &[FaultId],
        tests: &[BitVec],
    ) -> Self {
        let width = view.inputs().len();
        let fault_count = faults.len();
        let mut class = vec![0u32; tests.len() * fault_count];
        let mut distinct: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new()]; tests.len()];
        let mut interner: Vec<HashMap<Vec<u32>, u32>> =
            (0..tests.len()).map(|_| HashMap::new()).collect();
        let mut good = Vec::with_capacity(tests.len());

        let mut engine = Engine::new(circuit, view);
        let mut lane_diffs: Vec<Vec<u32>> = (0..LANES).map(|_| Vec::new()).collect();

        for (block_index, chunk) in tests.chunks(LANES).enumerate() {
            let base = block_index * LANES;
            engine.load_block(&PatternBlock::from_patterns(width, chunk));
            for lane in 0..chunk.len() {
                good.push(engine.good_response(lane));
            }
            for (fault_pos, &fault_id) in faults.iter().enumerate() {
                let effect = engine.run_fault(universe.fault(fault_id));
                if effect.detect == 0 {
                    continue; // all lanes stay class 0
                }
                for diffs in &mut lane_diffs[..chunk.len()] {
                    diffs.clear();
                }
                for &(pos, word) in &effect.output_diffs {
                    let mut bits = word;
                    while bits != 0 {
                        let lane = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        lane_diffs[lane].push(pos);
                    }
                }
                for (lane, diffs) in lane_diffs[..chunk.len()].iter().enumerate() {
                    if diffs.is_empty() {
                        continue;
                    }
                    let test = base + lane;
                    let next = distinct[test].len() as u32;
                    let label = *interner[test].entry(diffs.clone()).or_insert_with(|| {
                        distinct[test].push(diffs.clone());
                        next
                    });
                    class[test * fault_count + fault_pos] = label;
                }
            }
        }

        Self {
            fault_count,
            output_count: view.outputs().len(),
            class,
            distinct,
            good,
        }
    }

    /// [`simulate`](Self::simulate) fanned out over `jobs` worker threads.
    ///
    /// The fault list is split into contiguous chunks; each worker owns a
    /// private [`Engine`] (and its pattern-block scratch) and simulates whole
    /// chunks, pulling the next chunk index from a shared counter. Chunk
    /// results are then merged **in fault order**, re-interning each test's
    /// distinct output vectors in the order the serial scan would first meet
    /// them — so the result is identical (`==`, and byte-identical once
    /// stored) to the serial matrix for any `jobs`, and scheduling order
    /// cannot leak into class labels.
    ///
    /// `jobs == 1`, an empty fault list, or a fault list too small to cover
    /// two chunks all fall back to the serial path.
    ///
    /// # Panics
    ///
    /// Panics if any test's width differs from the view's input count.
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_fault::FaultUniverse;
    /// use sdd_netlist::{library, CombView};
    /// use sdd_sim::ResponseMatrix;
    /// use sdd_logic::BitVec;
    ///
    /// let c17 = library::c17();
    /// let view = CombView::new(&c17);
    /// let universe = FaultUniverse::enumerate(&c17);
    /// let collapsed = universe.collapse_on(&c17);
    /// let tests: Vec<BitVec> = vec!["10111".parse()?, "01101".parse()?];
    /// let serial = ResponseMatrix::simulate(&c17, &view, &universe, collapsed.representatives(), &tests);
    /// let parallel = ResponseMatrix::simulate_jobs(&c17, &view, &universe, collapsed.representatives(), &tests, 4);
    /// assert_eq!(serial, parallel);
    /// # Ok::<(), sdd_logic::ParseBitVecError>(())
    /// ```
    pub fn simulate_jobs(
        circuit: &Circuit,
        view: &CombView,
        universe: &FaultUniverse,
        faults: &[FaultId],
        tests: &[BitVec],
        jobs: usize,
    ) -> Self {
        let jobs = jobs.max(1);
        let chunk = faults
            .len()
            .div_ceil(jobs * CHUNKS_PER_JOB)
            .max(MIN_CHUNK_FAULTS);
        if jobs == 1 || faults.len() <= chunk {
            return Self::simulate(circuit, view, universe, faults, tests);
        }

        let chunks: Vec<&[FaultId]> = faults.chunks(chunk).collect();
        let next = AtomicUsize::new(0);
        let parts: Mutex<Vec<(usize, Self)>> = Mutex::new(Vec::with_capacity(chunks.len()));
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(chunks.len()) {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(chunk_faults) = chunks.get(index) else {
                        break;
                    };
                    let part = Self::simulate(circuit, view, universe, chunk_faults, tests);
                    parts.lock().expect("chunk result lock").push((index, part));
                });
            }
        });
        let mut parts = parts.into_inner().expect("chunk result lock");
        parts.sort_unstable_by_key(|&(index, _)| index);
        Self::merge_fault_chunks(parts.into_iter().map(|(_, part)| part), view, tests.len())
    }

    /// Concatenates per-chunk matrices (contiguous fault ranges of one fault
    /// list, same tests) back into one matrix, re-interning class labels per
    /// test in chunk-then-fault order — exactly the first-occurrence order of
    /// the serial scan.
    fn merge_fault_chunks(
        parts: impl Iterator<Item = Self>,
        view: &CombView,
        tests: usize,
    ) -> Self {
        let mut fault_count = 0;
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); tests];
        let mut distinct: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new()]; tests];
        let mut interner: Vec<HashMap<Vec<u32>, u32>> =
            (0..tests).map(|_| HashMap::new()).collect();
        let mut good: Option<Vec<BitVec>> = None;
        let mut remap: Vec<u32> = Vec::new();

        for part in parts {
            debug_assert_eq!(part.test_count(), tests, "chunks share one test set");
            fault_count += part.fault_count;
            // Every chunk simulated the same fault-free responses; keep the
            // first copy.
            good.get_or_insert(part.good);
            for test in 0..tests {
                remap.clear();
                remap.push(0); // class 0 is fault-free in every chunk
                for diffs in &part.distinct[test][1..] {
                    let fresh = distinct[test].len() as u32;
                    let label = *interner[test].entry(diffs.clone()).or_insert_with(|| {
                        distinct[test].push(diffs.clone());
                        fresh
                    });
                    remap.push(label);
                }
                let row = &part.class[test * part.fault_count..(test + 1) * part.fault_count];
                rows[test].extend(row.iter().map(|&label| remap[label as usize]));
            }
        }

        Self::from_class_parts(
            good.unwrap_or_default(),
            fault_count,
            view.outputs().len(),
            rows.concat(),
            distinct,
        )
        .expect("chunk merge preserves matrix invariants")
    }

    /// Builds a matrix from explicit responses instead of simulation: one
    /// fault-free response and one faulty response per fault, for each test.
    /// Useful for worked examples and tests.
    ///
    /// Class labels follow the same convention as simulation: class 0 is the
    /// fault-free response, further classes in first-occurrence order
    /// scanning faults in index order.
    ///
    /// # Panics
    ///
    /// Panics if row lengths are inconsistent or response widths differ.
    ///
    /// # Example
    ///
    /// ```
    /// use sdd_logic::BitVec;
    /// use sdd_sim::ResponseMatrix;
    ///
    /// let bv = |s: &str| s.parse::<BitVec>().unwrap();
    /// // One test, fault-free response 00; two faults responding 00 and 10.
    /// let m = ResponseMatrix::from_responses(
    ///     vec![bv("00")],
    ///     &[vec![bv("00"), bv("10")]],
    /// );
    /// assert!(!m.detects(0, 0));
    /// assert!(m.detects(0, 1));
    /// ```
    pub fn from_responses(good: Vec<BitVec>, responses: &[Vec<BitVec>]) -> Self {
        assert_eq!(good.len(), responses.len(), "one response row per test");
        let fault_count = responses.first().map_or(0, Vec::len);
        let output_count = good.first().map_or(0, BitVec::len);
        let mut class = vec![0u32; good.len() * fault_count];
        let mut distinct: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new()]; good.len()];
        for (test, row) in responses.iter().enumerate() {
            assert_eq!(row.len(), fault_count, "ragged fault row in test {test}");
            let mut interner: HashMap<Vec<u32>, u32> = HashMap::new();
            for (fault, response) in row.iter().enumerate() {
                assert_eq!(response.len(), output_count, "response width mismatch");
                let diff: Vec<u32> = (0..output_count)
                    .filter(|&o| response.bit(o) != good[test].bit(o))
                    .map(|o| o as u32)
                    .collect();
                if diff.is_empty() {
                    continue;
                }
                let next = distinct[test].len() as u32;
                class[test * fault_count + fault] =
                    *interner.entry(diff.clone()).or_insert_with(|| {
                        distinct[test].push(diff.clone());
                        next
                    });
            }
        }
        Self {
            fault_count,
            output_count,
            class,
            distinct,
            good,
        }
    }

    /// Reassembles a matrix from its stored parts — the exact inverse of
    /// the accessors, used by the binary dictionary store (`sdd-store`) so a
    /// deserialized full dictionary is structurally identical to the
    /// simulated one (same class labels, same distinct-vector tables).
    ///
    /// # Errors
    ///
    /// Returns [`SddError`](sdd_logic::SddError) when the parts are
    /// inconsistent: ragged class rows, class labels out of range, response
    /// widths exceeding `output_count`, or a non-empty class-0 diff list.
    pub fn from_class_parts(
        good: Vec<BitVec>,
        fault_count: usize,
        output_count: usize,
        class: Vec<u32>,
        distinct: Vec<Vec<Vec<u32>>>,
    ) -> Result<Self, sdd_logic::SddError> {
        use sdd_logic::SddError;
        if class.len() != good.len() * fault_count {
            return Err(SddError::CountMismatch {
                context: "response class matrix entries",
                expected: good.len() * fault_count,
                actual: class.len(),
            });
        }
        if distinct.len() != good.len() {
            return Err(SddError::CountMismatch {
                context: "distinct-vector tables per test",
                expected: good.len(),
                actual: distinct.len(),
            });
        }
        for (test, g) in good.iter().enumerate() {
            if g.len() != output_count {
                return Err(SddError::WidthMismatch {
                    context: "fault-free response width",
                    expected: output_count,
                    actual: g.len(),
                });
            }
            let table = &distinct[test];
            if table.first().is_none_or(|c0| !c0.is_empty()) {
                return Err(SddError::invalid(format!(
                    "test {test}: class 0 must be present with an empty diff list"
                )));
            }
            for diffs in table {
                if diffs.iter().any(|&pos| pos as usize >= output_count) {
                    return Err(SddError::invalid(format!(
                        "test {test}: diff position out of range ({output_count} outputs)"
                    )));
                }
            }
            let classes = &class[test * fault_count..(test + 1) * fault_count];
            if let Some(&bad) = classes.iter().find(|&&c| c as usize >= table.len()) {
                return Err(SddError::invalid(format!(
                    "test {test}: class label {bad} out of range ({} classes)",
                    table.len()
                )));
            }
        }
        Ok(Self {
            fault_count,
            output_count,
            class,
            distinct,
            good,
        })
    }

    /// The sorted flipped-output positions of response class `class` under
    /// `test` relative to the fault-free response (class 0 is empty) — the
    /// raw stored form behind [`response`](Self::response).
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a class of `test`.
    pub fn class_diffs(&self, test: usize, class: u32) -> &[u32] {
        &self.distinct[test][class as usize]
    }

    /// Number of tests.
    pub fn test_count(&self) -> usize {
        self.good.len()
    }

    /// Number of faults (rows are indexed by position in the fault list
    /// passed to [`simulate`](Self::simulate), not by [`FaultId`]).
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    /// Number of observed outputs (`m` in the paper's size formulas).
    pub fn output_count(&self) -> usize {
        self.output_count
    }

    /// The response class of fault `fault` under test `test`; `0` means the
    /// fault-free response (the test does not detect the fault).
    pub fn class(&self, test: usize, fault: usize) -> u32 {
        self.class[test * self.fault_count + fault]
    }

    /// All fault classes of one test, indexed by fault position.
    pub fn classes(&self, test: usize) -> &[u32] {
        &self.class[test * self.fault_count..(test + 1) * self.fault_count]
    }

    /// Number of distinct output vectors that occur under `test` (the size
    /// of the paper's candidate set `Z_j`, counting the fault-free vector).
    pub fn class_count(&self, test: usize) -> usize {
        self.distinct[test].len()
    }

    /// Returns `true` when `test` detects `fault`.
    pub fn detects(&self, test: usize, fault: usize) -> bool {
        self.class(test, fault) != 0
    }

    /// The fault-free response of `test`.
    pub fn good_response(&self, test: usize) -> &BitVec {
        &self.good[test]
    }

    /// Materializes the output vector of response class `class` under
    /// `test`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not a class of `test`.
    pub fn response(&self, test: usize, class: u32) -> BitVec {
        let mut response = self.good[test].clone();
        for &pos in &self.distinct[test][class as usize] {
            response.toggle(pos as usize);
        }
        response
    }

    /// How many tests detect each fault.
    pub fn detection_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.fault_count];
        for test in 0..self.test_count() {
            for (fault, &c) in self.classes(test).iter().enumerate() {
                if c != 0 {
                    counts[fault] += 1;
                }
            }
        }
        counts
    }

    /// Positions of faults never detected by any test (undetectable by this
    /// test set — possibly redundant faults).
    pub fn undetected_faults(&self) -> Vec<usize> {
        self.detection_counts()
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == 0)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use sdd_netlist::library::c17;

    fn setup(
        tests: &[&str],
    ) -> (
        Circuit,
        CombView,
        FaultUniverse,
        Vec<FaultId>,
        ResponseMatrix,
    ) {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let patterns: Vec<BitVec> = tests.iter().map(|s| s.parse().unwrap()).collect();
        let ids = collapsed.representatives().to_vec();
        let m = ResponseMatrix::simulate(&c, &view, &universe, &ids, &patterns);
        (c, view, universe, ids, m)
    }

    fn setup_exhaustive() -> (
        Circuit,
        CombView,
        FaultUniverse,
        Vec<FaultId>,
        ResponseMatrix,
        Vec<BitVec>,
    ) {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let patterns: Vec<BitVec> = (0u32..32)
            .map(|w| (0..5).map(|i| w >> i & 1 == 1).collect())
            .collect();
        let ids = collapsed.representatives().to_vec();
        let m = ResponseMatrix::simulate(&c, &view, &universe, &ids, &patterns);
        (c, view, universe, ids, m, patterns)
    }

    #[test]
    fn shape_is_consistent() {
        let (_, _, _, ids, m) = setup(&["10111", "01101", "00000"]);
        assert_eq!(m.test_count(), 3);
        assert_eq!(m.fault_count(), ids.len());
        assert_eq!(m.output_count(), 2);
        for t in 0..3 {
            assert_eq!(m.classes(t).len(), ids.len());
            assert!(m.class_count(t) >= 1);
        }
    }

    #[test]
    fn classes_agree_with_reference_responses() {
        let (c, view, universe, ids, m, patterns) = setup_exhaustive();
        for (t, pattern) in patterns.iter().enumerate() {
            let good = reference::good_response(&c, &view, pattern);
            assert_eq!(*m.good_response(t), good);
            let responses: Vec<BitVec> = ids
                .iter()
                .map(|&id| reference::faulty_response(&c, &view, universe.fault(id), pattern))
                .collect();
            for (a, ra) in responses.iter().enumerate() {
                // Class 0 ⇔ equals fault-free.
                assert_eq!(m.class(t, a) == 0, *ra == good, "test {t} fault {a}");
                // Materialized response matches the reference.
                assert_eq!(m.response(t, m.class(t, a)), *ra);
                for (b, rb) in responses.iter().enumerate().skip(a + 1) {
                    assert_eq!(
                        m.class(t, a) == m.class(t, b),
                        ra == rb,
                        "test {t} faults {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn class_count_counts_distinct_vectors() {
        let (c, view, universe, ids, m, patterns) = setup_exhaustive();
        for (t, pattern) in patterns.iter().enumerate() {
            let mut vectors: Vec<BitVec> = ids
                .iter()
                .map(|&id| reference::faulty_response(&c, &view, universe.fault(id), pattern))
                .collect();
            vectors.push(reference::good_response(&c, &view, pattern));
            vectors.sort();
            vectors.dedup();
            assert_eq!(m.class_count(t), vectors.len(), "test {t}");
        }
    }

    #[test]
    fn detection_counts_match_manual_count() {
        let (_, _, _, _, m, _) = setup_exhaustive();
        let counts = m.detection_counts();
        for (fault, &count) in counts.iter().enumerate() {
            let manual = (0..m.test_count()).filter(|&t| m.detects(t, fault)).count() as u32;
            assert_eq!(count, manual);
        }
        // Every collapsed c17 fault is detectable by exhaustive patterns.
        assert!(m.undetected_faults().is_empty());
    }

    #[test]
    fn class_parts_round_trip_exactly() {
        let (_, _, _, _, m) = setup(&["10111", "01101", "00000"]);
        let good: Vec<BitVec> = (0..m.test_count())
            .map(|t| m.good_response(t).clone())
            .collect();
        let class: Vec<u32> = (0..m.test_count())
            .flat_map(|t| m.classes(t).to_vec())
            .collect();
        let distinct: Vec<Vec<Vec<u32>>> = (0..m.test_count())
            .map(|t| {
                (0..m.class_count(t))
                    .map(|c| m.class_diffs(t, c as u32).to_vec())
                    .collect()
            })
            .collect();
        let back = ResponseMatrix::from_class_parts(
            good,
            m.fault_count(),
            m.output_count(),
            class,
            distinct,
        )
        .unwrap();
        assert_eq!(back, m, "parts reassemble the identical matrix");
    }

    #[test]
    fn from_class_parts_rejects_inconsistent_parts() {
        let (_, _, _, _, m) = setup(&["10111"]);
        let good = vec![m.good_response(0).clone()];
        let classes = m.classes(0).to_vec();
        let distinct: Vec<Vec<Vec<u32>>> = vec![(0..m.class_count(0))
            .map(|c| m.class_diffs(0, c as u32).to_vec())
            .collect()];
        // Wrong class-entry count.
        assert!(ResponseMatrix::from_class_parts(
            good.clone(),
            m.fault_count() + 1,
            m.output_count(),
            classes.clone(),
            distinct.clone(),
        )
        .is_err());
        // Class label out of range.
        let mut bad_classes = classes.clone();
        bad_classes[0] = 99;
        assert!(ResponseMatrix::from_class_parts(
            good.clone(),
            m.fault_count(),
            m.output_count(),
            bad_classes,
            distinct.clone(),
        )
        .is_err());
        // Diff position beyond the output count.
        let mut bad_distinct = distinct.clone();
        bad_distinct[0].last_mut().unwrap().push(99);
        assert!(ResponseMatrix::from_class_parts(
            good.clone(),
            m.fault_count(),
            m.output_count(),
            classes.clone(),
            bad_distinct,
        )
        .is_err());
        // Class 0 must stay the fault-free (empty-diff) class.
        let mut bad_distinct = distinct;
        bad_distinct[0][0].push(0);
        assert!(ResponseMatrix::from_class_parts(
            good,
            m.fault_count(),
            m.output_count(),
            classes,
            bad_distinct,
        )
        .is_err());
    }

    #[test]
    fn parallel_simulation_equals_serial_for_any_jobs() {
        // s298 has enough collapsed faults to split into several chunks, so
        // the merge path (not the small-work fallback) is what's tested.
        let c = generator_circuit();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        let ids = collapsed.representatives();
        let width = view.inputs().len();
        let mut rng = sdd_logic::Prng::seed_from_u64(7);
        let patterns: Vec<BitVec> = (0..70)
            .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let serial = ResponseMatrix::simulate(&c, &view, &universe, ids, &patterns);
        for jobs in [2, 3, 4, 16] {
            let parallel =
                ResponseMatrix::simulate_jobs(&c, &view, &universe, ids, &patterns, jobs);
            assert_eq!(serial, parallel, "jobs = {jobs}");
        }
    }

    fn generator_circuit() -> Circuit {
        sdd_netlist::generator::iscas89("s298", 1).expect("known profile")
    }

    #[test]
    fn more_than_64_tests_cross_block_boundary() {
        let c = c17();
        let view = CombView::new(&c);
        let universe = FaultUniverse::enumerate(&c);
        let collapsed = universe.collapse_on(&c);
        // 96 tests: the 32 exhaustive patterns three times.
        let patterns: Vec<BitVec> = (0u32..96)
            .map(|w| (0..5).map(|i| (w % 32) >> i & 1 == 1).collect())
            .collect();
        let ids = collapsed.representatives().to_vec();
        let m = ResponseMatrix::simulate(&c, &view, &universe, &ids, &patterns);
        assert_eq!(m.test_count(), 96);
        // Repetition: test t and t+32 have identical structure.
        for t in 0..32 {
            assert_eq!(m.good_response(t), m.good_response(t + 32));
            assert_eq!(m.class_count(t), m.class_count(t + 32));
            for f in 0..m.fault_count() {
                assert_eq!(
                    m.response(t, m.class(t, f)),
                    m.response(t + 32, m.class(t + 32, f))
                );
            }
        }
    }
}
